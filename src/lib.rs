//! # mlgp — Multilevel Graph Partitioning Schemes
//!
//! A from-scratch Rust reproduction of Karypis & Kumar, *"Multilevel Graph
//! Partitioning Schemes"*, ICPP 1995 — the paper that became METIS.
//!
//! The facade re-exports the whole workspace:
//!
//! * [`graph`] — weighted CSR graphs, I/O, generators ([`mlgp_graph`]);
//! * [`linalg`] — eigensolvers for the spectral methods ([`mlgp_linalg`]);
//! * [`part`] — multilevel bisection / k-way partitioning, the paper's
//!   contribution ([`mlgp_part`]);
//! * [`spectral`] — MSB, MSB-KL and Chaco-ML baselines ([`mlgp_spectral`]);
//! * [`geom`] — geometric baselines: RCB, inertial, randomized separators
//!   ([`mlgp_geom`]);
//! * [`order`] — MLND / SND / MMD fill-reducing orderings and symbolic
//!   factorization analysis ([`mlgp_order`]);
//! * [`trace`] — the observability layer: phase spans, per-level telemetry,
//!   counters, JSONL export ([`mlgp_trace`]).
//!
//! ## Quickstart
//!
//! ```
//! use mlgp::prelude::*;
//!
//! // A 3D tetrahedral-like FEM mesh, as in the paper's test suite.
//! let g = mlgp::graph::generators::tet_mesh3d(12, 12, 12, 42);
//!
//! // Partition it into 8 parts for 8 processors.
//! let parts = kway_partition(&g, 8, &MlConfig::default());
//! assert!(imbalance(&g, &parts.part, 8) < 1.10);
//!
//! // Order it for sparse Cholesky factorization.
//! let perm = mlnd_order(&g);
//! let stats = analyze_ordering(&g, &perm);
//! assert!(stats.nnz_l > g.n() as u64);
//! ```

pub use mlgp_geom as geom;
pub use mlgp_graph as graph;
pub use mlgp_linalg as linalg;
pub use mlgp_order as order;
pub use mlgp_part as part;
pub use mlgp_spectral as spectral;
pub use mlgp_trace as trace;

/// Convenient single-import surface for the common entry points.
pub mod prelude {
    pub use mlgp_geom::{inertial_partition, rcb_partition, sphere_kway, SphereConfig};
    pub use mlgp_graph::{CsrGraph, GraphBuilder, Permutation, Vid, Wgt};
    pub use mlgp_order::{analyze_ordering, mlnd_order, mmd_order, snd_order, SymbolicStats};
    pub use mlgp_part::{
        bisect, edge_cut_kway, imbalance, kway_partition, InitialPartitioning, MatchingScheme,
        MlConfig, RefinementPolicy,
    };
    pub use mlgp_part::{kway_partition_refined, kway_refine_greedy};
    pub use mlgp_spectral::{chaco_ml_kway, msb_kl_kway, msb_kway, ChacoMlConfig, MsbConfig};
    pub use mlgp_trace::Trace;
}
