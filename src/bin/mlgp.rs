//! `mlgp` — command-line driver, in the spirit of the original `pmetis` /
//! `onmetis` tools.
//!
//! ```text
//! mlgp partition <graph> <k> [--report] [--report-json] [--stats] [--trace FILE]
//!                            [--method ml|msb|msb-kl|chaco] [--seed N] [--out FILE]
//! mlgp order     <graph>     [--method mlnd|mmd|snd] [--stats] [--trace FILE] [--out FILE]
//! mlgp gen       <key> <out.graph> [--scale F]   # write a suite graph
//! mlgp info      <graph>
//! ```
//!
//! `--stats` prints the phase-tree summary (the paper's CTime/UTime
//! vocabulary) to stderr; `--trace FILE` writes the full JSONL telemetry
//! (one record per hierarchy level, eigensolver run, counter, and span —
//! schema in DESIGN.md).
//!
//! `<graph>` is either a Chaco/METIS `.graph` file, a MatrixMarket `.mtx`
//! file, or `gen:<KEY>[@SCALE]` for a synthetic suite graph (e.g.
//! `gen:4ELT`, `gen:BC31@0.1`).

use mlgp::prelude::*;
use mlgp_graph::generators;
use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("partition") => cmd_partition(&args[1..]),
        Some("order") => cmd_order(&args[1..]),
        Some("gen") => cmd_gen(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            eprint!("{}", USAGE);
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
mlgp — multilevel graph partitioning (Karypis-Kumar ICPP'95 reproduction)

USAGE:
  mlgp partition <graph> <k> [--report] [--report-json] [--stats] [--trace FILE]
                             [--method ml|msb|msb-kl|chaco] [--seed N] [--out FILE]
                             [--threads N]
  mlgp order     <graph>     [--method mlnd|mmd|snd] [--stats] [--trace FILE] [--out FILE]
  mlgp gen       <key> <out.graph> [--scale F]
  mlgp info      <graph>

<graph> is a .graph/.mtx file or gen:<KEY>[@SCALE] (see `mlgp gen` keys in
DESIGN.md, e.g. gen:4ELT, gen:BC31@0.1).

--stats prints a phase-tree timing summary (CTime/UTime vocabulary) to
stderr; --trace FILE writes JSONL telemetry; --report-json prints the
partition quality report as one JSON object on stdout. --threads N runs
the ml coarsening/metric kernels on N workers (0 = auto); the partition
is bit-identical for every N.
";

/// Positional arguments and `(name, value)` option pairs.
type ParsedArgs<'a> = (Vec<&'a str>, Vec<(&'a str, &'a str)>);

/// Parse `--flag value` style options out of an argument list; returns the
/// positional arguments.
fn split_opts(args: &[String]) -> Result<ParsedArgs<'_>, String> {
    let mut pos = Vec::new();
    let mut opts = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if let Some(name) = a.strip_prefix("--") {
            // A flag followed by another flag (or by nothing) is boolean.
            match args.get(i + 1).map(String::as_str) {
                Some(v) if !v.starts_with("--") => {
                    opts.push((name, v));
                    i += 2;
                }
                _ => {
                    opts.push((name, "true"));
                    i += 1;
                }
            }
        } else {
            pos.push(a);
            i += 1;
        }
    }
    Ok((pos, opts))
}

fn opt<'a>(opts: &[(&str, &'a str)], name: &str) -> Option<&'a str> {
    opts.iter().rev().find(|(n, _)| *n == name).map(|(_, v)| *v)
}

fn load_graph(spec: &str) -> Result<CsrGraph, String> {
    if let Some(genspec) = spec.strip_prefix("gen:") {
        let (key, scale) = match genspec.split_once('@') {
            Some((k, s)) => (k, s.parse::<f64>().map_err(|_| format!("bad scale `{s}`"))?),
            None => (genspec, 1.0),
        };
        let entry = generators::entry(key)
            .ok_or_else(|| format!("unknown suite key `{key}` (see DESIGN.md §4)"))?;
        Ok(entry.generate_scaled(scale))
    } else {
        mlgp_graph::io::read_graph_file(Path::new(spec)).map_err(|e| e.to_string())
    }
}

/// Build a trace handle: enabled iff `--stats` or `--trace FILE` was given.
/// Records the shared metadata so exports are self-describing.
fn make_trace(opts: &[(&str, &str)], g: &CsrGraph, spec: &str) -> Trace {
    let wants_stats = opt(opts, "stats").is_some_and(|v| v != "false");
    let wants_file = trace_path(opts).is_some();
    if !wants_stats && !wants_file {
        return Trace::disabled();
    }
    let trace = Trace::enabled();
    trace.set_meta("graph", spec);
    trace.set_meta("vertices", g.n());
    trace.set_meta("edges", g.m());
    trace
}

/// The `--trace FILE` value, treating a bare `--trace` as an error-free
/// no-file request (boolean form enables collection without the export).
fn trace_path<'a>(opts: &[(&'a str, &'a str)]) -> Option<&'a str> {
    opt(opts, "trace").filter(|v| *v != "true" && *v != "false")
}

/// Emit the collected telemetry: tree summary to stderr (`--stats`), JSONL
/// to the `--trace` file.
fn emit_trace(trace: &Trace, opts: &[(&str, &str)]) -> Result<(), String> {
    if opt(opts, "stats").is_some_and(|v| v != "false") {
        if let Some(tree) = trace.summary_tree() {
            eprint!("{tree}");
        }
    }
    if let Some(path) = trace_path(opts) {
        let jsonl = trace.to_jsonl().unwrap_or_default();
        std::fs::write(path, jsonl).map_err(|e| format!("writing trace {path}: {e}"))?;
        eprintln!("trace written to {path}");
    }
    Ok(())
}

fn cmd_partition(args: &[String]) -> Result<(), String> {
    let (pos, opts) = split_opts(args)?;
    let [spec, k] = pos.as_slice() else {
        return Err(format!("partition needs <graph> <k>\n{USAGE}"));
    };
    let k: usize = k.parse().map_err(|_| format!("bad k `{k}`"))?;
    if k < 1 {
        return Err("k must be >= 1".into());
    }
    let method = opt(&opts, "method").unwrap_or("ml");
    let seed: u64 = opt(&opts, "seed")
        .map(|s| s.parse().map_err(|_| format!("bad seed `{s}`")))
        .transpose()?
        .unwrap_or(4242);
    let threads: usize = opt(&opts, "threads")
        .map(|s| s.parse().map_err(|_| format!("bad thread count `{s}`")))
        .transpose()?
        .unwrap_or(0);
    let g = load_graph(spec)?;
    eprintln!(
        "graph: {} vertices, {} edges (avg degree {:.1})",
        g.n(),
        g.m(),
        g.avg_degree()
    );
    let trace = make_trace(&opts, &g, spec);
    trace.set_meta("command", "partition");
    trace.set_meta("method", method);
    trace.set_meta("k", k);
    trace.set_meta("seed", seed);
    trace.set_meta("threads", threads);
    let t = Instant::now();
    let part: Vec<u32> = match method {
        "ml" => {
            // An explicit --threads N also caps the k-way recursion's
            // rayon fan-out, so N bounds total workers end to end.
            let run = || {
                mlgp::part::kway_partition_traced(
                    &g,
                    k,
                    &MlConfig {
                        seed,
                        threads,
                        ..MlConfig::default()
                    },
                    &trace,
                )
                .part
            };
            if threads > 0 {
                rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .map_err(|e| format!("thread pool: {e:?}"))?
                    .install(run)
            } else {
                run()
            }
        }
        "msb" => msb_kway(
            &g,
            k,
            &MsbConfig {
                seed,
                ..MsbConfig::default()
            },
        ),
        "msb-kl" => msb_kl_kway(
            &g,
            k,
            &MsbConfig {
                seed,
                ..MsbConfig::default()
            },
        ),
        "chaco" => chaco_ml_kway(
            &g,
            k,
            &ChacoMlConfig {
                seed,
                ..ChacoMlConfig::default()
            },
        ),
        other => return Err(format!("unknown method `{other}` (ml|msb|msb-kl|chaco)")),
    };
    let elapsed = t.elapsed();
    let cut = edge_cut_kway(&g, &part);
    trace.set_meta("edge_cut", cut);
    println!(
        "method={method} k={k} edge-cut={cut} imbalance={:.3} time={:.3}s",
        imbalance(&g, &part, k),
        elapsed.as_secs_f64()
    );
    if opt(&opts, "report").is_some_and(|v| v != "false") {
        println!("{}", mlgp_part::PartitionReport::new(&g, &part, k));
    }
    if opt(&opts, "report-json").is_some_and(|v| v != "false") {
        println!(
            "{}",
            mlgp_part::PartitionReport::new(&g, &part, k).to_json()
        );
    }
    emit_trace(&trace, &opts)?;
    if let Some(out) = opt(&opts, "out") {
        let body: String = part.iter().map(|p| format!("{p}\n")).collect();
        std::fs::write(out, body).map_err(|e| e.to_string())?;
        eprintln!("partition vector written to {out}");
    }
    Ok(())
}

fn cmd_order(args: &[String]) -> Result<(), String> {
    let (pos, opts) = split_opts(args)?;
    let [spec] = pos.as_slice() else {
        return Err(format!("order needs <graph>\n{USAGE}"));
    };
    let method = opt(&opts, "method").unwrap_or("mlnd");
    let g = load_graph(spec)?;
    eprintln!("graph: {} vertices, {} edges", g.n(), g.m());
    let trace = make_trace(&opts, &g, spec);
    trace.set_meta("command", "order");
    trace.set_meta("method", method);
    let t = Instant::now();
    let perm = match method {
        "mlnd" => mlgp::order::nested_dissection_traced(&g, &mlgp::order::NdConfig::mlnd(), &trace),
        "mmd" => mmd_order(&g),
        "snd" => mlgp::order::nested_dissection_traced(&g, &mlgp::order::NdConfig::snd(), &trace),
        other => return Err(format!("unknown method `{other}` (mlnd|mmd|snd)")),
    };
    let elapsed = t.elapsed();
    let stats = analyze_ordering(&g, &perm);
    println!(
        "method={method} nnz(L)={} opcount={:.3e} etree-height={} time={:.3}s",
        stats.nnz_l,
        stats.opcount,
        stats.height,
        elapsed.as_secs_f64()
    );
    emit_trace(&trace, &opts)?;
    if let Some(out) = opt(&opts, "out") {
        let body: String = perm.perm().iter().map(|p| format!("{p}\n")).collect();
        std::fs::write(out, body).map_err(|e| e.to_string())?;
        eprintln!("permutation written to {out}");
    }
    Ok(())
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let (pos, opts) = split_opts(args)?;
    let [key, out] = pos.as_slice() else {
        return Err(format!("gen needs <key> <out.graph>\n{USAGE}"));
    };
    let scale: f64 = opt(&opts, "scale")
        .map(|s| s.parse().map_err(|_| format!("bad scale `{s}`")))
        .transpose()?
        .unwrap_or(1.0);
    let entry = generators::entry(key).ok_or_else(|| format!("unknown suite key `{key}`"))?;
    let g = entry.generate_scaled(scale);
    mlgp_graph::io::write_graph_file(&g, Path::new(out)).map_err(|e| e.to_string())?;
    println!(
        "{key} ({}): {} vertices, {} edges -> {out}",
        entry.paper_name,
        g.n(),
        g.m()
    );
    Ok(())
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let (pos, _) = split_opts(args)?;
    let [spec] = pos.as_slice() else {
        return Err(format!("info needs <graph>\n{USAGE}"));
    };
    let g = load_graph(spec)?;
    let (ncomp, _) = mlgp_graph::connected_components(&g);
    println!(
        "vertices={} edges={} avg-degree={:.2} max-degree={} components={} total-vwgt={} total-adjwgt={}",
        g.n(),
        g.m(),
        g.avg_degree(),
        g.max_degree(),
        ncomp,
        g.total_vwgt(),
        g.total_adjwgt()
    );
    Ok(())
}
