//! Quickstart: partition a mesh and order a sparse matrix in a dozen lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mlgp::prelude::*;

fn main() {
    // A 3D tetrahedral-like FEM mesh (~13.8k vertices), the kind of graph
    // the paper's evaluation centers on.
    let g = mlgp::graph::generators::tet_mesh3d(24, 24, 24, 42);
    println!(
        "graph: {} vertices, {} edges, avg degree {:.1}",
        g.n(),
        g.m(),
        g.avg_degree()
    );

    // --- k-way partitioning (assign mesh nodes to 16 processors) ---------
    let k = 16;
    let result = kway_partition(&g, k, &MlConfig::default());
    println!(
        "\n{k}-way partition: edge-cut = {}, imbalance = {:.3}",
        result.edge_cut,
        imbalance(&g, &result.part, k)
    );
    println!(
        "phase times: coarsen {:.0} ms, uncoarsen {:.0} ms",
        result.times.coarsen.as_secs_f64() * 1e3,
        result.times.uncoarsen().as_secs_f64() * 1e3
    );

    // --- fill-reducing ordering (sparse Cholesky) -------------------------
    let perm = mlnd_order(&g);
    let nd = analyze_ordering(&g, &perm);
    let natural = analyze_ordering(&g, &Permutation::identity(g.n()));
    println!(
        "\nnested dissection ordering: nnz(L) = {:.2}M, opcount = {:.2e} \
         ({}x fewer ops than natural order)",
        nd.nnz_l as f64 / 1e6,
        nd.opcount,
        (natural.opcount / nd.opcount).round()
    );
}
