//! The paper's motivating application (§1): minimizing communication in
//! parallel sparse matrix-vector multiplication.
//!
//! Partitions the graph of a sparse matrix across `p` processors and
//! compares the communication a parallel SpMV would incur under (a) a naive
//! block partition of the rows, (b) the multilevel partition, and (c) the
//! spectral baseline. Reports per-processor load balance, edge-cut, and
//! total communication volume.
//!
//! ```sh
//! cargo run --release --example parallel_spmv
//! ```

use mlgp::prelude::*;
use mlgp_part::communication_volume;
use std::time::Instant;

fn report(name: &str, g: &CsrGraph, part: &[u32], p: usize, secs: f64) {
    println!(
        "{name:<12} edge-cut {:>8}   comm volume {:>8}   imbalance {:.3}   time {:>7.3}s",
        edge_cut_kway(g, part),
        communication_volume(g, part),
        imbalance(g, part, p),
        secs,
    );
}

fn main() {
    // A 2D CFD-style 9-point grid (SHYY-class, ~76k vertices at full size;
    // scaled down so the example runs in seconds).
    let g = mlgp::graph::generators::grid2d_9pt(160, 160, false);
    let p = 32;
    println!(
        "distributing SpMV of a {}x{} sparse matrix ({} nonzeros) over {p} processors\n",
        g.n(),
        g.n(),
        g.nnz() + g.n()
    );

    // (a) naive block row distribution: rows i*n/p .. (i+1)*n/p per rank.
    let n = g.n();
    let naive: Vec<u32> = (0..n).map(|v| (v * p / n) as u32).collect();
    report("block-rows", &g, &naive, p, 0.0);

    // (b) multilevel k-way partition (this paper).
    let t = Instant::now();
    let ml = kway_partition(&g, p, &MlConfig::default());
    report("multilevel", &g, &ml.part, p, t.elapsed().as_secs_f64());

    // (c) multilevel spectral bisection baseline.
    let t = Instant::now();
    let msb = msb_kway(&g, p, &MsbConfig::default());
    report("msb", &g, &msb, p, t.elapsed().as_secs_f64());

    let naive_cut = edge_cut_kway(&g, &naive);
    println!(
        "\nmultilevel cuts {:.1}x less communication than block rows",
        naive_cut as f64 / ml.edge_cut as f64
    );
}
