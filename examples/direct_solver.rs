//! The paper's motivating pipeline, end to end: solve a sparse SPD system
//! with a direct method, comparing fill-reducing orderings.
//!
//! Builds `A = L(G) + σI` for a 3D stiffness graph, orders with natural /
//! MMD / MLND, factors numerically (LDLᵀ), and solves — showing that the
//! symbolic opcounts of Figure 5 translate into real factorization time
//! and memory.
//!
//! ```sh
//! cargo run --release --example direct_solver
//! ```

use mlgp::order::{apply_shifted_laplacian, factor_laplacian};
use mlgp::prelude::*;
use std::time::Instant;

fn main() {
    let g = mlgp::graph::generators::stiffness3d(14, 14, 14);
    let n = g.n();
    let shift = 1.0;
    println!(
        "system: n = {n}, nnz(A) = {} (3D stiffness + I)\n",
        g.nnz() + n
    );
    let b: Vec<f64> = (0..n).map(|i| ((i % 13) as f64) - 6.0).collect();
    let bnorm = b.iter().map(|v| v * v).sum::<f64>().sqrt();
    println!(
        "{:<10} {:>12} {:>10} {:>10} {:>12}",
        "ordering", "nnz(L)", "factor(s)", "solve(s)", "rel. resid"
    );
    for (name, perm) in [
        ("natural", Permutation::identity(n)),
        ("mmd", mmd_order(&g)),
        ("mlnd", mlnd_order(&g)),
    ] {
        let t = Instant::now();
        let f = factor_laplacian(&g, shift, &perm);
        let t_factor = t.elapsed().as_secs_f64();
        let t = Instant::now();
        let x = f.solve(&b);
        let t_solve = t.elapsed().as_secs_f64();
        let ax = apply_shifted_laplacian(&g, shift, &x);
        let resid = ax
            .iter()
            .zip(&b)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
            / bnorm;
        println!(
            "{name:<10} {:>12} {:>10.3} {:>10.4} {:>12.2e}",
            f.nnz_l(),
            t_factor,
            t_solve,
            resid
        );
    }
    println!("\nthe ordering changes only fill and flops — every solve is exact to");
    println!("machine precision. Factor time tracks the symbolic opcount of Figure 5.");
}
