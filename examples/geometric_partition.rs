//! Geometric partitioning (§1's "other class"): RCB, inertial, and
//! randomized separators on an embedded FEM mesh, against the multilevel
//! scheme.
//!
//! ```sh
//! cargo run --release --example geometric_partition
//! ```

use mlgp::graph::generators as gen;
use mlgp::prelude::*;
use std::time::Instant;

fn main() {
    let (nx, ny) = (120, 120);
    let g = gen::tri_mesh2d(nx, ny, 0x4e17);
    let pts = gen::tri_mesh2d_coords(nx, ny, 0x4e17);
    let k = 16;
    println!(
        "irregular 2D mesh: {} vertices, {} edges; k = {k}\n",
        g.n(),
        g.m()
    );
    println!(
        "{:<18} {:>10} {:>10} {:>9}",
        "method", "edge-cut", "imbalance", "time(s)"
    );
    let show = |name: &str, part: Vec<u32>, secs: f64| {
        println!(
            "{name:<18} {:>10} {:>10.3} {:>9.4}",
            edge_cut_kway(&g, &part),
            imbalance(&g, &part, k),
            secs
        );
    };
    let t = Instant::now();
    let p = rcb_partition(&pts, g.vwgt(), k);
    show("coordinate (RCB)", p, t.elapsed().as_secs_f64());
    let t = Instant::now();
    let p = inertial_partition(&pts, g.vwgt(), k);
    show("inertial", p, t.elapsed().as_secs_f64());
    let t = Instant::now();
    let p = sphere_kway(&g, &pts, k, &SphereConfig::default());
    show("random separators", p, t.elapsed().as_secs_f64());
    let t = Instant::now();
    let p = kway_partition(&g, k, &MlConfig::default()).part;
    show("multilevel", p, t.elapsed().as_secs_f64());
    let t = Instant::now();
    let p = kway_partition_refined(&g, k, &MlConfig::default()).part;
    show("multilevel + kway", p, t.elapsed().as_secs_f64());
    println!("\n(geometric methods are fast but connectivity-blind — the paper's §1)");
}
