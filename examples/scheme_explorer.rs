//! Explore the multilevel design space the paper studies: every coarsening
//! matching × refinement policy combination on one graph, 32-way.
//!
//! This is the interactive companion to Tables 2-4: it makes the paper's
//! two central observations directly visible — edge-cuts vary little across
//! schemes, but runtimes vary a lot, and HEM+BKLGR sits in the sweet spot.
//!
//! ```sh
//! cargo run --release --example scheme_explorer [suite-key] [k]
//! ```

use mlgp::prelude::*;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let key = args.first().map(String::as_str).unwrap_or("4ELT");
    let k: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(32);
    let entry = mlgp::graph::generators::entry(key).unwrap_or_else(|| {
        eprintln!("unknown key {key}; using 4ELT");
        mlgp::graph::generators::entry("4ELT").unwrap()
    });
    let g = entry.generate();
    println!(
        "{} ({}): {} vertices, {} edges — {k}-way edge-cut / time\n",
        entry.key,
        entry.paper_name,
        g.n(),
        g.m()
    );
    print!("{:<6}", "");
    for r in RefinementPolicy::evaluated() {
        print!("{:>16}", r.abbrev());
    }
    println!();
    for m in MatchingScheme::all() {
        print!("{:<6}", m.abbrev());
        for r in RefinementPolicy::evaluated() {
            let cfg = MlConfig {
                matching: m,
                refinement: r,
                ..MlConfig::default()
            };
            let t = Instant::now();
            let res = kway_partition(&g, k, &cfg);
            let secs = t.elapsed().as_secs_f64();
            print!("{:>10}/{:<5.2}", res.edge_cut, secs);
        }
        println!();
    }
    println!("\ncells are edge-cut / seconds; paper default is HEM row, BKLGR column");
}
