//! Fill-reducing orderings for direct sparse factorization (§4.3).
//!
//! Orders a 3D stiffness-style matrix with natural, MMD, MLND and SND
//! orderings and reports factor nonzeros, operation counts, and elimination
//! tree heights — the three quantities the paper uses to argue MLND is the
//! right ordering for *parallel* factorization.
//!
//! ```sh
//! cargo run --release --example sparse_ordering
//! ```

use mlgp::prelude::*;
use std::time::Instant;

fn main() {
    // A 3D hexahedral stiffness graph (BCSSTK-class, scaled to ~8k).
    let g = mlgp::graph::generators::stiffness3d(20, 20, 20);
    println!(
        "matrix: n = {}, nnz = {} (3D 27-point stiffness)\n",
        g.n(),
        g.nnz() + g.n()
    );
    println!(
        "{:<10} {:>12} {:>14} {:>8} {:>9}",
        "ordering", "nnz(L)", "opcount", "height", "time(s)"
    );
    let mut rows: Vec<(&str, SymbolicStats, f64)> = Vec::new();
    let t = Instant::now();
    let nat = analyze_ordering(&g, &Permutation::identity(g.n()));
    rows.push(("natural", nat, t.elapsed().as_secs_f64()));
    let t = Instant::now();
    let p = mmd_order(&g);
    rows.push(("mmd", analyze_ordering(&g, &p), t.elapsed().as_secs_f64()));
    let t = Instant::now();
    let p = mlnd_order(&g);
    rows.push(("mlnd", analyze_ordering(&g, &p), t.elapsed().as_secs_f64()));
    let t = Instant::now();
    let p = snd_order(&g);
    rows.push(("snd", analyze_ordering(&g, &p), t.elapsed().as_secs_f64()));
    for (name, s, secs) in &rows {
        println!(
            "{name:<10} {:>12} {:>14.3e} {:>8} {:>9.2}",
            s.nnz_l, s.opcount, s.height, secs
        );
    }
    let mmd = &rows[1].1;
    let mlnd = &rows[2].1;
    println!(
        "\nMLND vs MMD: {:.2}x the operations, {:.2}x the etree height \
         (lower height => more factorization concurrency)",
        mlnd.opcount / mmd.opcount,
        mlnd.height as f64 / mmd.height as f64
    );
}
