//! Property-based tests of cross-crate invariants.

use mlgp::prelude::*;
use mlgp_graph::rng::seeded;
use mlgp_order::{analyze_ordering as analyze, separator_is_valid, vertex_separator, SEPARATOR};
use mlgp_part::{
    bisect, compute_matching, contract, edge_cut_bisection, BalanceTargets, MatchingScheme,
};
use proptest::prelude::*;
use rand::RngExt;

/// Random connected graph from a seed: a random tree plus extra edges.
fn random_connected(n: usize, extra: usize, seed: u64) -> CsrGraph {
    let mut rng = seeded(seed);
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        let p = rng.random_range(0..v);
        b.add_weighted_edge(v as Vid, p as Vid, 1 + rng.random_range(0..4));
    }
    for _ in 0..extra {
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        if u != v {
            b.add_weighted_edge(u as Vid, v as Vid, 1 + rng.random_range(0..4));
        }
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn matching_contraction_conserves_weight(
        n in 8usize..120,
        extra in 0usize..200,
        seed in 0u64..1000,
    ) {
        let g = random_connected(n, extra, seed);
        let cewgt = vec![0; g.n()];
        for scheme in MatchingScheme::all() {
            let m = compute_matching(&g, scheme, &cewgt, &mut seeded(seed ^ 1));
            prop_assert!(m.validate(&g).is_ok());
            prop_assert!(m.is_maximal(&g));
            let (cmap, nc) = m.to_cmap();
            let c = contract(&g, &cmap, nc, &cewgt);
            prop_assert_eq!(c.graph.total_vwgt(), g.total_vwgt());
            prop_assert!(c.graph.validate().is_ok());
            prop_assert!(c.graph.total_adjwgt() <= g.total_adjwgt());
        }
    }

    #[test]
    fn bisection_is_balanced_and_cut_is_correct(
        n in 16usize..300,
        extra in 0usize..400,
        seed in 0u64..1000,
    ) {
        let g = random_connected(n, extra, seed);
        let cfg = MlConfig { seed, ..MlConfig::default() };
        let r = bisect(&g, &cfg);
        prop_assert_eq!(r.cut, edge_cut_bisection(&g, &r.part));
        let bt = BalanceTargets::even(g.total_vwgt(), cfg.imbalance);
        prop_assert!(bt.balanced(r.pwgts), "pwgts {:?}", r.pwgts);
    }

    #[test]
    fn kway_covers_all_parts(
        n in 64usize..300,
        extra in 50usize..400,
        k in 2usize..9,
        seed in 0u64..1000,
    ) {
        let g = random_connected(n, extra, seed);
        let r = kway_partition(&g, k, &MlConfig { seed, ..MlConfig::default() });
        prop_assert_eq!(r.part.len(), g.n());
        let mut present = vec![false; k];
        for &p in &r.part {
            prop_assert!((p as usize) < k);
            present[p as usize] = true;
        }
        prop_assert!(present.iter().all(|&x| x), "empty part");
        prop_assert_eq!(r.edge_cut, edge_cut_kway(&g, &r.part));
    }

    #[test]
    fn vertex_separator_always_separates(
        n in 16usize..200,
        extra in 0usize..300,
        seed in 0u64..1000,
    ) {
        let g = random_connected(n, extra, seed);
        let r = bisect(&g, &MlConfig { seed, ..MlConfig::default() });
        let labels = vertex_separator(&g, &r.part);
        prop_assert!(separator_is_valid(&g, &labels));
        // Separator no bigger than the smaller boundary side.
        let cut_edges = r.cut;
        let sep = labels.iter().filter(|&&l| l == SEPARATOR).count();
        prop_assert!(sep as i64 <= cut_edges, "sep {} > cut {}", sep, cut_edges);
    }

    #[test]
    fn orderings_are_permutations_with_fill_lower_bound(
        n in 16usize..150,
        extra in 0usize..200,
        seed in 0u64..1000,
    ) {
        let g = random_connected(n, extra, seed);
        for p in [mmd_order(&g), mlnd_order(&g)] {
            let mut seen = vec![false; g.n()];
            for v in 0..g.n() as u32 {
                seen[p.apply(v) as usize] = true;
            }
            prop_assert!(seen.iter().all(|&s| s));
            let s = analyze(&g, &p);
            // L contains at least the original lower triangle.
            prop_assert!(s.nnz_l >= (g.n() + g.m()) as u64);
            // And at most the dense triangle.
            let nn = g.n() as u64;
            prop_assert!(s.nnz_l <= nn * (nn + 1) / 2);
        }
    }

    #[test]
    fn refinement_never_worsens_projected_cut(
        n in 32usize..200,
        extra in 20usize..300,
        seed in 0u64..1000,
    ) {
        // End-to-end monotonicity: with refinement the final cut is no
        // worse than the same pipeline without refinement.
        let g = random_connected(n, extra, seed);
        let with = bisect(&g, &MlConfig { seed, ..MlConfig::default() });
        let without = bisect(&g, &MlConfig {
            seed,
            refinement: RefinementPolicy::None,
            ..MlConfig::default()
        });
        prop_assert!(with.cut <= without.cut, "{} > {}", with.cut, without.cut);
    }
}
