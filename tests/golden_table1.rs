//! Golden quality regression over the Table 1 synthetic suite.
//!
//! `results/golden_table1.json` pins the fixed-seed 8-way edge cuts of
//! every suite graph at a small scale. The test recomputes them and fails
//! on any relative drift beyond ±2% — the band the paper itself treats as
//! noise between runs. Because the whole pipeline is deterministic (see
//! `crates/part/tests/determinism.rs`), a drift here means an algorithmic
//! change, not jitter: if the change is intentional, regenerate with
//!
//! ```sh
//! MLGP_REGEN_GOLDEN=1 cargo test --test golden_table1
//! ```
//!
//! and review the cut deltas in the diff like any other code change.

use mlgp::graph::generators::suite;
use mlgp_part::{kway_partition, MlConfig};
use std::fmt::Write as _;
use std::path::Path;

const GOLDEN_PATH: &str = "results/golden_table1.json";
const SCALE: f64 = 0.02;
const K: usize = 8;
const SEED: u64 = 4242;
/// Allowed relative drift before the test fails.
const TOLERANCE: f64 = 0.02;

fn compute_cuts() -> Vec<(&'static str, i64)> {
    suite()
        .iter()
        .map(|e| {
            let g = e.generate_scaled(SCALE);
            let cut = kway_partition(
                &g,
                K,
                &MlConfig {
                    seed: SEED,
                    ..MlConfig::default()
                },
            )
            .edge_cut;
            (e.key, cut)
        })
        .collect()
}

fn render(cuts: &[(&str, i64)]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(
        s,
        "  \"_regen\": \"MLGP_REGEN_GOLDEN=1 cargo test --test golden_table1\","
    );
    let _ = writeln!(s, "  \"scale\": {SCALE},");
    let _ = writeln!(s, "  \"k\": {K},");
    let _ = writeln!(s, "  \"seed\": {SEED},");
    s.push_str("  \"cuts\": {\n");
    for (i, (key, cut)) in cuts.iter().enumerate() {
        let comma = if i + 1 < cuts.len() { "," } else { "" };
        let _ = writeln!(s, "    \"{key}\": {cut}{comma}");
    }
    s.push_str("  }\n}\n");
    s
}

/// Minimal line-oriented parser for the golden file's `"KEY": N` pairs
/// (the vendored environment has no JSON dependency; the file format is
/// ours, one cut per line).
fn parse(golden: &str) -> Vec<(String, i64)> {
    let mut cuts = Vec::new();
    let mut in_cuts = false;
    for line in golden.lines() {
        let t = line.trim();
        if t.starts_with("\"cuts\"") {
            in_cuts = true;
            continue;
        }
        if !in_cuts {
            continue;
        }
        if t.starts_with('}') {
            break;
        }
        let Some((key, value)) = t.split_once(':') else {
            continue;
        };
        let key = key.trim().trim_matches('"').to_string();
        let value = value.trim().trim_end_matches(',');
        if let Ok(cut) = value.parse::<i64>() {
            cuts.push((key, cut));
        }
    }
    cuts
}

#[test]
fn golden_cuts_have_not_drifted() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(GOLDEN_PATH);
    let cuts = compute_cuts();
    if std::env::var("MLGP_REGEN_GOLDEN").is_ok_and(|v| v == "1") {
        std::fs::write(&path, render(&cuts)).expect("write golden file");
        eprintln!("regenerated {GOLDEN_PATH} with {} entries", cuts.len());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing {GOLDEN_PATH} ({e}); regenerate with MLGP_REGEN_GOLDEN=1")
    });
    let expected = parse(&golden);
    assert_eq!(
        expected.len(),
        cuts.len(),
        "golden file covers {} graphs, suite has {} — regenerate",
        expected.len(),
        cuts.len()
    );
    let mut failures = Vec::new();
    for ((key, cut), (gkey, golden_cut)) in cuts.iter().zip(&expected) {
        assert_eq!(
            key, gkey,
            "suite order changed — regenerate the golden file"
        );
        // Integer-exact for tiny cuts; ±2% once cuts are large enough for
        // a relative band to be meaningful.
        let drift = (*cut - *golden_cut).abs() as f64;
        let allowed = (TOLERANCE * *golden_cut as f64).max(0.0);
        if drift > allowed {
            failures.push(format!(
                "{key}: cut {cut} vs golden {golden_cut} (drift {:.1}%, allowed {:.0}%)",
                100.0 * drift / (*golden_cut).max(1) as f64,
                100.0 * TOLERANCE
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "quality drift beyond ±{:.0}%:\n  {}\n(if intentional: MLGP_REGEN_GOLDEN=1 cargo test --test golden_table1)",
        100.0 * TOLERANCE,
        failures.join("\n  ")
    );
}
