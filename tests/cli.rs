//! End-to-end tests of the `mlgp` command-line tool.

use std::process::Command;

fn mlgp() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mlgp"))
}

#[test]
fn partition_generated_graph() {
    let out = mlgp()
        .args(["partition", "gen:4ELT@0.05", "4"])
        .output()
        .expect("spawn mlgp");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("edge-cut="), "{stdout}");
    assert!(stdout.contains("k=4"));
}

#[test]
fn order_generated_graph_all_methods() {
    for method in ["mlnd", "mmd", "snd"] {
        let out = mlgp()
            .args(["order", "gen:LS34@0.2", "--method", method])
            .output()
            .expect("spawn mlgp");
        assert!(
            out.status.success(),
            "{method}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("nnz(L)="), "{method}: {stdout}");
    }
}

#[test]
fn gen_then_partition_file_round_trip() {
    let dir = std::env::temp_dir().join(format!("mlgp-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let graph = dir.join("t.graph");
    let out = mlgp()
        .args(["gen", "BSP10", graph.to_str().unwrap(), "--scale", "0.1"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let partfile = dir.join("t.part");
    let out = mlgp()
        .args([
            "partition",
            graph.to_str().unwrap(),
            "2",
            "--out",
            partfile.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let labels = std::fs::read_to_string(&partfile).unwrap();
    let count = labels.lines().count();
    assert!(count > 100, "partition vector too short: {count}");
    assert!(labels.lines().all(|l| l == "0" || l == "1"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bare_report_flag_is_boolean() {
    let out = mlgp()
        .args(["partition", "gen:LS34@0.2", "2", "--report"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("comm volume"), "{stdout}");
}

#[test]
fn info_reports_structure() {
    let out = mlgp().args(["info", "gen:LS34"]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("components=1"), "{stdout}");
}

#[test]
fn unknown_commands_fail_cleanly() {
    let out = mlgp().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    let out = mlgp()
        .args(["partition", "gen:NOPE", "2"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let out = mlgp()
        .args(["partition", "gen:LS34", "0"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn help_prints_usage() {
    let out = mlgp().args(["--help"]).output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn stats_prints_phase_tree_to_stderr() {
    let out = mlgp()
        .args(["partition", "gen:4ELT@0.2", "4", "--stats"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    for needle in [
        "phase tree",
        "coarsen",
        "uncoarsen",
        "refine",
        "project",
        "fm_passes",
    ] {
        assert!(stderr.contains(needle), "missing `{needle}` in:\n{stderr}");
    }
    // The tree goes to stderr, not stdout.
    assert!(!String::from_utf8_lossy(&out.stdout).contains("phase tree"));
}

#[test]
fn trace_file_is_parseable_jsonl_with_level_records() {
    let path = std::env::temp_dir().join(format!("mlgp-trace-{}.jsonl", std::process::id()));
    let out = mlgp()
        .args([
            "partition",
            "gen:4ELT@0.2",
            "4",
            "--trace",
            path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let body = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let mut kinds = std::collections::BTreeMap::new();
    for line in body.lines() {
        let v = mlgp::trace::json::parse(line).unwrap_or_else(|e| panic!("bad line {line}: {e}"));
        let t = v.get("type").and_then(|t| t.as_str()).unwrap().to_string();
        *kinds.entry(t.clone()).or_insert(0usize) += 1;
        if t == "coarsen_level" {
            for f in ["level", "vertices", "edges", "matched_fraction", "edge_wgt"] {
                assert!(v.get(f).is_some(), "coarsen_level missing {f}: {line}");
            }
        }
        if t == "refine_level" {
            for f in ["level", "cut_before", "cut_after", "passes", "moves"] {
                assert!(v.get(f).is_some(), "refine_level missing {f}: {line}");
            }
        }
    }
    // One record per hierarchy level for both phases, plus spans and counters.
    assert!(
        kinds.get("coarsen_level").copied().unwrap_or(0) >= 3,
        "{kinds:?}"
    );
    assert_eq!(
        kinds.get("coarsen_level"),
        kinds.get("refine_level"),
        "{kinds:?}"
    );
    assert!(
        kinds.contains_key("span") && kinds.contains_key("counter"),
        "{kinds:?}"
    );
    assert_eq!(kinds.get("meta"), Some(&1), "{kinds:?}");
}

#[test]
fn report_json_is_a_single_parseable_object() {
    let out = mlgp()
        .args(["partition", "gen:LS34@0.2", "2", "--report-json"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let json_line = stdout
        .lines()
        .find(|l| l.starts_with('{'))
        .expect("no JSON object on stdout");
    let v = mlgp::trace::json::parse(json_line).unwrap();
    assert_eq!(v.get("nparts").and_then(|x| x.as_f64()), Some(2.0));
    assert!(v.get("edge_cut").and_then(|x| x.as_f64()).unwrap() >= 0.0);
    assert!(v.get("imbalance").and_then(|x| x.as_f64()).unwrap() >= 1.0);
}

#[test]
fn order_stats_reports_separator_telemetry() {
    let out = mlgp()
        .args(["order", "gen:LS34@0.2", "--stats"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    for needle in ["nd", "separator_vertices", "phase tree"] {
        assert!(stderr.contains(needle), "missing `{needle}` in:\n{stderr}");
    }
}
