//! End-to-end tests of the `mlgp` command-line tool.

use std::process::Command;

fn mlgp() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mlgp"))
}

#[test]
fn partition_generated_graph() {
    let out = mlgp()
        .args(["partition", "gen:4ELT@0.05", "4"])
        .output()
        .expect("spawn mlgp");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("edge-cut="), "{stdout}");
    assert!(stdout.contains("k=4"));
}

#[test]
fn order_generated_graph_all_methods() {
    for method in ["mlnd", "mmd", "snd"] {
        let out = mlgp()
            .args(["order", "gen:LS34@0.2", "--method", method])
            .output()
            .expect("spawn mlgp");
        assert!(
            out.status.success(),
            "{method}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("nnz(L)="), "{method}: {stdout}");
    }
}

#[test]
fn gen_then_partition_file_round_trip() {
    let dir = std::env::temp_dir().join(format!("mlgp-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let graph = dir.join("t.graph");
    let out = mlgp()
        .args(["gen", "BSP10", graph.to_str().unwrap(), "--scale", "0.1"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let partfile = dir.join("t.part");
    let out = mlgp()
        .args([
            "partition",
            graph.to_str().unwrap(),
            "2",
            "--out",
            partfile.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let labels = std::fs::read_to_string(&partfile).unwrap();
    let count = labels.lines().count();
    assert!(count > 100, "partition vector too short: {count}");
    assert!(labels.lines().all(|l| l == "0" || l == "1"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bare_report_flag_is_boolean() {
    let out = mlgp()
        .args(["partition", "gen:LS34@0.2", "2", "--report"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("comm volume"), "{stdout}");
}

#[test]
fn info_reports_structure() {
    let out = mlgp().args(["info", "gen:LS34"]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("components=1"), "{stdout}");
}

#[test]
fn unknown_commands_fail_cleanly() {
    let out = mlgp().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    let out = mlgp().args(["partition", "gen:NOPE", "2"]).output().unwrap();
    assert!(!out.status.success());
    let out = mlgp().args(["partition", "gen:LS34", "0"]).output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn help_prints_usage() {
    let out = mlgp().args(["--help"]).output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}
