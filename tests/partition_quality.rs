//! Cross-crate integration: partition quality of the multilevel scheme
//! against its baselines and against known-optimal structures.

use mlgp::prelude::*;
use mlgp_part::{bisect, part_weights, BalanceTargets};

/// `MLGP_HEAVY_TESTS=1` (scheduled CI job) restores the original instance
/// sizes; the default keeps the suite fast in debug builds.
fn heavy_dim(light: usize, heavy: usize) -> usize {
    if std::env::var("MLGP_HEAVY_TESTS").is_ok_and(|v| v == "1") {
        heavy
    } else {
        light
    }
}

#[test]
fn multilevel_matches_known_grid_structure() {
    // 48x48 grid: optimal bisection 48, optimal 4-way 96.
    let g = mlgp::graph::generators::grid2d(48, 48);
    let two = bisect(&g, &MlConfig::default());
    assert!(two.cut <= 72, "bisection cut {}", two.cut);
    let four = kway_partition(&g, 4, &MlConfig::default());
    assert!(four.edge_cut <= 160, "4-way cut {}", four.edge_cut);
    assert!(imbalance(&g, &four.part, 4) <= 1.06);
}

#[test]
fn multilevel_no_worse_than_spectral_baselines_on_mesh() {
    // The paper's headline: similar-or-better quality than MSB at a
    // fraction of the time. Allow 15% slack for this single medium mesh.
    let d = heavy_dim(10, 14);
    let g = mlgp::graph::generators::tet_mesh3d(d, d, d, 3);
    let k = 8;
    let ml = kway_partition(&g, k, &MlConfig::default());
    let msb = msb_kway(&g, k, &MsbConfig::default());
    let msb_cut = edge_cut_kway(&g, &msb);
    assert!(
        (ml.edge_cut as f64) <= 1.15 * msb_cut as f64,
        "multilevel {} vs MSB {}",
        ml.edge_cut,
        msb_cut
    );
}

#[test]
fn every_matching_scheme_partitions_the_lp_graph() {
    // FINAN512-class graph: no geometry, the case where geometric methods
    // fail outright; all multilevel variants must handle it.
    let g = mlgp::graph::generators::hierarchical_lp(32, 24, 9);
    for m in MatchingScheme::all() {
        let cfg = MlConfig {
            matching: m,
            ..MlConfig::default()
        };
        let r = kway_partition(&g, 8, &cfg);
        assert!(imbalance(&g, &r.part, 8) < 1.10, "{m:?}");
        assert!(r.edge_cut > 0, "{m:?}");
    }
}

#[test]
fn partition_vector_is_complete_and_in_range() {
    let g = mlgp::graph::generators::powerlaw(3000, 3, 11);
    for k in [2, 3, 16] {
        let r = kway_partition(&g, k, &MlConfig::default());
        assert_eq!(r.part.len(), g.n());
        assert!(r.part.iter().all(|&p| (p as usize) < k), "k={k}");
        let w = part_weights(&g, &r.part, k);
        assert!(w.iter().all(|&x| x > 0), "k={k}: empty part {w:?}");
    }
}

#[test]
fn weighted_graph_bisection_respects_vertex_weights() {
    // Heavier vertices on one end: balance must be by weight, not count.
    let grid = mlgp::graph::generators::grid2d(20, 10);
    let mut b = mlgp::graph::GraphBuilder::new(grid.n());
    for v in 0..grid.n() as u32 {
        for (u, w) in grid.adj(v) {
            if u > v {
                b.add_weighted_edge(v, u, w);
            }
        }
    }
    // Vertex weight 1..5 depending on column.
    let vw: Vec<i64> = (0..grid.n()).map(|v| 1 + (v % 20 / 4) as i64).collect();
    b.set_vertex_weights(vw);
    let g = b.build();
    let r = bisect(&g, &MlConfig::default());
    let bt = BalanceTargets::even(g.total_vwgt(), 1.03);
    assert!(
        bt.balanced(r.pwgts),
        "{:?} of total {}",
        r.pwgts,
        g.total_vwgt()
    );
}

#[test]
fn chaco_ml_and_msb_kl_are_sane_on_grid() {
    let g = mlgp::graph::generators::grid2d(32, 32);
    let ours = kway_partition(&g, 4, &MlConfig::default()).edge_cut;
    for (name, part) in [
        ("chaco", chaco_ml_kway(&g, 4, &ChacoMlConfig::default())),
        ("msb-kl", msb_kl_kway(&g, 4, &MsbConfig::default())),
    ] {
        let cut = edge_cut_kway(&g, &part);
        assert!(imbalance(&g, &part, 4) < 1.10, "{name}");
        // Baselines are real algorithms: within 2x of ours on an easy grid.
        assert!(cut <= 2 * ours.max(96), "{name}: {cut} vs ours {ours}");
    }
}
