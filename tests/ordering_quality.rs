//! Cross-crate integration: fill-reducing ordering quality (§4.3 claims at
//! test scale).

use mlgp::prelude::*;

fn is_perm(p: &Permutation, n: usize) -> bool {
    let mut seen = vec![false; n];
    for v in 0..n as u32 {
        seen[p.apply(v) as usize] = true;
    }
    seen.iter().all(|&s| s)
}

#[test]
fn all_orderings_are_permutations_on_suite_samples() {
    for key in ["LS34", "BSP10", "4ELT"] {
        let g = mlgp::graph::generators::entry(key)
            .unwrap()
            .generate_scaled(0.08);
        for (name, p) in [
            ("mmd", mmd_order(&g)),
            ("mlnd", mlnd_order(&g)),
            ("snd", snd_order(&g)),
        ] {
            assert!(is_perm(&p, g.n()), "{key}/{name}");
        }
    }
}

#[test]
fn mlnd_beats_mmd_on_3d_stiffness() {
    // The paper's Figure 5 headline: on large 3D problems MLND needs far
    // fewer operations than MMD. Directionally visible even at 13^3.
    let g = mlgp::graph::generators::stiffness3d(13, 13, 13);
    let nd = analyze_ordering(&g, &mlnd_order(&g));
    let md = analyze_ordering(&g, &mmd_order(&g));
    assert!(
        nd.opcount < 1.25 * md.opcount,
        "MLND {:.3e} vs MMD {:.3e}",
        nd.opcount,
        md.opcount
    );
    // And the concurrency claim: ND trees are much shallower.
    assert!(
        nd.height < md.height,
        "MLND height {} vs MMD {}",
        nd.height,
        md.height
    );
}

#[test]
fn mmd_wins_on_stringy_network_graphs() {
    // The paper: "the only exception is BCSPWR10 for which all nested
    // dissection schemes perform poorly" — MMD is allowed to win there.
    let g = mlgp::graph::generators::powergrid(3000, 5);
    let nd = analyze_ordering(&g, &mlnd_order(&g));
    let md = analyze_ordering(&g, &mmd_order(&g));
    // Both must still be far better than a random ordering.
    let mut rng = mlgp::graph::rng::seeded(3);
    let rnd = analyze_ordering(&g, &Permutation::random(g.n(), &mut rng));
    assert!(md.opcount < rnd.opcount);
    assert!(nd.opcount < rnd.opcount);
}

#[test]
fn orderings_dramatically_reduce_fill_vs_natural_on_lshape() {
    let g = mlgp::graph::generators::lshape(60);
    let nat = analyze_ordering(&g, &Permutation::identity(g.n()));
    for (name, p) in [("mmd", mmd_order(&g)), ("mlnd", mlnd_order(&g))] {
        let s = analyze_ordering(&g, &p);
        assert!(
            s.opcount < nat.opcount / 2.0,
            "{name}: {:.3e} vs natural {:.3e}",
            s.opcount,
            nat.opcount
        );
    }
}

#[test]
fn symbolic_stats_are_monotone_in_problem_size() {
    let small = mlgp::graph::generators::stiffness3d(6, 6, 6);
    let large = mlgp::graph::generators::stiffness3d(10, 10, 10);
    let s = analyze_ordering(&small, &mlnd_order(&small));
    let l = analyze_ordering(&large, &mlnd_order(&large));
    assert!(l.nnz_l > s.nnz_l);
    assert!(l.opcount > s.opcount);
}
