//! The paper's headline claims, codified as fast regression tests at
//! reduced scale (the full-scale measurements live in EXPERIMENTS.md).
//! If a refactor breaks one of these, the reproduction itself has
//! regressed — not just a unit.

use mlgp::prelude::*;
use mlgp_part::kway_partition;
use mlgp_spectral::msb_kway;

/// `MLGP_HEAVY_TESTS=1` (set by the scheduled CI job, not the PR gate)
/// runs the original larger instances; the default sizes keep the whole
/// suite under ~10s in debug builds.
fn heavy() -> bool {
    std::env::var("MLGP_HEAVY_TESTS").is_ok_and(|v| v == "1")
}

fn pick<T>(light: T, heavy_val: T) -> T {
    if heavy() {
        heavy_val
    } else {
        light
    }
}

/// A fixed sub-suite that exercises the main graph classes quickly.
fn mini_suite() -> Vec<(&'static str, mlgp::graph::CsrGraph)> {
    let scale = pick(0.04, 0.10);
    ["BC30", "4ELT", "COPT"]
        .iter()
        .map(|k| {
            (
                *k,
                mlgp::graph::generators::entry(k)
                    .unwrap()
                    .generate_scaled(scale),
            )
        })
        .collect()
}

#[test]
fn claim_hem_coarse_partition_is_near_final() {
    // Table 3: HEM's unrefined 32-way cut sits within a small factor of the
    // refined one, while LEM's is far off.
    for (key, g) in mini_suite() {
        let refined = kway_partition(&g, 32, &MlConfig::default()).edge_cut;
        let unrefined = |m: MatchingScheme| {
            kway_partition(
                &g,
                32,
                &MlConfig {
                    matching: m,
                    refinement: RefinementPolicy::None,
                    ..MlConfig::default()
                },
            )
            .edge_cut
        };
        let hem = unrefined(MatchingScheme::HeavyEdge);
        let lem = unrefined(MatchingScheme::LightEdge);
        assert!(
            (hem as f64) < 3.0 * refined as f64,
            "{key}: HEM unrefined {hem} vs refined {refined}"
        );
        assert!(
            lem > hem,
            "{key}: LEM unrefined {lem} should exceed HEM {hem}"
        );
    }
}

#[test]
fn claim_refinement_policies_agree_on_cut_but_not_on_cost() {
    // Table 4: all five policies land within a modest band of each other.
    let g = mlgp::graph::generators::entry("BC30")
        .unwrap()
        .generate_scaled(pick(0.05, 0.10));
    let cuts: Vec<i64> = RefinementPolicy::evaluated()
        .into_iter()
        .map(|r| {
            kway_partition(
                &g,
                32,
                &MlConfig {
                    refinement: r,
                    ..MlConfig::default()
                },
            )
            .edge_cut
        })
        .collect();
    let min = *cuts.iter().min().unwrap() as f64;
    let max = *cuts.iter().max().unwrap() as f64;
    assert!(max <= 1.25 * min, "cut spread too wide: {cuts:?}");
}

#[test]
fn claim_multilevel_quality_holds_against_msb() {
    // Figures 1/2: aggregate cut within ~15% of MSB (usually better).
    // MSB's Lanczos solves dominate this test's runtime, so light mode
    // shrinks the instances further than the rest of the suite.
    let scale = pick(0.01, 0.10);
    let k = pick(4, 16);
    let mut ours_total = 0i64;
    let mut msb_total = 0i64;
    for key in ["BC30", "4ELT", "COPT"] {
        let g = mlgp::graph::generators::entry(key)
            .unwrap()
            .generate_scaled(scale);
        ours_total += kway_partition(&g, k, &MlConfig::default()).edge_cut;
        let m = msb_kway(&g, k, &MsbConfig::default());
        msb_total += edge_cut_kway(&g, &m);
    }
    assert!(
        (ours_total as f64) < 1.15 * msb_total as f64,
        "ours {ours_total} vs MSB {msb_total}"
    );
}

#[test]
fn claim_mlnd_beats_mmd_on_3d_and_flattens_the_etree() {
    // Figure 5 + the §4.3 concurrency argument, on a 3D stiffness graph.
    let d = pick(10, 14);
    let g = mlgp::graph::generators::stiffness3d(d, d, d);
    let nd = analyze_ordering(&g, &mlnd_order(&g));
    let md = analyze_ordering(&g, &mmd_order(&g));
    assert!(
        nd.opcount < md.opcount,
        "MLND {:.3e} vs MMD {:.3e}",
        nd.opcount,
        md.opcount
    );
    assert!(
        (nd.height as f64) < 0.9 * md.height as f64,
        "MLND height {} vs MMD {}",
        nd.height,
        md.height
    );
}

#[test]
fn claim_multilevel_is_much_faster_than_msb() {
    // Figure 4 direction (generous factor: debug builds, small scale).
    let g = mlgp::graph::generators::entry("BC31")
        .unwrap()
        .generate_scaled(pick(0.025, 0.15));
    let k = pick(16, 32);
    let t = std::time::Instant::now();
    let _ = kway_partition(&g, k, &MlConfig::default());
    let ours = t.elapsed();
    let t = std::time::Instant::now();
    let _ = msb_kway(&g, k, &MsbConfig::default());
    let msb = t.elapsed();
    assert!(
        msb > 2 * ours,
        "MSB {:?} should be well above ours {:?}",
        msb,
        ours
    );
}
