//! Vendored minimal stand-in for the `rayon` crate.
//!
//! The build environment is fully offline, so this shim supplies the small
//! rayon surface the workspace uses, on top of `std::thread::scope`:
//!
//! * [`join`] — runs both closures, the first on a scoped thread, so the
//!   recursive bisection / nested dissection forks still execute in
//!   parallel (the advisory thread cap propagates into both sides);
//! * `par_iter_mut().enumerate().with_min_len(_).for_each(_)` over slices —
//!   chunked across `available_parallelism` scoped threads;
//! * `(0..n).into_par_iter().with_min_len(_)` indexed range iterators with
//!   `for_each` / `map(..).sum()` / `map(..).reduce(..)` /
//!   `fold(..).reduce(..)` — the chunked-reduce backbone of the parallel
//!   coarsening and metrics kernels;
//! * `par_chunks(size)` over shared slices (with `enumerate`-style chunk
//!   indices baked into `map`'s closure arguments);
//! * [`ThreadPoolBuilder`] / [`ThreadPool::install`] — an *advisory* pool:
//!   `install` runs the closure inline and the thread-count knob only caps
//!   the chunk fan-out of subsequent parallel iterators on this thread
//!   (and, via [`join`], of the forked subtree);
//! * [`current_num_threads`] — the effective fan-out after the cap.
//!
//! Semantics match rayon closely enough for this workspace (same closure
//! bounds, deterministic results); scheduling quality does not — there is
//! no work stealing, so speedups are coarser-grained than real rayon.
//!
//! Determinism note: all reductions combine per-chunk partial results in
//! chunk order, and every workspace reduction is over integers (associative,
//! commutative), so results are independent of the thread count.

use std::cell::Cell;

thread_local! {
    /// Advisory thread cap installed by [`ThreadPool::install`] (0 = none).
    static THREAD_CAP: Cell<usize> = const { Cell::new(0) };
}

fn effective_threads() -> usize {
    let cap = THREAD_CAP.with(|c| c.get());
    let hw = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    if cap == 0 {
        hw
    } else {
        cap.min(hw.max(cap))
    }
}

/// The number of threads parallel iterators will fan out to on this thread
/// (hardware parallelism, or the advisory cap installed by
/// [`ThreadPool::install`]).
pub fn current_num_threads() -> usize {
    effective_threads()
}

/// Run `oper_a` and `oper_b`, potentially in parallel, returning both
/// results. Panics are propagated. The advisory thread cap of the calling
/// thread is carried into the forked closure so nested parallel iterators
/// see the same fan-out limit.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let cap = THREAD_CAP.with(|c| c.get());
    if effective_threads() <= 1 {
        return (oper_a(), oper_b());
    }
    std::thread::scope(|s| {
        let handle = s.spawn(move || {
            THREAD_CAP.with(|c| c.set(cap));
            oper_a()
        });
        let rb = oper_b();
        let ra = match handle.join() {
            Ok(ra) => ra,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        (ra, rb)
    })
}

/// Split `len` items into chunk jobs of at least `min_len` (at most one per
/// effective thread) and run `job(chunk_index, range)` for each, returning
/// the per-chunk results **in chunk order**. The workhorse behind every
/// parallel iterator in this shim; single-chunk workloads run inline.
fn run_chunked<T, F>(len: usize, min_len: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, std::ops::Range<usize>) -> T + Sync,
{
    if len == 0 {
        return Vec::new();
    }
    let threads = effective_threads();
    let chunk = len.div_ceil(threads).max(min_len.max(1));
    if chunk >= len || threads <= 1 {
        return vec![job(0, 0..len)];
    }
    let nchunks = len.div_ceil(chunk);
    let mut out: Vec<Option<T>> = (0..nchunks).map(|_| None).collect();
    let jref = &job;
    let cap = THREAD_CAP.with(|c| c.get());
    std::thread::scope(|s| {
        for (ci, slot) in out.iter_mut().enumerate() {
            let lo = ci * chunk;
            let hi = (lo + chunk).min(len);
            s.spawn(move || {
                THREAD_CAP.with(|c| c.set(cap));
                *slot = Some(jref(ci, lo..hi));
            });
        }
    });
    out.into_iter().map(|t| t.expect("chunk job ran")).collect()
}

/// Builder for an (advisory) thread pool.
#[derive(Clone, Copy, Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type kept for API compatibility; building never fails here.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// New builder with default (hardware) parallelism.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cap the pool at `n` threads (0 = hardware default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// Advisory thread pool: holds a thread cap applied while `install` runs.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `op` with this pool's thread cap installed on the current
    /// thread.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        let prev = THREAD_CAP.with(|c| c.replace(self.num_threads));
        let r = op();
        THREAD_CAP.with(|c| c.set(prev));
        r
    }

    /// The configured thread count (hardware default if unset).
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads == 0 {
            std::thread::available_parallelism()
                .map(|c| c.get())
                .unwrap_or(1)
        } else {
            self.num_threads
        }
    }
}

/// Parallel iterator support for mutable slices.
pub mod slice {
    /// `par_iter_mut` entry point (mirrors `rayon::prelude`).
    pub trait ParallelSliceMut<T: Send> {
        /// A parallel iterator over mutable elements.
        fn par_iter_mut(&mut self) -> ParIterMut<'_, T>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
            ParIterMut { slice: self }
        }
    }

    impl<T: Send> ParallelSliceMut<T> for Vec<T> {
        fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
            ParIterMut { slice: self }
        }
    }

    /// Parallel mutable slice iterator.
    #[derive(Debug)]
    pub struct ParIterMut<'a, T> {
        slice: &'a mut [T],
    }

    impl<'a, T: Send> ParIterMut<'a, T> {
        /// Pair each element with its index.
        pub fn enumerate(self) -> Enumerate<'a, T> {
            Enumerate {
                slice: self.slice,
                min_len: 1,
            }
        }

        /// Apply `f` to every element, in parallel chunks.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(&mut T) + Sync,
        {
            self.enumerate().for_each(|(_, t)| f(t));
        }
    }

    /// Enumerated parallel mutable slice iterator.
    #[derive(Debug)]
    pub struct Enumerate<'a, T> {
        slice: &'a mut [T],
        min_len: usize,
    }

    impl<T: Send> Enumerate<'_, T> {
        /// Minimum chunk length per thread.
        pub fn with_min_len(mut self, min_len: usize) -> Self {
            self.min_len = min_len.max(1);
            self
        }

        /// Apply `f` to every `(index, element)` pair, in parallel chunks.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn((usize, &mut T)) + Sync,
        {
            let n = self.slice.len();
            if n == 0 {
                return;
            }
            let threads = super::effective_threads();
            let chunk = n.div_ceil(threads).max(self.min_len.max(1));
            if chunk >= n || threads <= 1 {
                for (i, t) in self.slice.iter_mut().enumerate() {
                    f((i, t));
                }
                return;
            }
            let fref = &f;
            let cap = super::THREAD_CAP.with(|c| c.get());
            std::thread::scope(|s| {
                for (ci, ch) in self.slice.chunks_mut(chunk).enumerate() {
                    let base = ci * chunk;
                    s.spawn(move || {
                        super::THREAD_CAP.with(|c| c.set(cap));
                        for (i, t) in ch.iter_mut().enumerate() {
                            fref((base + i, t));
                        }
                    });
                }
            });
        }
    }

    /// `par_chunks` entry point over shared slices (mirrors
    /// `rayon::slice::ParallelSlice`).
    pub trait ParallelSlice<T: Sync> {
        /// A parallel iterator over contiguous chunks of `size` elements
        /// (the final chunk may be shorter).
        fn par_chunks(&self, size: usize) -> ParChunks<'_, T>;
    }

    impl<T: Sync> ParallelSlice<T> for [T] {
        fn par_chunks(&self, size: usize) -> ParChunks<'_, T> {
            ParChunks {
                slice: self,
                size: size.max(1),
            }
        }
    }

    /// Parallel shared-chunk iterator.
    #[derive(Debug)]
    pub struct ParChunks<'a, T> {
        slice: &'a [T],
        size: usize,
    }

    impl<'a, T: Sync> ParChunks<'a, T> {
        /// Map each `(chunk_index, chunk)` pair to a value; chain with
        /// [`ChunksMap::reduce`] or [`ChunksMap::sum`].
        pub fn map<U, F>(self, f: F) -> ChunksMap<'a, T, F>
        where
            U: Send,
            F: Fn(usize, &[T]) -> U + Sync,
        {
            ChunksMap {
                slice: self.slice,
                size: self.size,
                f,
            }
        }

        /// Apply `f` to every `(chunk_index, chunk)` pair.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(usize, &[T]) + Sync,
        {
            self.map(|ci, ch| f(ci, ch)).reduce(|| (), |_, _| ());
        }
    }

    /// Mapped parallel chunk iterator.
    pub struct ChunksMap<'a, T, F> {
        slice: &'a [T],
        size: usize,
        f: F,
    }

    impl<T, F> std::fmt::Debug for ChunksMap<'_, T, F> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("ChunksMap").finish_non_exhaustive()
        }
    }

    impl<T: Sync, U: Send, F: Fn(usize, &[T]) -> U + Sync> ChunksMap<'_, T, F> {
        /// Reduce the per-chunk values with `op`, starting from `identity`.
        /// Partial results are combined in chunk order.
        pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> U
        where
            ID: Fn() -> U + Sync,
            OP: Fn(U, U) -> U + Sync,
        {
            let nchunks = self.slice.len().div_ceil(self.size).max(1);
            let threads = super::effective_threads().max(1);
            // One spawned job per thread; each job covers a contiguous run
            // of chunks so chunk indices stay meaningful.
            let per_job = nchunks.div_ceil(threads);
            let f = &self.f;
            let slice = self.slice;
            let size = self.size;
            super::run_chunked(nchunks, per_job, |_, chunks| {
                let mut acc = identity();
                for ci in chunks {
                    let lo = ci * size;
                    let hi = (lo + size).min(slice.len());
                    acc = op(acc, f(ci, &slice[lo..hi]));
                }
                acc
            })
            .into_iter()
            .fold(identity(), op)
        }

        /// Sum the per-chunk values. Partial sums are combined in chunk
        /// order (exact for the integer sums used in this workspace).
        pub fn sum(self) -> U
        where
            U: std::iter::Sum<U>,
        {
            let nchunks = self.slice.len().div_ceil(self.size).max(1);
            let threads = super::effective_threads().max(1);
            let per_job = nchunks.div_ceil(threads);
            let f = &self.f;
            let slice = self.slice;
            let size = self.size;
            let partials = super::run_chunked(nchunks, per_job, |_, chunks| {
                chunks
                    .map(|ci| {
                        let lo = ci * size;
                        let hi = (lo + size).min(slice.len());
                        f(ci, &slice[lo..hi])
                    })
                    .sum::<U>()
            });
            partials.into_iter().sum()
        }
    }
}

/// Indexed parallel iterators over `usize` ranges — the chunked map/reduce
/// surface the coarsening and metrics kernels are built on.
pub mod iter {
    use std::ops::Range;

    /// Conversion into a parallel iterator (mirrors `rayon::prelude`).
    pub trait IntoParallelIterator {
        /// The concrete parallel iterator type.
        type Iter;
        /// Convert.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl IntoParallelIterator for Range<usize> {
        type Iter = RangeParIter;
        fn into_par_iter(self) -> RangeParIter {
            RangeParIter {
                range: self,
                min_len: 1,
            }
        }
    }

    /// Parallel iterator over a `usize` range.
    #[derive(Debug)]
    pub struct RangeParIter {
        range: Range<usize>,
        min_len: usize,
    }

    impl RangeParIter {
        /// Minimum number of indices per chunk (controls fan-out; chunks
        /// below this size run inline).
        pub fn with_min_len(mut self, min_len: usize) -> Self {
            self.min_len = min_len.max(1);
            self
        }

        /// Apply `f` to every index, in parallel chunks.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(usize) + Sync,
        {
            let start = self.range.start;
            super::run_chunked(self.range.len(), self.min_len, |_, r| {
                for i in r {
                    f(start + i);
                }
            });
        }

        /// Map every index; chain with [`RangeMap::sum`] or
        /// [`RangeMap::reduce`].
        pub fn map<T, F>(self, f: F) -> RangeMap<F>
        where
            T: Send,
            F: Fn(usize) -> T + Sync,
        {
            RangeMap { iter: self, f }
        }

        /// Rayon-style fold: each chunk folds its indices into an
        /// accumulator created by `identity`; chain with
        /// [`RangeFold::reduce`] to combine the per-chunk accumulators.
        pub fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> RangeFold<ID, F>
        where
            T: Send,
            ID: Fn() -> T + Sync,
            F: Fn(T, usize) -> T + Sync,
        {
            RangeFold {
                iter: self,
                identity,
                fold_op,
            }
        }
    }

    /// Mapped parallel range iterator.
    pub struct RangeMap<F> {
        iter: RangeParIter,
        f: F,
    }

    impl<F> std::fmt::Debug for RangeMap<F> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("RangeMap").finish_non_exhaustive()
        }
    }

    impl<F> RangeMap<F> {
        /// Sum all mapped values. Per-chunk partial sums are combined in
        /// chunk order (exact for the integer sums used in this workspace).
        pub fn sum<S>(self) -> S
        where
            F: Fn(usize) -> S + Sync,
            S: Send + std::iter::Sum<S>,
        {
            let start = self.iter.range.start;
            let f = &self.f;
            let partials = super::run_chunked(self.iter.range.len(), self.iter.min_len, |_, r| {
                r.map(|i| f(start + i)).sum::<S>()
            });
            partials.into_iter().sum()
        }

        /// Reduce all mapped values with `op`, starting each chunk from
        /// `identity()`; per-chunk results are combined in chunk order.
        pub fn reduce<T, ID, OP>(self, identity: ID, op: OP) -> T
        where
            F: Fn(usize) -> T + Sync,
            T: Send,
            ID: Fn() -> T + Sync,
            OP: Fn(T, T) -> T + Sync,
        {
            let start = self.iter.range.start;
            let f = &self.f;
            let partials = super::run_chunked(self.iter.range.len(), self.iter.min_len, |_, r| {
                r.fold(identity(), |acc, i| op(acc, f(start + i)))
            });
            partials.into_iter().fold(identity(), op)
        }
    }

    /// Folded parallel range iterator (one accumulator per chunk).
    pub struct RangeFold<ID, F> {
        iter: RangeParIter,
        identity: ID,
        fold_op: F,
    }

    impl<ID, F> std::fmt::Debug for RangeFold<ID, F> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("RangeFold").finish_non_exhaustive()
        }
    }

    impl<ID, F> RangeFold<ID, F> {
        /// Combine the per-chunk accumulators with `op`, in chunk order.
        pub fn reduce<T, ID2, OP>(self, identity: ID2, op: OP) -> T
        where
            T: Send,
            ID: Fn() -> T + Sync,
            F: Fn(T, usize) -> T + Sync,
            ID2: Fn() -> T + Sync,
            OP: Fn(T, T) -> T + Sync,
        {
            let start = self.iter.range.start;
            let make = &self.identity;
            let fold_op = &self.fold_op;
            let partials = super::run_chunked(self.iter.range.len(), self.iter.min_len, |_, r| {
                r.fold(make(), |acc, i| fold_op(acc, start + i))
            });
            partials.into_iter().fold(identity(), op)
        }
    }
}

/// The customary glob import.
pub mod prelude {
    pub use crate::iter::IntoParallelIterator;
    pub use crate::slice::{ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!((a, b), (4, "ok"));
    }

    #[test]
    fn join_nests() {
        fn sum(lo: u64, hi: u64) -> u64 {
            if hi - lo < 1000 {
                (lo..hi).sum()
            } else {
                let mid = lo + (hi - lo) / 2;
                let (a, b) = join(|| sum(lo, mid), || sum(mid, hi));
                a + b
            }
        }
        assert_eq!(sum(0, 100_000), 100_000u64 * 99_999 / 2);
    }

    #[test]
    fn par_iter_mut_visits_every_index() {
        let mut v = vec![0usize; 10_000];
        v.par_iter_mut()
            .enumerate()
            .with_min_len(64)
            .for_each(|(i, x)| *x = i * 2);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 2));
    }

    #[test]
    fn pool_install_caps_threads() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        assert_eq!(pool.current_num_threads(), 1);
        let r = pool.install(|| {
            let (a, b) = join(|| 1, || 2);
            a + b
        });
        assert_eq!(r, 3);
    }

    #[test]
    fn join_propagates_thread_cap() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let (a, b) = pool.install(|| join(current_num_threads, current_num_threads));
        assert_eq!(b, 3);
        // The forked side sees the same advisory cap (may be clamped to
        // hardware parallelism, like the inline side).
        assert_eq!(a, b);
    }

    #[test]
    fn range_map_sum_matches_serial() {
        let n = 100_001usize;
        let par: u64 = (0..n)
            .into_par_iter()
            .with_min_len(1000)
            .map(|i| (i as u64).wrapping_mul(2654435761) % 97)
            .sum();
        let ser: u64 = (0..n)
            .map(|i| (i as u64).wrapping_mul(2654435761) % 97)
            .sum();
        assert_eq!(par, ser);
    }

    #[test]
    fn range_sum_is_thread_count_independent() {
        let total = |threads: usize| -> i64 {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            pool.install(|| {
                (0..50_000)
                    .into_par_iter()
                    .with_min_len(64)
                    .map(|i| i as i64 % 13 - 6)
                    .sum()
            })
        };
        let t1 = total(1);
        assert_eq!(t1, total(2));
        assert_eq!(t1, total(7));
    }

    #[test]
    fn range_fold_reduce_accumulates_vectors() {
        // Histogram via fold/reduce — the part_weights access pattern.
        let hist: Vec<u64> = (0..9999usize)
            .into_par_iter()
            .with_min_len(100)
            .fold(
                || vec![0u64; 7],
                |mut acc, i| {
                    acc[i % 7] += 1;
                    acc
                },
            )
            .reduce(
                || vec![0u64; 7],
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(b) {
                        *x += y;
                    }
                    a
                },
            );
        assert_eq!(hist.iter().sum::<u64>(), 9999);
        assert_eq!(hist[0], 1429); // ceil(9999/7)
    }

    #[test]
    fn range_reduce_max() {
        let m = (0..12345usize)
            .into_par_iter()
            .with_min_len(10)
            .map(|i| (i * 7919) % 10007)
            .reduce(|| 0usize, usize::max);
        let ser = (0..12345usize).map(|i| (i * 7919) % 10007).max().unwrap();
        assert_eq!(m, ser);
    }

    #[test]
    fn par_chunks_covers_every_element_once() {
        let data: Vec<u32> = (0..10_000).collect();
        let sum: u64 = data
            .par_chunks(333)
            .map(|_, ch| ch.iter().map(|&x| x as u64).sum::<u64>())
            .sum();
        assert_eq!(sum, 10_000u64 * 9_999 / 2);
        // Chunk indices line up with offsets.
        data.par_chunks(333).for_each(|ci, ch| {
            assert_eq!(ch[0] as usize, ci * 333);
        });
    }
}
