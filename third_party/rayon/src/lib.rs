//! Vendored minimal stand-in for the `rayon` crate.
//!
//! The build environment is fully offline, so this shim supplies the small
//! rayon surface the workspace uses, on top of `std::thread::scope`:
//!
//! * [`join`] — runs both closures, the first on a scoped thread, so the
//!   recursive bisection / nested dissection forks still execute in
//!   parallel;
//! * `par_iter_mut().enumerate().with_min_len(_).for_each(_)` over slices —
//!   chunked across `available_parallelism` scoped threads;
//! * [`ThreadPoolBuilder`] / [`ThreadPool::install`] — an *advisory* pool:
//!   `install` runs the closure inline and the thread-count knob only caps
//!   the chunk fan-out of subsequent parallel iterators on this thread.
//!
//! Semantics match rayon closely enough for this workspace (same closure
//! bounds, deterministic results); scheduling quality does not — there is
//! no work stealing, so speedups are coarser-grained than real rayon.

use std::cell::Cell;

thread_local! {
    /// Advisory thread cap installed by [`ThreadPool::install`] (0 = none).
    static THREAD_CAP: Cell<usize> = const { Cell::new(0) };
}

fn effective_threads() -> usize {
    let cap = THREAD_CAP.with(|c| c.get());
    let hw = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    if cap == 0 {
        hw
    } else {
        cap.min(hw.max(cap))
    }
}

/// Run `oper_a` and `oper_b`, potentially in parallel, returning both
/// results. Panics are propagated.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if effective_threads() <= 1 {
        return (oper_a(), oper_b());
    }
    std::thread::scope(|s| {
        let handle = s.spawn(oper_a);
        let rb = oper_b();
        let ra = match handle.join() {
            Ok(ra) => ra,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        (ra, rb)
    })
}

/// Builder for an (advisory) thread pool.
#[derive(Clone, Copy, Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type kept for API compatibility; building never fails here.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// New builder with default (hardware) parallelism.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cap the pool at `n` threads (0 = hardware default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// Advisory thread pool: holds a thread cap applied while `install` runs.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `op` with this pool's thread cap installed on the current
    /// thread.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        let prev = THREAD_CAP.with(|c| c.replace(self.num_threads));
        let r = op();
        THREAD_CAP.with(|c| c.set(prev));
        r
    }

    /// The configured thread count (hardware default if unset).
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads == 0 {
            std::thread::available_parallelism()
                .map(|c| c.get())
                .unwrap_or(1)
        } else {
            self.num_threads
        }
    }
}

/// Parallel iterator support for mutable slices.
pub mod slice {
    /// `par_iter_mut` entry point (mirrors `rayon::prelude`).
    pub trait ParallelSliceMut<T: Send> {
        /// A parallel iterator over mutable elements.
        fn par_iter_mut(&mut self) -> ParIterMut<'_, T>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
            ParIterMut { slice: self }
        }
    }

    impl<T: Send> ParallelSliceMut<T> for Vec<T> {
        fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
            ParIterMut { slice: self }
        }
    }

    /// Parallel mutable slice iterator.
    pub struct ParIterMut<'a, T> {
        slice: &'a mut [T],
    }

    impl<'a, T: Send> ParIterMut<'a, T> {
        /// Pair each element with its index.
        pub fn enumerate(self) -> Enumerate<'a, T> {
            Enumerate {
                slice: self.slice,
                min_len: 1,
            }
        }

        /// Apply `f` to every element, in parallel chunks.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(&mut T) + Sync,
        {
            self.enumerate().for_each(|(_, t)| f(t));
        }
    }

    /// Enumerated parallel mutable slice iterator.
    pub struct Enumerate<'a, T> {
        slice: &'a mut [T],
        min_len: usize,
    }

    impl<T: Send> Enumerate<'_, T> {
        /// Minimum chunk length per thread.
        pub fn with_min_len(mut self, min_len: usize) -> Self {
            self.min_len = min_len.max(1);
            self
        }

        /// Apply `f` to every `(index, element)` pair, in parallel chunks.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn((usize, &mut T)) + Sync,
        {
            let n = self.slice.len();
            if n == 0 {
                return;
            }
            let threads = super::effective_threads();
            let chunk = n.div_ceil(threads).max(self.min_len.max(1));
            if chunk >= n || threads <= 1 {
                for (i, t) in self.slice.iter_mut().enumerate() {
                    f((i, t));
                }
                return;
            }
            let fref = &f;
            std::thread::scope(|s| {
                for (ci, ch) in self.slice.chunks_mut(chunk).enumerate() {
                    let base = ci * chunk;
                    s.spawn(move || {
                        for (i, t) in ch.iter_mut().enumerate() {
                            fref((base + i, t));
                        }
                    });
                }
            });
        }
    }
}

/// The customary glob import.
pub mod prelude {
    pub use crate::slice::ParallelSliceMut;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!((a, b), (4, "ok"));
    }

    #[test]
    fn join_nests() {
        fn sum(lo: u64, hi: u64) -> u64 {
            if hi - lo < 1000 {
                (lo..hi).sum()
            } else {
                let mid = lo + (hi - lo) / 2;
                let (a, b) = join(|| sum(lo, mid), || sum(mid, hi));
                a + b
            }
        }
        assert_eq!(sum(0, 100_000), 100_000u64 * 99_999 / 2);
    }

    #[test]
    fn par_iter_mut_visits_every_index() {
        let mut v = vec![0usize; 10_000];
        v.par_iter_mut()
            .enumerate()
            .with_min_len(64)
            .for_each(|(i, x)| *x = i * 2);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 2));
    }

    #[test]
    fn pool_install_caps_threads() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        assert_eq!(pool.current_num_threads(), 1);
        let r = pool.install(|| {
            let (a, b) = join(|| 1, || 2);
            a + b
        });
        assert_eq!(r, 3);
    }
}
