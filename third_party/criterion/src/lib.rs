//! Vendored minimal stand-in for the `criterion` crate.
//!
//! The build environment is fully offline, so this shim provides the
//! criterion entry points the workspace's benches use — `criterion_group!`
//! / `criterion_main!`, [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`], `sample_size`, and
//! [`Bencher::iter`] — backed by a plain wall-clock harness: a warm-up
//! round, then `sample_size` timed samples, reporting min / mean / max per
//! iteration. There is no statistical analysis, HTML report, or saved
//! baseline; output is one line per benchmark on stdout.
//!
//! Honors `--bench` (ignored filter-style positionals are matched as
//! substrings against benchmark ids), mirroring `cargo bench -- <filter>`.

use std::time::{Duration, Instant};

/// Top-level harness handle.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` passes `--bench`; anything else is a name filter.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Self {
            sample_size: 30,
            filter,
        }
    }
}

impl Criterion {
    /// Default sample count for benches in this run.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.to_string();
        run_bench(&id, self.sample_size, self.filter.as_deref(), f);
        self
    }
}

/// A group of related benchmarks sharing an id prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark within this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_bench(&full, samples, self.criterion.filter.as_deref(), f);
        self
    }

    /// End the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Timing handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u32,
}

impl Bencher {
    /// Time `routine`, recording one sample per call batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let t = Instant::now();
        for _ in 0..self.iters_per_sample {
            std::hint::black_box(routine());
        }
        self.samples.push(t.elapsed() / self.iters_per_sample);
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, samples: usize, filter: Option<&str>, mut f: F) {
    if let Some(pat) = filter {
        if !id.contains(pat) {
            return;
        }
    }
    // Warm-up + calibration: aim for ~20ms per sample, at least 1 iter.
    let t = Instant::now();
    let mut b = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
    };
    f(&mut b);
    let once = t.elapsed().max(Duration::from_nanos(1));
    let iters = (Duration::from_millis(20).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;
    let mut b = Bencher {
        samples: Vec::with_capacity(samples),
        iters_per_sample: iters,
    };
    for _ in 0..samples {
        f(&mut b);
    }
    let n = b.samples.len().max(1) as u32;
    let mean = b.samples.iter().sum::<Duration>() / n;
    let min = b.samples.iter().min().copied().unwrap_or_default();
    let max = b.samples.iter().max().copied().unwrap_or_default();
    println!(
        "{id:<40} time: [{} {} {}] ({} samples x {} iters)",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max),
        b.samples.len(),
        iters,
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.4} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.4} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.4} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Group benchmark functions under one name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u32;
        // No filter in `cargo test` argv positionals? Tests may receive a
        // filter; bypass by checking the counter only when it ran.
        c.bench_function("shim_smoke", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert!(fmt_duration(Duration::from_micros(12)).ends_with("us"));
        assert!(fmt_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
