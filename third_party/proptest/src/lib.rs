//! Vendored minimal stand-in for the `proptest` crate.
//!
//! The build environment is fully offline, so this shim implements the
//! slice of proptest the workspace's property tests use: the [`proptest!`]
//! macro, [`Strategy`] with `prop_map` / `prop_flat_map`, range and tuple
//! strategies, [`Just`], `prop::collection::{vec, btree_set}`, and the
//! `prop_assert*` macros.
//!
//! Differences from upstream: case generation is **deterministic** (seeded
//! from the test name and case index, so failures reproduce exactly), and
//! there is **no shrinking** — a failing case reports its index and panics
//! with the original assertion message.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Runner configuration; only the case count is honored.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A generator of values for one test parameter.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Derive a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F> std::fmt::Debug for Map<S, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Map").finish_non_exhaustive()
    }
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F> std::fmt::Debug for FlatMap<S, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlatMap").finish_non_exhaustive()
    }
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn new_value(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
    (inclusive $($t:ty),*) => {$(
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);
impl_range_strategy!(inclusive u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!((A)(A, B)(A, B, C)(A, B, C, D)(A, B, C, D, E));

/// Collection strategies (`prop::collection::*` under the prelude).
pub mod collection {
    use super::*;

    /// Lengths accepted by the collection strategies: an exact `usize`, a
    /// `Range<usize>`, or a `RangeInclusive<usize>`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            Self {
                lo: r.start,
                hi_inclusive: r.end.saturating_sub(1).max(r.start),
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi_inclusive: (*r.end()).max(*r.start()),
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut StdRng) -> usize {
            rng.random_range(self.lo..=self.hi_inclusive)
        }
    }

    /// `Vec` of values from `element`, with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// `BTreeSet` of values from `element` with up to `size` elements
    /// (duplicates collapse, as in upstream's best-effort semantics).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    #[derive(Debug)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn new_value(&self, rng: &mut StdRng) -> Self::Value {
            let target = self.size.sample(rng);
            let mut set = std::collections::BTreeSet::new();
            // A few extra attempts to approach the target cardinality.
            for _ in 0..target.saturating_mul(2) {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.new_value(rng));
            }
            set
        }
    }
}

/// Support used by the [`proptest!`] expansion; not public API.
pub mod test_runner {
    use super::*;

    /// Deterministic per-case RNG: seeded from the test's full path and the
    /// case index, so every run regenerates identical inputs.
    pub fn case_rng(test_path: &str, case: u32) -> StdRng {
        let mut h: u64 = 0xcbf29ce484222325; // FNV-1a
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
    }
}

/// The customary glob import.
pub mod prelude {
    pub use crate::collection::SizeRange;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};

    /// Mirror of upstream's `prelude::prop` shortcut module.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Run property tests: each `#[test] fn name(pat in strategy, ...) { .. }`
/// item becomes a test looping over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$attr:meta])+ fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$attr])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for __case in 0..config.cases {
                    let mut __rng = $crate::test_runner::case_rng(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $pat = $crate::Strategy::new_value(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

/// Assert within a property test (no shrinking; panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality within a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality within a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair(max: usize) -> impl Strategy<Value = (usize, Vec<u32>)> {
        (1usize..max).prop_flat_map(|n| (Just(n), prop::collection::vec(0u32..n as u32, 0..n)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_give_in_bounds_values(n in 3usize..40, x in -2.5f64..2.5) {
            prop_assert!((3..40).contains(&n));
            prop_assert!((-2.5..2.5).contains(&x));
        }

        #[test]
        fn flat_mapped_vecs_respect_bounds((n, v) in pair(30)) {
            prop_assert!(n < 30);
            prop_assert!(v.len() < n.max(1));
            for &e in &v {
                prop_assert!((e as usize) < n);
            }
        }

        #[test]
        fn btree_sets_are_bounded(s in prop::collection::btree_set(0u32..20, 0..8usize)) {
            prop_assert!(s.len() < 8);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_runner::case_rng("x::y", 3);
        let mut b = crate::test_runner::case_rng("x::y", 3);
        assert_eq!(
            (2usize..90).new_value(&mut a),
            (2usize..90).new_value(&mut b)
        );
    }
}
