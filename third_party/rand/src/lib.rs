//! Vendored minimal stand-in for the `rand` crate.
//!
//! The build environment for this repository is fully offline, so external
//! registry crates cannot be fetched. This shim implements exactly the API
//! surface the workspace uses — [`Rng`], [`RngExt::random_range`] over
//! integer and float ranges, [`SeedableRng::seed_from_u64`], and
//! [`rngs::StdRng`] — with a small, fast, deterministic generator
//! (SplitMix64-seeded xoshiro256++). It is **not** the upstream crate: the
//! byte streams differ, and nothing here is suitable for cryptography.

/// A source of random 64-bit words.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`Rng::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Uniform sample from `range` (`a..b`, `a..=b`, or a float range).
    ///
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Ranges that can produce a uniform sample.
///
/// Only two generic impls exist (for `Range<T>` and `RangeInclusive<T>`
/// where `T: SampleUniform`), mirroring upstream `rand`: this keeps type
/// inference flowing from the use site into the range literal, so e.g.
/// `slice[rng.random_range(0..4)]` infers `usize`.
pub trait SampleRange<T> {
    /// Draw one value from `rng` uniformly within the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Sized {
    /// Uniform sample in `[start, end)`. Panics if empty.
    fn sample_exclusive<R: Rng + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self;
    /// Uniform sample in `[start, end]`. Panics if empty.
    fn sample_inclusive<R: Rng + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        T::sample_inclusive(start, end, rng)
    }
}

/// Uniform `u64` in `[0, span)` (span > 0). Uses Lemire's multiply-shift
/// with a rejection step, so small spans carry no modulo bias.
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    // Rejection zone keeps the multiply-shift exact.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) <= zone {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: Rng + ?Sized>(start: $t, end: $t, rng: &mut R) -> $t {
                assert!(start < end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u64;
                let off = uniform_below(rng, span);
                (start as i128 + off as i128) as $t
            }
            fn sample_inclusive<R: Rng + ?Sized>(start: $t, end: $t, rng: &mut R) -> $t {
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = uniform_below(rng, span + 1);
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: Rng + ?Sized>(start: $t, end: $t, rng: &mut R) -> $t {
                assert!(start < end, "cannot sample from empty range");
                // 53 uniform mantissa bits in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                start + (end - start) * unit as $t
            }
            fn sample_inclusive<R: Rng + ?Sized>(start: $t, end: $t, rng: &mut R) -> $t {
                assert!(start <= end, "cannot sample from empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                start + (end - start) * unit as $t
            }
        }
    )*};
}

impl_float_uniform!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace-standard generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..5000 {
            let x: usize = rng.random_range(0..7);
            assert!(x < 7);
            let y: i64 = rng.random_range(-5..5);
            assert!((-5..5).contains(&y));
            let z: u32 = rng.random_range(3..=3);
            assert_eq!(z, 3);
            let f: f64 = rng.random_range(-0.25..0.25);
            assert!((-0.25..0.25).contains(&f));
        }
    }

    #[test]
    fn covers_the_whole_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.random_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn works_through_mut_references() {
        fn draw<R: Rng>(mut rng: R) -> u64 {
            rng.next_u64()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let a = draw(&mut rng);
        let b = draw(&mut rng);
        assert_ne!(a, b);
    }
}
