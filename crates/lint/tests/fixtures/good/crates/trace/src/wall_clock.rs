//! Fixture: D3-clean — wall clock inside the telemetry crate.
use std::time::Instant;

pub fn stamp() -> Instant {
    Instant::now()
}
