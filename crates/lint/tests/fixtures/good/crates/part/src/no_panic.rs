//! Fixture: R1-clean — panics only in tests or behind a justified allow.
pub fn checked_head(xs: &[u32]) -> Option<u32> {
    xs.first().copied()
}

pub fn head(xs: &[u32]) -> u32 {
    // LINT: allow(panic, fixture invariant — callers guarantee non-empty input)
    *xs.first().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(super::checked_head(&[7]).unwrap(), 7);
    }
}
