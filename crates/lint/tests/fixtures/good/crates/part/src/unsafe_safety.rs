//! Fixture: P1-clean — unsafe with a SAFETY proof.
pub fn first(xs: &[u32]) -> u32 {
    assert!(!xs.is_empty());
    // SAFETY: the assert above guarantees index 0 is in bounds.
    unsafe { *xs.get_unchecked(0) }
}
