//! Fixture: P2-clean — Relaxed with a justification.
use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(c: &AtomicU64) -> u64 {
    // RELAXED: statistic only — the counter feeds no decisions.
    c.fetch_add(1, Ordering::Relaxed)
}
