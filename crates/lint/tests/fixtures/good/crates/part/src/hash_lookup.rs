//! Fixture: D1-clean — hash containers used for lookup only.
use std::collections::HashMap;

pub fn index(xs: &[(u32, u32)]) -> HashMap<u32, u32> {
    let mut m = HashMap::new();
    for &(k, v) in xs {
        m.insert(k, v);
    }
    m
}

pub fn get(m: &HashMap<u32, u32>, k: u32) -> Option<u32> {
    m.get(&k).copied()
}
