//! Fixture: D2-clean — reductions routed through chunked_reduce.
use rayon::prelude::*;

pub fn scale(xs: &mut [f64]) {
    xs.par_iter_mut().for_each(|x| *x *= 2.0);
}

pub fn total(xs: &[f64]) -> f64 {
    mlgp_linalg::vecops::chunked_reduce(xs.len(), 0, |lo, hi| {
        let mut acc = 0.0;
        for x in &xs[lo..hi] {
            acc += *x;
        }
        acc
    })
}
