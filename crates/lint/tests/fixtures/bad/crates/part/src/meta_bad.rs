//! Fixture: META — suppression comments without a reason.
pub fn head(xs: &[u32]) -> u32 {
    // LINT: allow(panic)
    *xs.first().unwrap()
}
