//! Fixture: D3 — wall clock read inside a kernel crate.
use std::time::Instant;

pub fn timed<F: FnOnce()>(f: F) -> f64 {
    let t = Instant::now();
    f();
    t.elapsed().as_secs_f64()
}
