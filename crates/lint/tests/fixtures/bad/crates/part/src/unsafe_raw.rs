//! Fixture: P1 — unsafe without a SAFETY proof.
pub fn first(xs: &[u32]) -> u32 {
    unsafe { *xs.get_unchecked(0) }
}
