//! Fixture: D2 — raw float accumulation beside a parallel kernel.
use rayon::prelude::*;

pub fn scale(xs: &mut [f64]) {
    xs.par_iter_mut().for_each(|x| *x *= 2.0);
}

pub fn total(xs: &[f64]) -> f64 {
    let mut acc = 0.0f64;
    for x in xs {
        acc += *x;
    }
    acc
}
