//! Fixture: R1 — panics in library code.
pub fn head(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

pub fn pick(xs: &[u32]) -> u32 {
    *xs.first().expect("non-empty")
}

pub fn must(flag: bool) {
    if !flag {
        panic!("fixture panic");
    }
}
