//! Fixture: D1 — iterating a HashMap in a kernel crate.
use std::collections::HashMap;

pub fn tally(xs: &[(u32, u32)]) -> u64 {
    let mut m: HashMap<u32, u32> = HashMap::new();
    for &(k, v) in xs {
        m.insert(k, v);
    }
    let mut total = 0u64;
    for (_k, v) in m.iter() {
        total += *v as u64;
    }
    total
}
