//! End-to-end tests: run `mlgp-lint` against the fixture corpora and the
//! live workspace tree.
//!
//! The fixtures under `tests/fixtures/{bad,good}` are miniature workspace
//! trees (`crates/<name>/src/*.rs`) so path classification — kernel
//! crates, wall-clock crates, test files — applies exactly as it does on
//! the real tree.

use mlgp_lint::{scan_workspace, Rule};
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixtures(which: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(which)
}

fn run_lint(root: &Path) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_mlgp-lint"))
        .arg("--root")
        .arg(root)
        .output()
        .expect("spawn mlgp-lint");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn bad_fixtures_fail_with_file_line_diagnostics() {
    let (ok, stdout) = run_lint(&fixtures("bad"));
    assert!(!ok, "bad fixtures must fail the lint, got:\n{stdout}");
    let expect = [
        ("crates/part/src/hash_iter.rs", "[D1]"),
        ("crates/part/src/float_accum.rs", "[D2]"),
        ("crates/part/src/wall_clock.rs", "[D3]"),
        ("crates/part/src/unsafe_raw.rs", "[P1]"),
        ("crates/part/src/relaxed.rs", "[P2]"),
        ("crates/part/src/panics.rs", "[R1]"),
        ("crates/part/src/meta_bad.rs", "[META]"),
    ];
    for (file, rule) in expect {
        let hit = stdout.lines().any(|l| l.contains(file) && l.contains(rule));
        assert!(hit, "expected a {rule} diagnostic for {file} in:\n{stdout}");
    }
    // Every diagnostic is file:line addressed.
    for l in stdout.lines() {
        assert!(l.contains(".rs:"), "diagnostic without file:line: {l}");
    }
}

#[test]
fn good_fixtures_pass() {
    let (ok, stdout) = run_lint(&fixtures("good"));
    assert!(ok, "good fixtures should lint clean, got:\n{stdout}");
    assert!(
        stdout.contains("clean"),
        "expected the clean banner:\n{stdout}"
    );
}

#[test]
fn bad_fixture_lines_are_precise() {
    let diags = scan_workspace(&fixtures("bad")).expect("scan bad fixtures");
    let has = |file: &str, rule: Rule, line: usize| {
        diags
            .iter()
            .any(|d| d.file.ends_with(file) && d.rule == rule && d.line == line)
    };
    // The D1 fixture iterates its map on line 10.
    assert!(has("hash_iter.rs", Rule::D1HashIter, 10), "{diags:?}");
    // The D2 fixture's raw `acc += *x` sits on line 11.
    assert!(has("float_accum.rs", Rule::D2FloatAccum, 11), "{diags:?}");
    // The D3 fixture reads Instant::now() on line 5.
    assert!(has("wall_clock.rs", Rule::D3WallClock, 5), "{diags:?}");
    // The P1 fixture's unsafe block is line 3.
    assert!(has("unsafe_raw.rs", Rule::P1UnsafeSafety, 3), "{diags:?}");
    // The P2 fixture's Relaxed fetch_add is line 5.
    assert!(has("relaxed.rs", Rule::P2RelaxedJustify, 5), "{diags:?}");
    // The R1 fixture panics on lines 3, 7 and 12.
    assert!(has("panics.rs", Rule::R1PanicFree, 3), "{diags:?}");
    assert!(has("panics.rs", Rule::R1PanicFree, 7), "{diags:?}");
    assert!(has("panics.rs", Rule::R1PanicFree, 12), "{diags:?}");
    // The META fixture's reasonless allow is line 3.
    assert!(has("meta_bad.rs", Rule::Meta, 3), "{diags:?}");
}

#[test]
fn live_tree_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let diags = scan_workspace(&root).expect("scan live tree");
    assert!(
        diags.is_empty(),
        "live tree has lint violations:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
