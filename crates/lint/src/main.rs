//! `mlgp-lint` CLI: scan `crates/*/src` and exit nonzero on violations.
//!
//! ```text
//! mlgp-lint [--root DIR] [--list-rules]
//! ```
//!
//! With no `--root`, the workspace root is found by walking up from the
//! current directory to the first ancestor holding a `Cargo.toml` with a
//! `[workspace]` table (so `cargo run -p mlgp-lint` works from anywhere
//! in the tree). Diagnostics go to stdout as `file:line: [RULE] message`,
//! one per line, in deterministic (sorted-path) order.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("mlgp-lint: --root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--list-rules" => {
                for rule in mlgp_lint::Rule::all() {
                    println!("{:<4} {}", rule.code(), rule.describe());
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("usage: mlgp-lint [--root DIR] [--list-rules]");
                println!("scans crates/*/src for determinism & safety contract violations");
                println!("(rules and suppression syntax: DESIGN.md §11)");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("mlgp-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.or_else(find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!("mlgp-lint: no workspace root found (pass --root DIR)");
            return ExitCode::from(2);
        }
    };
    match mlgp_lint::scan_workspace(&root) {
        Ok(diags) if diags.is_empty() => {
            println!("mlgp-lint: clean ({} rules)", mlgp_lint::Rule::all().len());
            ExitCode::SUCCESS
        }
        Ok(diags) => {
            for d in &diags {
                println!("{d}");
            }
            eprintln!("mlgp-lint: {} violation(s)", diags.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("mlgp-lint: {e}");
            ExitCode::from(2)
        }
    }
}

/// Walk up from the current directory to the first `Cargo.toml` declaring
/// a `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
