//! `mlgp-lint` — workspace static analysis for the determinism & safety
//! contract (DESIGN.md §10–§11).
//!
//! PRs 2–4 parallelized every phase of the multilevel pipeline behind a
//! hard contract: **bit-identical results at any thread count**, enforced
//! by round-based CAS handshakes, seeded rank keys, and fixed-shape
//! chunked float reductions. That contract used to live only in runtime
//! test suites and reviewers' heads; this crate encodes it as a static
//! gate with `file:line` diagnostics. The rules:
//!
//! | rule | checks |
//! |------|--------|
//! | `D1` | no `HashMap`/`HashSet` **iteration** in kernel crates (`part`, `graph`, `linalg`, `order`, `spectral`) — hash iteration order is arbitrary and poisons determinism |
//! | `D2` | no raw floating-point `+=` / `.sum()` accumulation in modules that contain parallel kernels — reductions must route through `vecops::chunked_reduce` (the `vecops.rs` implementation itself is allowlisted) |
//! | `D3` | no wall clock or ambient entropy (`SystemTime`, `Instant`, `thread_rng`, …) outside `crates/trace`, `crates/bench`, and `bin/` sources |
//! | `P1` | every `unsafe` must be preceded by a `// SAFETY:` proof |
//! | `P2` | every `Ordering::Relaxed` must carry a `// RELAXED:` justification |
//! | `R1` | no `.unwrap()` / `.expect(` / `panic!` in library (non-test, non-bin) code |
//!
//! Suppression syntax (the reason is **mandatory**; a reasonless
//! suppression is itself a diagnostic):
//!
//! ```text
//! // SAFETY: <proof that the invariant holds>           (covers P1)
//! // RELAXED: <why relaxed ordering is sufficient>      (covers P2)
//! // LINT: allow(hashmap_iter, <reason>)                (covers D1)
//! // LINT: allow(float_accum, <reason>)                 (covers D2)
//! // LINT: allow(wallclock, <reason>)                   (covers D3)
//! // LINT: allow(panic, <reason>)                       (covers R1)
//! ```
//!
//! An annotation covers every violating token on its own line (trailing
//! comment) or, written as a standalone comment line, every token on the
//! lines of the *contiguous* code block directly beneath it (a blank line
//! ends the covered block). The scanner is comment- and
//! string-aware: tokens inside string literals, char literals, and
//! comments never fire, and `#[cfg(test)]` modules / `#[test]` functions
//! are exempt from `R1` (tests may unwrap).

use std::fmt;
use std::path::{Path, PathBuf};

mod scanner;
pub use scanner::{strip_source, Line};

/// Crates whose kernels carry the determinism contract (D1/D2 scope).
pub const KERNEL_CRATES: [&str; 5] = ["part", "graph", "linalg", "order", "spectral"];

/// Crates allowed to read the wall clock / entropy (D3 scope): the
/// observability layer owns time, and the bench harness measures it.
pub const WALLCLOCK_CRATES: [&str; 2] = ["trace", "bench"];

/// Files (by trailing path) exempt from D2: the deterministic reduction
/// primitives themselves.
pub const FLOAT_ACCUM_ALLOWLIST: [&str; 1] = ["linalg/src/vecops.rs"];

/// Rule identifiers, as printed in diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Hash-container iteration in a kernel crate.
    D1HashIter,
    /// Raw float accumulation in a parallel-kernel module.
    D2FloatAccum,
    /// Wall clock / ambient entropy outside trace & bench.
    D3WallClock,
    /// `unsafe` without a `// SAFETY:` proof.
    P1UnsafeSafety,
    /// `Ordering::Relaxed` without a `// RELAXED:` justification.
    P2RelaxedJustify,
    /// `unwrap`/`expect`/`panic!` in library code.
    R1PanicFree,
    /// Malformed suppression (missing mandatory reason, unknown rule).
    Meta,
}

impl Rule {
    /// Short code used in diagnostics and fixture assertions.
    pub fn code(self) -> &'static str {
        match self {
            Rule::D1HashIter => "D1",
            Rule::D2FloatAccum => "D2",
            Rule::D3WallClock => "D3",
            Rule::P1UnsafeSafety => "P1",
            Rule::P2RelaxedJustify => "P2",
            Rule::R1PanicFree => "R1",
            Rule::Meta => "META",
        }
    }

    /// The `allow(<name>, …)` key that suppresses this rule, if the
    /// rule is suppressed through the generic form.
    pub fn allow_key(self) -> Option<&'static str> {
        match self {
            Rule::D1HashIter => Some("hashmap_iter"),
            Rule::D2FloatAccum => Some("float_accum"),
            Rule::D3WallClock => Some("wallclock"),
            Rule::R1PanicFree => Some("panic"),
            _ => None,
        }
    }

    /// All checkable rules, in report order.
    pub fn all() -> [Rule; 6] {
        [
            Rule::D1HashIter,
            Rule::D2FloatAccum,
            Rule::D3WallClock,
            Rule::P1UnsafeSafety,
            Rule::P2RelaxedJustify,
            Rule::R1PanicFree,
        ]
    }

    /// One-line description for `--list-rules`.
    pub fn describe(self) -> &'static str {
        match self {
            Rule::D1HashIter => {
                "no HashMap/HashSet iteration in kernel crates (hash order is nondeterministic)"
            }
            Rule::D2FloatAccum => {
                "no raw float +=/.sum() in parallel-kernel modules; use vecops::chunked_reduce"
            }
            Rule::D3WallClock => {
                "no SystemTime/Instant/thread_rng outside crates/trace, crates/bench, and bin/"
            }
            Rule::P1UnsafeSafety => "every `unsafe` needs a preceding `// SAFETY:` proof",
            Rule::P2RelaxedJustify => {
                "every `Ordering::Relaxed` needs a `// RELAXED:` justification"
            }
            Rule::R1PanicFree => {
                "no .unwrap()/.expect(/panic! in library code; `// LINT: allow(panic, why)` to keep"
            }
            Rule::Meta => "suppression comments must carry a reason",
        }
    }
}

/// One finding: a rule violated at `file:line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path as reported (relative to the scan root when possible).
    pub file: PathBuf,
    /// 1-indexed line.
    pub line: usize,
    /// Violated rule.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule.code(),
            self.message
        )
    }
}

/// How a file participates in the rule set, derived from its path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileClass {
    /// Crate name (`part`, `graph`, …) when under `crates/<name>/src`.
    pub crate_name: String,
    /// `src/bin/…` or `main.rs`: binary entry points (D3/R1 exempt).
    pub is_bin: bool,
    /// File name contains `test`: a test-only module file (R1 exempt).
    pub is_test_file: bool,
    /// Member of [`KERNEL_CRATES`] (D1/D2 scope).
    pub is_kernel: bool,
    /// Member of [`WALLCLOCK_CRATES`] (D3 exempt).
    pub may_use_wallclock: bool,
    /// Listed in [`FLOAT_ACCUM_ALLOWLIST`] (D2 exempt).
    pub float_accum_allowed: bool,
}

impl FileClass {
    /// Classify a path of the form `…/crates/<name>/src/<rest>.rs`.
    pub fn from_path(path: &Path) -> FileClass {
        let unix: String = path
            .components()
            .map(|c| c.as_os_str().to_string_lossy().into_owned())
            .collect::<Vec<_>>()
            .join("/");
        let crate_name = unix
            .rsplit_once("/src/")
            .map(|(pre, _)| pre)
            .or_else(|| unix.rsplit_once("/src").map(|(pre, _)| pre))
            .and_then(|pre| pre.rsplit('/').next())
            .unwrap_or("")
            .to_string();
        let file_name = path
            .file_name()
            .map(|f| f.to_string_lossy().into_owned())
            .unwrap_or_default();
        let is_bin = unix.contains("/bin/") || file_name == "main.rs" || file_name == "build.rs";
        let is_test_file = file_name.contains("test");
        let is_kernel = KERNEL_CRATES.contains(&crate_name.as_str());
        let may_use_wallclock = WALLCLOCK_CRATES.contains(&crate_name.as_str());
        let float_accum_allowed = FLOAT_ACCUM_ALLOWLIST
            .iter()
            .any(|suffix| unix.ends_with(suffix));
        FileClass {
            crate_name,
            is_bin,
            is_test_file,
            is_kernel,
            may_use_wallclock,
            float_accum_allowed,
        }
    }
}

/// Suppressions parsed from one line's comment text.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
struct Annotations {
    safety: bool,
    relaxed: bool,
    /// `allow(<key>, reason)` keys present with a nonempty reason.
    allows: Vec<String>,
    /// Malformed suppressions: `(description)` reported as META.
    malformed: Vec<String>,
}

impl Annotations {
    fn parse(comment: &str) -> Annotations {
        let mut a = Annotations::default();
        if let Some(rest) = find_marker(comment, "SAFETY:") {
            if rest.trim().is_empty() {
                a.malformed.push("`SAFETY:` without a proof".to_string());
            } else {
                a.safety = true;
            }
        }
        if let Some(rest) = find_marker(comment, "RELAXED:") {
            if rest.trim().is_empty() {
                a.malformed
                    .push("`RELAXED:` without a justification".to_string());
            } else {
                a.relaxed = true;
            }
        }
        let mut scan = comment;
        while let Some(rest) = find_marker(scan, "LINT:") {
            let Some(open) = rest.find("allow(") else {
                a.malformed
                    .push("`LINT:` without an `allow(rule, reason)`".to_string());
                break;
            };
            let body = &rest[open + "allow(".len()..];
            let Some(close) = body.find(')') else {
                a.malformed.push("unclosed `LINT: allow(`".to_string());
                break;
            };
            let inner = &body[..close];
            match inner.split_once(',') {
                Some((key, reason)) if !reason.trim().is_empty() => {
                    let key = key.trim().to_string();
                    let known = Rule::all().iter().any(|r| r.allow_key() == Some(&key[..]));
                    if known {
                        a.allows.push(key);
                    } else {
                        a.malformed
                            .push(format!("unknown lint rule `{key}` in allow()"));
                    }
                }
                _ => a.malformed.push(format!(
                    "`LINT: allow({inner})` is missing its mandatory reason"
                )),
            }
            scan = &body[close..];
        }
        a
    }

    fn merge(&mut self, other: &Annotations) {
        self.safety |= other.safety;
        self.relaxed |= other.relaxed;
        self.allows.extend(other.allows.iter().cloned());
    }

    fn allows_key(&self, key: &str) -> bool {
        self.allows.iter().any(|k| k == key)
    }
}

/// Find `marker` in `text` and return the remainder after it, requiring
/// the char before the marker to be a non-ident boundary.
fn find_marker<'t>(text: &'t str, marker: &str) -> Option<&'t str> {
    let mut from = 0;
    while let Some(pos) = text[from..].find(marker) {
        let at = from + pos;
        let boundary = at == 0
            || !text[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if boundary {
            return Some(&text[at + marker.len()..]);
        }
        from = at + marker.len();
    }
    None
}

/// True when `token` occurs in `code` delimited by non-identifier chars.
fn has_word(code: &str, token: &str) -> bool {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find(token) {
        let at = from + pos;
        let end = at + token.len();
        let left_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let right_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if left_ok && right_ok {
            return true;
        }
        from = at + token.len().max(1);
    }
    false
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// True when `code` contains a floating-point literal (`2.5`, `1e-12`).
/// Tuple indexing (`t.0`), ranges (`0..n`), and integer literals do not
/// count; hex literals are skipped via the boundary check.
fn has_float_literal(code: &str) -> bool {
    let b = code.as_bytes();
    let n = b.len();
    for i in 0..n {
        if !b[i].is_ascii_digit() {
            continue;
        }
        // Must start a numeric run: previous char not ident or '.'.
        if i > 0 && (is_ident_byte(b[i - 1]) || b[i - 1] == b'.') {
            continue;
        }
        // Walk the digit run.
        let mut j = i;
        while j < n && (b[j].is_ascii_digit() || b[j] == b'_') {
            j += 1;
        }
        if j < n && b[j] == b'.' && j + 1 < n && b[j + 1].is_ascii_digit() {
            return true; // `12.5`
        }
        if j < n && (b[j] == b'e' || b[j] == b'E') {
            let mut k = j + 1;
            if k < n && (b[k] == b'-' || b[k] == b'+') {
                k += 1;
            }
            if k < n
                && b[k].is_ascii_digit()
                && (k + 1 >= n || !is_ident_byte(b[k + 1]) || b[k + 1].is_ascii_digit())
            {
                return true; // `1e-12`
            }
        }
    }
    false
}

/// Hash-container iteration methods (D1).
const HASH_ITER_METHODS: [&str; 8] = [
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".drain(",
    ".into_iter()",
    ".retain(",
];

/// Wall-clock / ambient-entropy tokens (D3).
const WALLCLOCK_TOKENS: [&str; 6] = [
    "SystemTime",
    "Instant",
    "thread_rng",
    "from_entropy",
    "getrandom",
    "UNIX_EPOCH",
];

/// Deterministic-reduction entry points whose argument lists are exempt
/// from D2 (the sanctioned intra-chunk serial accumulation pattern).
const REDUCE_SINKS: [&str; 3] = ["chunked_reduce", "chunk_partials", "pairwise_sum"];

/// Scan one file's source text under the given classification.
pub fn scan_source(source: &str, class: &FileClass, file: &Path) -> Vec<Diagnostic> {
    let lines = strip_source(source);
    let mut out = Vec::new();

    // Per-line annotations, then effective coverage: a standalone comment
    // line extends its annotations over the contiguous code block beneath.
    let per_line: Vec<Annotations> = lines
        .iter()
        .map(|l| Annotations::parse(&l.comment))
        .collect();
    let mut coverage: Vec<Annotations> = vec![Annotations::default(); lines.len()];
    let mut carried = Annotations::default();
    for (i, line) in lines.iter().enumerate() {
        let standalone = line.code.trim().is_empty() && !line.comment.trim().is_empty();
        let blank = line.code.trim().is_empty() && line.comment.trim().is_empty();
        if standalone {
            carried.merge(&per_line[i]);
        } else if blank {
            carried = Annotations::default();
        }
        coverage[i] = per_line[i].clone();
        if !standalone {
            let c = carried.clone();
            coverage[i].merge(&c);
        }
        for m in &per_line[i].malformed {
            out.push(Diagnostic {
                file: file.to_path_buf(),
                line: i + 1,
                rule: Rule::Meta,
                message: m.clone(),
            });
        }
    }

    // Region tracking: `#[cfg(test)]` / `#[test]` scopes (brace-balanced)
    // and `chunked_reduce(...)` argument spans (paren-balanced).
    let mut in_test_region = vec![false; lines.len()];
    let mut in_reduce_args = vec![false; lines.len()];
    {
        let mut brace_depth: i64 = 0;
        let mut test_until_depth: Option<i64> = None;
        let mut pending_test_attr = false;
        let mut reduce_until_depth: Option<i64> = None;
        let mut paren_depth: i64 = 0;
        for (i, line) in lines.iter().enumerate() {
            let code = line.code.as_str();
            if test_until_depth.is_some() {
                in_test_region[i] = true;
            }
            if reduce_until_depth.is_some() {
                in_reduce_args[i] = true;
            }
            if code.contains("#[cfg(test)]") || code.contains("#[test]") {
                pending_test_attr = true;
                in_test_region[i] = true;
            }
            for sink in REDUCE_SINKS {
                if reduce_until_depth.is_none() && has_word(code, sink) {
                    // Exempt from the call token to its closing paren.
                    in_reduce_args[i] = true;
                    let before: i64 = code[..code.find(sink).unwrap_or(0)]
                        .bytes()
                        .map(|b| match b {
                            b'(' => 1,
                            b')' => -1,
                            _ => 0,
                        })
                        .sum();
                    reduce_until_depth = Some(paren_depth + before);
                }
            }
            for b in code.bytes() {
                match b {
                    b'{' => {
                        brace_depth += 1;
                        if pending_test_attr && test_until_depth.is_none() {
                            test_until_depth = Some(brace_depth - 1);
                            pending_test_attr = false;
                            in_test_region[i] = true;
                        }
                    }
                    b'}' => {
                        brace_depth -= 1;
                        if test_until_depth.is_some_and(|d| brace_depth <= d) {
                            test_until_depth = None;
                        }
                    }
                    b'(' => paren_depth += 1,
                    b')' => {
                        paren_depth -= 1;
                        if reduce_until_depth.is_some_and(|d| paren_depth <= d) {
                            reduce_until_depth = None;
                        }
                    }
                    _ => {}
                }
            }
            // `#[cfg(test)] use …;` style items: attr consumed by a
            // braceless item terminated on the same or a later line.
            if pending_test_attr && code.trim_end().ends_with(';') {
                pending_test_attr = false;
                in_test_region[i] = true;
            }
        }
    }

    // D2 precondition: does this module contain a parallel kernel?
    let has_parallel = lines.iter().any(|l| {
        let c = &l.code;
        c.contains("par_iter")
            || c.contains("par_chunks")
            || c.contains("par_bridge")
            || c.contains("rayon::join")
            || c.contains("rayon::scope")
            || c.contains("thread::spawn")
    });

    // D1 state: names bound to hash containers in this file.
    let mut hash_vars: Vec<String> = Vec::new();

    // D2 state: names bound to float accumulators in this file.
    let mut float_vars: Vec<String> = Vec::new();

    let push = |out: &mut Vec<Diagnostic>, i: usize, rule: Rule, message: String| {
        out.push(Diagnostic {
            file: file.to_path_buf(),
            line: i + 1,
            rule,
            message,
        });
    };

    for (i, line) in lines.iter().enumerate() {
        let code = line.code.as_str();
        if code.trim().is_empty() {
            continue;
        }
        let cov = &coverage[i];
        let in_test = in_test_region[i] || class.is_test_file;

        // ---- P1: unsafe needs SAFETY -------------------------------
        if has_word(code, "unsafe") && !cov.safety {
            push(
                &mut out,
                i,
                Rule::P1UnsafeSafety,
                "`unsafe` without a preceding `// SAFETY:` proof".to_string(),
            );
        }

        // ---- P2: Ordering::Relaxed needs RELAXED -------------------
        if code.contains("Ordering::Relaxed") && !cov.relaxed {
            push(
                &mut out,
                i,
                Rule::P2RelaxedJustify,
                "`Ordering::Relaxed` without a `// RELAXED:` justification".to_string(),
            );
        }

        // ---- D3: wall clock / entropy ------------------------------
        if !class.may_use_wallclock && !class.is_bin && !in_test {
            for tok in WALLCLOCK_TOKENS {
                if has_word(code, tok) && !cov.allows_key("wallclock") {
                    push(
                        &mut out,
                        i,
                        Rule::D3WallClock,
                        format!(
                            "`{tok}` outside crates/trace|bench: wall clock and ambient entropy \
                             break reproducibility (route timing through mlgp_trace::Stopwatch)"
                        ),
                    );
                }
            }
        }

        // ---- R1: panic-free library code ---------------------------
        if !class.is_bin && !in_test {
            let hits = [
                (".unwrap()", "`.unwrap()`"),
                (".expect(", "`.expect(…)`"),
                ("panic!", "`panic!`"),
            ];
            for (needle, label) in hits {
                if code.contains(needle) && !cov.allows_key("panic") {
                    push(
                        &mut out,
                        i,
                        Rule::R1PanicFree,
                        format!(
                            "{label} in library code: return an error or annotate \
                             `// LINT: allow(panic, why this cannot fire)`"
                        ),
                    );
                }
            }
        }

        // ---- D1: hash-container iteration in kernel crates ---------
        if class.is_kernel && !in_test {
            let mentions_hash = code.contains("HashMap") || code.contains("HashSet");
            if mentions_hash {
                // Record bindings: `let [mut] name … HashMap/HashSet …`.
                if let Some(name) = binding_name(code) {
                    hash_vars.push(name);
                }
                // Inline construction + iteration on one line.
                if HASH_ITER_METHODS.iter().any(|m| code.contains(m))
                    && !cov.allows_key("hashmap_iter")
                {
                    push(
                        &mut out,
                        i,
                        Rule::D1HashIter,
                        "iterating a hash container in a kernel crate: hash order is \
                         nondeterministic; use a sorted Vec or BTreeMap"
                            .to_string(),
                    );
                }
            } else {
                let iterated = hash_vars.iter().any(|v| {
                    HASH_ITER_METHODS
                        .iter()
                        .any(|m| code.contains(&format!("{v}{m}")))
                        || (code.contains("for ") && {
                            code.split(" in ")
                                .nth(1)
                                .is_some_and(|tail| has_word(tail, v))
                        })
                });
                if iterated && !cov.allows_key("hashmap_iter") {
                    push(
                        &mut out,
                        i,
                        Rule::D1HashIter,
                        "iterating a hash container in a kernel crate: hash order is \
                         nondeterministic; use a sorted Vec or BTreeMap"
                            .to_string(),
                    );
                }
            }
        }

        // ---- D2: raw float accumulation in parallel modules --------
        if class.is_kernel && has_parallel && !class.float_accum_allowed && !in_test {
            let float_evidence = code.contains("f64")
                || code.contains("f32")
                || has_float_literal(code)
                || float_vars.iter().any(|v| {
                    code.contains(&format!("{v} +="))
                        || code.contains(&format!("{v}+="))
                        || code.contains(&format!("*{v} +="))
                });
            if let Some(name) = binding_name(code) {
                if code.contains("f64") || code.contains("f32") || has_float_literal(code) {
                    float_vars.push(name);
                }
            }
            let accumulates = code.contains("+=")
                || code.contains(".sum()")
                || code.contains(".sum::<f64>()")
                || code.contains(".sum::<f32>()");
            let typed_float_sum = code.contains(".sum::<f64>()") || code.contains(".sum::<f32>()");
            if accumulates
                && (float_evidence || typed_float_sum)
                && !in_reduce_args[i]
                && !cov.allows_key("float_accum")
            {
                push(
                    &mut out,
                    i,
                    Rule::D2FloatAccum,
                    "raw floating-point accumulation in a parallel-kernel module: float \
                     addition is non-associative — route the reduction through \
                     vecops::chunked_reduce (or justify why this accumulator is \
                     thread-invariant)"
                        .to_string(),
                );
            }
        }
    }

    out
}

/// Extract the bound name from a `let [mut] name …` line, if any.
fn binding_name(code: &str) -> Option<String> {
    let t = code.trim_start();
    let rest = t.strip_prefix("let ")?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// Scan one file from disk.
pub fn scan_file(path: &Path, report_as: &Path) -> Result<Vec<Diagnostic>, String> {
    let source = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let class = FileClass::from_path(report_as);
    Ok(scan_source(&source, &class, report_as))
}

/// Walk `root/crates/*/src`, scanning every `.rs` file in deterministic
/// (sorted-path) order. Returns all diagnostics, paths relative to `root`.
pub fn scan_workspace(root: &Path) -> Result<Vec<Diagnostic>, String> {
    let crates_dir = root.join("crates");
    let mut files: Vec<PathBuf> = Vec::new();
    let entries = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("readdir failed under crates/: {e}"))?;
        let src = entry.path().join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    files.sort();
    let mut out = Vec::new();
    for f in &files {
        let rel = f.strip_prefix(root).unwrap_or(f);
        out.extend(scan_file(f, rel)?);
    }
    Ok(out)
}

fn collect_rs(dir: &Path, files: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("readdir failed under {}: {e}", dir.display()))?;
        let p = entry.path();
        if p.is_dir() {
            collect_rs(&p, files)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            files.push(p);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel_class() -> FileClass {
        FileClass::from_path(Path::new("crates/part/src/kernel.rs"))
    }

    fn scan(src: &str, class: &FileClass) -> Vec<Diagnostic> {
        scan_source(src, class, Path::new("mem.rs"))
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule.code()).collect()
    }

    #[test]
    fn classifies_paths() {
        let c = FileClass::from_path(Path::new("crates/part/src/refine/fm.rs"));
        assert_eq!(c.crate_name, "part");
        assert!(c.is_kernel && !c.is_bin && !c.is_test_file);
        let b = FileClass::from_path(Path::new("crates/bench/src/bin/parallel.rs"));
        assert_eq!(b.crate_name, "bench");
        assert!(b.is_bin && b.may_use_wallclock);
        let t = FileClass::from_path(Path::new("crates/part/src/kway_extra_tests.rs"));
        assert!(t.is_test_file);
        let v = FileClass::from_path(Path::new("crates/linalg/src/vecops.rs"));
        assert!(v.float_accum_allowed);
    }

    #[test]
    fn r1_flags_unwrap_and_respects_allow() {
        let class = kernel_class();
        let bad = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(codes(&scan(bad, &class)), ["R1"]);
        let ok = "fn f(x: Option<u32>) -> u32 {\n    // LINT: allow(panic, x is Some by construction)\n    x.unwrap()\n}\n";
        assert!(scan(ok, &class).is_empty());
        let trailing =
            "fn f(x: Option<u32>) -> u32 { x.unwrap() } // LINT: allow(panic, infallible)\n";
        assert!(scan(trailing, &class).is_empty());
    }

    #[test]
    fn r1_skips_tests_and_strings() {
        let class = kernel_class();
        let in_test =
            "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\n";
        assert!(scan(in_test, &class).is_empty());
        let in_string = "fn f() -> &'static str { \"don't panic!(.unwrap())\" }\n";
        assert!(scan(in_string, &class).is_empty());
        let in_comment = "// calling .unwrap() here would be bad\nfn f() {}\n";
        assert!(scan(in_comment, &class).is_empty());
    }

    #[test]
    fn p2_requires_relaxed_annotation() {
        let class = kernel_class();
        let bad = "fn f(a: &AtomicU32) -> u32 { a.load(Ordering::Relaxed) }\n";
        assert_eq!(codes(&scan(bad, &class)), ["P2"]);
        let ok = "// RELAXED: statistic only\nfn f(a: &AtomicU32) -> u32 { a.load(Ordering::Relaxed) }\n";
        assert!(scan(ok, &class).is_empty());
    }

    #[test]
    fn p1_requires_safety_proof() {
        let class = kernel_class();
        let bad = "fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        assert_eq!(codes(&scan(bad, &class)), ["P1"]);
        let ok = "// SAFETY: p is valid for reads, checked by caller\nfn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        assert!(scan(ok, &class).is_empty());
    }

    #[test]
    fn d1_flags_iteration_not_lookup() {
        let class = kernel_class();
        let lookup = "fn f() {\n    let mut m: HashMap<u32, u32> = HashMap::new();\n    m.insert(1, 2);\n    let _ = m.get(&1);\n}\n";
        assert!(scan(lookup, &class).is_empty());
        let iter = "fn f() {\n    let mut m: HashMap<u32, u32> = HashMap::new();\n    for (k, v) in m.iter() { let _ = (k, v); }\n}\n";
        assert_eq!(codes(&scan(iter, &class)), ["D1"]);
        let for_in = "fn f() {\n    let m: HashSet<u32> = HashSet::new();\n    for k in &m { let _ = k; }\n}\n";
        assert_eq!(codes(&scan(for_in, &class)), ["D1"]);
    }

    #[test]
    fn d2_flags_float_accum_only_in_parallel_modules() {
        let class = kernel_class();
        let serial = "fn f(xs: &[f64]) -> f64 {\n    let mut acc = 0.0;\n    for x in xs { acc += x; }\n    acc\n}\n";
        assert!(scan(serial, &class).is_empty(), "no parallel kernel here");
        let parallel = "fn g(xs: &mut [f64]) { xs.par_iter_mut().for_each(|x| *x += 1.0); }\nfn f(xs: &[f64]) -> f64 {\n    let mut acc = 0.0;\n    for x in xs { acc += x; }\n    acc\n}\n";
        let d = scan(parallel, &class);
        assert!(
            d.iter().any(|d| d.rule == Rule::D2FloatAccum),
            "float += in a parallel module must flag: {d:?}"
        );
    }

    #[test]
    fn d2_exempts_chunked_reduce_arguments() {
        let class = kernel_class();
        let ok = "fn g(xs: &mut [f64]) { xs.par_iter_mut().for_each(|x| *x = 0.0); }\nfn f(xs: &[f64]) -> f64 {\n    chunked_reduce(xs.len(), 0, |lo, hi| {\n        let mut acc = 0.0;\n        for x in &xs[lo..hi] { acc += x; }\n        acc\n    })\n}\n";
        let d = scan(ok, &class);
        assert!(
            !d.iter().any(|d| d.rule == Rule::D2FloatAccum),
            "chunked_reduce args are the sanctioned pattern: {d:?}"
        );
    }

    #[test]
    fn d3_flags_wallclock_outside_trace() {
        let class = kernel_class();
        let bad = "fn f() { let t = Instant::now(); let _ = t; }\n";
        assert_eq!(codes(&scan(bad, &class)), ["D3"]);
        let trace = FileClass::from_path(Path::new("crates/trace/src/lib.rs"));
        assert!(scan(bad, &trace).is_empty());
        let bench_bin = FileClass::from_path(Path::new("crates/bench/src/bin/parallel.rs"));
        assert!(scan(bad, &bench_bin).is_empty());
    }

    #[test]
    fn suppression_without_reason_is_meta() {
        let class = kernel_class();
        let bad = "// LINT: allow(panic)\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let d = scan(bad, &class);
        assert!(d.iter().any(|d| d.rule == Rule::Meta), "{d:?}");
        assert!(d.iter().any(|d| d.rule == Rule::R1PanicFree), "{d:?}");
        let unknown = "// LINT: allow(everything, because)\nfn f() {}\n";
        let d = scan(unknown, &class);
        assert!(d.iter().any(|d| d.rule == Rule::Meta), "{d:?}");
    }

    #[test]
    fn coverage_breaks_at_blank_lines() {
        let class = kernel_class();
        let src = "// LINT: allow(panic, covered block)\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n\nfn g(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let d = scan(src, &class);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 4);
    }

    #[test]
    fn float_literal_detector() {
        assert!(has_float_literal("let x = 2.5;"));
        assert!(has_float_literal("let x = 1e-12;"));
        assert!(!has_float_literal("let x = t.0;"));
        assert!(!has_float_literal("for i in 0..n {}"));
        assert!(!has_float_literal("let x = 42;"));
        assert!(!has_float_literal("x1e2"));
    }
}
