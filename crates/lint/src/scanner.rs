//! Comment- and string-aware source stripping.
//!
//! The rule engine must never fire on tokens inside string literals,
//! char literals, or comments — and must *read* comments to find
//! `SAFETY:` / `RELAXED:` / `allow(…)` annotations. This module
//! splits a Rust source file into per-line `(code, comment)` pairs with a
//! small state machine that understands:
//!
//! * line comments (`//`, `///`, `//!`);
//! * **nested** block comments (`/* /* */ */`);
//! * string literals with escapes, including multi-line strings;
//! * raw (and byte/raw-byte) strings `r"…"`, `r#"…"#`, … with any number
//!   of hashes;
//! * char literals vs. lifetimes (`'a'` and `'\n'` strip; `'a` in
//!   `&'a str` stays code).
//!
//! String and char *contents* are dropped from the code text (delimiters
//! are kept so token boundaries survive); comment text is collected
//! separately, per line.

/// One physical source line, split into its code and comment parts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Line {
    /// Code with string/char contents and all comments removed.
    pub code: String,
    /// Concatenated comment text carried by this line.
    pub comment: String,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Code,
    LineComment,
    /// Nesting depth.
    BlockComment(u32),
    /// Inside a normal string literal.
    Str,
    /// Inside a raw string with this many `#`s.
    RawStr(u32),
    /// Inside a char literal.
    CharLit,
}

/// Split `source` into per-line code/comment pairs.
pub fn strip_source(source: &str) -> Vec<Line> {
    let chars: Vec<char> = source.chars().collect();
    let n = chars.len();
    let mut lines = Vec::new();
    let mut cur = Line::default();
    let mut mode = Mode::Code;
    let mut i = 0;

    let at = |i: usize| -> Option<char> { chars.get(i).copied() };

    while i < n {
        let c = chars[i];
        if c == '\n' {
            // Newline always ends the physical line; line comments end too.
            if mode == Mode::LineComment {
                mode = Mode::Code;
            }
            lines.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match mode {
            Mode::Code => {
                if c == '/' && at(i + 1) == Some('/') {
                    mode = Mode::LineComment;
                    i += 2;
                } else if c == '/' && at(i + 1) == Some('*') {
                    mode = Mode::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    cur.code.push('"');
                    mode = Mode::Str;
                    i += 1;
                } else if (c == 'r' || c == 'b')
                    && !prev_is_ident(&chars, i)
                    && raw_string_hashes(&chars, i).is_some()
                {
                    // r"…", r#"…"#, b"…", br#"…"# — delimiters kept.
                    let (hashes, skip) = match raw_string_hashes(&chars, i) {
                        Some(hs) => hs,
                        None => unreachable_raw(),
                    };
                    for j in 0..skip {
                        cur.code.push(chars[i + j]);
                    }
                    mode = if chars[i + skip - 1] == '"' {
                        if hashes == u32::MAX {
                            Mode::Str
                        } else {
                            Mode::RawStr(hashes)
                        }
                    } else {
                        Mode::Code
                    };
                    i += skip;
                } else if c == '\'' {
                    // Char literal or lifetime?
                    let is_char = matches!(
                        (at(i + 1), at(i + 2)),
                        (Some('\\'), _) | (Some(_), Some('\''))
                    );
                    if is_char {
                        cur.code.push('\'');
                        mode = Mode::CharLit;
                        i += 1;
                    } else {
                        cur.code.push('\'');
                        i += 1;
                    }
                } else {
                    cur.code.push(c);
                    i += 1;
                }
            }
            Mode::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            Mode::BlockComment(depth) => {
                if c == '/' && at(i + 1) == Some('*') {
                    mode = Mode::BlockComment(depth + 1);
                    i += 2;
                } else if c == '*' && at(i + 1) == Some('/') {
                    mode = if depth <= 1 {
                        Mode::Code
                    } else {
                        Mode::BlockComment(depth - 1)
                    };
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            Mode::Str => {
                if c == '\\' {
                    if at(i + 1) == Some('\n') {
                        // Line-continuation escape: keep line numbers true.
                        lines.push(std::mem::take(&mut cur));
                    }
                    i += 2; // skip the escaped char (may be `"` or `\`)
                } else if c == '"' {
                    cur.code.push('"');
                    mode = Mode::Code;
                    i += 1;
                } else {
                    i += 1; // string content dropped
                }
            }
            Mode::RawStr(hashes) => {
                if c == '"' && closes_raw(&chars, i, hashes) {
                    cur.code.push('"');
                    for _ in 0..hashes {
                        cur.code.push('#');
                    }
                    i += 1 + hashes as usize;
                    mode = Mode::Code;
                } else {
                    i += 1;
                }
            }
            Mode::CharLit => {
                if c == '\\' {
                    i += 2;
                } else if c == '\'' {
                    cur.code.push('\'');
                    mode = Mode::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
        }
    }
    // Final line without trailing newline.
    if !cur.code.is_empty() || !cur.comment.is_empty() {
        lines.push(cur);
    }
    lines
}

/// `raw_string_hashes(chars, i)` inspects a possible raw/byte string
/// opener at `i` (which holds `r` or `b`). Returns `(hashes, skip)` where
/// `skip` is the opener's length in chars, or `None` if this is not a
/// string opener. A plain `b"…"` byte string reports `hashes == u32::MAX`
/// as a sentinel meaning "escapes allowed" (handled as [`Mode::Str`]).
fn raw_string_hashes(chars: &[char], i: usize) -> Option<(u32, usize)> {
    let mut j = i;
    let mut saw_r = false;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) == Some(&'r') {
        saw_r = true;
        j += 1;
    }
    if j == i {
        return None;
    }
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) != Some(&'"') {
        return None;
    }
    if !saw_r {
        if hashes != 0 {
            return None; // `b#"` is not a thing
        }
        return Some((u32::MAX, j - i + 1)); // b"…" behaves like a normal string
    }
    Some((hashes, j - i + 1))
}

fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0
        && chars
            .get(i - 1)
            .is_some_and(|c| c.is_alphanumeric() || *c == '_')
}

/// `raw_string_hashes` is consulted before entering this arm, so it never
/// yields `None` here; isolated to keep the hot path `unwrap`-free.
fn unreachable_raw() -> (u32, usize) {
    (0, 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> Vec<String> {
        strip_source(src).into_iter().map(|l| l.code).collect()
    }

    fn comments_of(src: &str) -> Vec<String> {
        strip_source(src).into_iter().map(|l| l.comment).collect()
    }

    #[test]
    fn strips_line_comments() {
        let lines = strip_source("let x = 1; // panic! here\n");
        assert_eq!(lines[0].code, "let x = 1; ");
        assert_eq!(lines[0].comment, " panic! here");
    }

    #[test]
    fn strips_nested_block_comments() {
        let c = code_of("a /* one /* two */ still comment */ b\n");
        assert_eq!(c[0], "a  b");
    }

    #[test]
    fn strips_string_contents_keeps_quotes() {
        let c = code_of("let s = \".unwrap() panic!\";\n");
        assert_eq!(c[0], "let s = \"\";");
    }

    #[test]
    fn handles_escaped_quotes() {
        let c = code_of(r#"let s = "a\"b"; let t = 1;"#);
        assert_eq!(c[0], "let s = \"\"; let t = 1;");
    }

    #[test]
    fn handles_raw_strings() {
        let c = code_of("let s = r#\"has \"quotes\" and panic!\"#; let t = 2;\n");
        assert_eq!(c[0], "let s = r#\"\"#; let t = 2;");
    }

    #[test]
    fn handles_multiline_strings() {
        let c = code_of("let s = \"line one\n  line two\"; let x = 3;\n");
        assert_eq!(c[0], "let s = \"");
        assert_eq!(c[1], "\"; let x = 3;");
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let c = code_of("let c = '\\n'; fn f<'a>(x: &'a str) -> &'a str { x }\n");
        assert!(c[0].contains("fn f<'a>"));
        assert!(!c[0].contains("\\n"));
        let c = code_of("let q = '\"'; let s = \"x\";\n");
        assert_eq!(c[0], "let q = ''; let s = \"\";");
    }

    #[test]
    fn byte_strings() {
        let c = code_of("let b = b\"panic! bytes\"; let x = 1;\n");
        assert_eq!(c[0], "let b = b\"\"; let x = 1;");
    }

    #[test]
    fn doc_comments_are_comments() {
        let com = comments_of("/// uses .unwrap() internally\nfn f() {}\n");
        assert!(com[0].contains(".unwrap()"));
        let c = code_of("/// uses .unwrap() internally\nfn f() {}\n");
        assert_eq!(c[0], "");
    }

    #[test]
    fn multibyte_chars_survive() {
        let lines = strip_source("let s = \"héllo wörld\"; // ünïcode\n");
        assert_eq!(lines[0].code, "let s = \"\"; ");
        assert!(lines[0].comment.contains("ünïcode"));
    }
}
