//! Inertial bisection: split perpendicular to the principal axis of the
//! point cloud (the classical geometric scheme of Nour-Omid, Raefsky &
//! Lyzenga cited in §1). Slightly better than plain coordinate bisection
//! on skewed geometries because the cut plane follows the data rather than
//! the coordinate frame.

use mlgp_graph::generators::Point;
use mlgp_graph::{Vid, Wgt};

/// Recursively bisect by principal-axis medians into `k` parts.
pub fn inertial_partition(points: &[Point], vwgt: &[Wgt], k: usize) -> Vec<u32> {
    assert_eq!(points.len(), vwgt.len());
    assert!(k >= 1);
    let mut labels = vec![0u32; points.len()];
    let mut ids: Vec<Vid> = (0..points.len() as Vid).collect();
    rec(points, vwgt, &mut ids, k, 0, &mut labels);
    labels
}

fn rec(points: &[Point], vwgt: &[Wgt], ids: &mut [Vid], k: usize, base: u32, labels: &mut [u32]) {
    if k <= 1 || ids.is_empty() {
        for &v in ids.iter() {
            labels[v as usize] = base;
        }
        return;
    }
    let k0 = k.div_ceil(2);
    let axis = principal_axis(points, ids);
    // Project and split at the weighted k0/k point.
    let project = |v: Vid| {
        let p = points[v as usize];
        p[0] * axis[0] + p[1] * axis[1] + p[2] * axis[2]
    };
    ids.sort_by(|&a, &b| {
        project(a)
            .partial_cmp(&project(b))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let total: Wgt = ids.iter().map(|&v| vwgt[v as usize]).sum();
    let target0 = (total as i128 * k0 as i128 / k as i128) as Wgt;
    let mut acc = 0;
    let mut split = ids.len();
    for (i, &v) in ids.iter().enumerate() {
        if acc >= target0 {
            split = i;
            break;
        }
        acc += vwgt[v as usize];
    }
    let (left, right) = ids.split_at_mut(split);
    rec(points, vwgt, left, k0, base, labels);
    rec(points, vwgt, right, k - k0, base + k0 as u32, labels);
}

/// Principal axis (dominant eigenvector of the 3x3 covariance) of the
/// selected points, via a deterministic power iteration.
pub(crate) fn principal_axis(points: &[Point], ids: &[Vid]) -> [f64; 3] {
    let n = ids.len().max(1) as f64;
    let mut mean = [0.0f64; 3];
    for &v in ids {
        for d in 0..3 {
            mean[d] += points[v as usize][d];
        }
    }
    for m in &mut mean {
        *m /= n;
    }
    // Covariance (symmetric 3x3).
    let mut c = [[0.0f64; 3]; 3];
    for &v in ids {
        let p = points[v as usize];
        let d = [p[0] - mean[0], p[1] - mean[1], p[2] - mean[2]];
        for i in 0..3 {
            for j in 0..3 {
                c[i][j] += d[i] * d[j];
            }
        }
    }
    // Power iteration from a fixed, non-axis-aligned start.
    let mut x = [1.0f64, 0.7548776662, 0.5698402910]; // plastic-number mix
    for _ in 0..50 {
        let y = [
            c[0][0] * x[0] + c[0][1] * x[1] + c[0][2] * x[2],
            c[1][0] * x[0] + c[1][1] * x[1] + c[1][2] * x[2],
            c[2][0] * x[0] + c[2][1] * x[1] + c[2][2] * x[2],
        ];
        let norm = (y[0] * y[0] + y[1] * y[1] + y[2] * y[2]).sqrt();
        if norm < 1e-30 {
            break; // degenerate cloud (single point); any axis works
        }
        x = [y[0] / norm, y[1] / norm, y[2] / norm];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlgp_graph::generators::{grid2d, grid2d_coords};
    use mlgp_part::{edge_cut_kway, imbalance};

    #[test]
    fn principal_axis_of_elongated_cloud() {
        // Points along the line y = x: principal axis ≈ (1,1,0)/√2.
        let pts: Vec<Point> = (0..50).map(|i| [i as f64, i as f64, 0.0]).collect();
        let ids: Vec<u32> = (0..50).collect();
        let a = principal_axis(&pts, &ids);
        let dot = (a[0] + a[1]).abs() / 2f64.sqrt();
        assert!(dot > 0.999, "{a:?}");
        assert!(a[2].abs() < 1e-6);
    }

    #[test]
    fn bisects_rotated_strip_well() {
        // A 24x4 grid is elongated along x: inertial must split across x,
        // cutting exactly the short dimension.
        let g = grid2d(24, 4);
        let pts = grid2d_coords(24, 4);
        let part = inertial_partition(&pts, g.vwgt(), 2);
        assert_eq!(edge_cut_kway(&g, &part), 4);
    }

    #[test]
    fn kway_is_balanced() {
        let g = grid2d(20, 20);
        let pts = grid2d_coords(20, 20);
        for k in [4, 5, 8] {
            let part = inertial_partition(&pts, g.vwgt(), k);
            assert!(imbalance(&g, &part, k) < 1.06, "k={k}");
        }
    }

    #[test]
    fn handles_degenerate_cloud() {
        let pts = vec![[1.0, 1.0, 1.0]; 5];
        let part = inertial_partition(&pts, &[1; 5], 2);
        // Balance still holds even with identical points.
        assert_eq!(part.iter().filter(|&&p| p == 0).count(), 2);
    }
}
