//! Recursive coordinate bisection (RCB).
//!
//! The simplest geometric partitioner (§1 of the paper, Nour-Omid et al.):
//! split the point set at the weighted median along its widest axis,
//! recurse. Fast and balance-exact but blind to connectivity, which is why
//! its cuts trail spectral/multilevel quality.

use mlgp_graph::generators::Point;
use mlgp_graph::{Vid, Wgt};

/// Recursively bisect `points` into `k` parts by coordinate medians.
/// Returns one label in `0..k` per point.
pub fn rcb_partition(points: &[Point], vwgt: &[Wgt], k: usize) -> Vec<u32> {
    assert_eq!(points.len(), vwgt.len());
    assert!(k >= 1);
    let mut labels = vec![0u32; points.len()];
    let mut ids: Vec<Vid> = (0..points.len() as Vid).collect();
    rec(points, vwgt, &mut ids, k, 0, &mut labels);
    labels
}

fn rec(points: &[Point], vwgt: &[Wgt], ids: &mut [Vid], k: usize, base: u32, labels: &mut [u32]) {
    if k <= 1 || ids.is_empty() {
        for &v in ids.iter() {
            labels[v as usize] = base;
        }
        return;
    }
    let k0 = k.div_ceil(2);
    // Widest axis of the current point set.
    let axis = widest_axis(points, ids);
    // Sort along the axis; split at the weight point k0/k of the total.
    ids.sort_by(|&a, &b| {
        points[a as usize][axis]
            .partial_cmp(&points[b as usize][axis])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let total: Wgt = ids.iter().map(|&v| vwgt[v as usize]).sum();
    let target0 = (total as i128 * k0 as i128 / k as i128) as Wgt;
    let mut acc = 0;
    let mut split = ids.len();
    for (i, &v) in ids.iter().enumerate() {
        if acc >= target0 {
            split = i;
            break;
        }
        acc += vwgt[v as usize];
    }
    let (left, right) = ids.split_at_mut(split);
    rec(points, vwgt, left, k0, base, labels);
    rec(points, vwgt, right, k - k0, base + k0 as u32, labels);
}

/// Index (0/1/2) of the axis with the largest extent over `ids`.
pub(crate) fn widest_axis(points: &[Point], ids: &[Vid]) -> usize {
    let mut lo = [f64::INFINITY; 3];
    let mut hi = [f64::NEG_INFINITY; 3];
    for &v in ids {
        let p = points[v as usize];
        for d in 0..3 {
            lo[d] = lo[d].min(p[d]);
            hi[d] = hi[d].max(p[d]);
        }
    }
    let mut best = 0;
    for d in 1..3 {
        if hi[d] - lo[d] > hi[best] - lo[best] {
            best = d;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlgp_graph::generators::{grid2d, grid2d_coords};
    use mlgp_part::{edge_cut_kway, imbalance, part_weights};

    #[test]
    fn splits_grid_along_long_axis() {
        // 16x4 grid: the first split must be along x, cutting 4 edges.
        let g = grid2d(16, 4);
        let pts = grid2d_coords(16, 4);
        let part = rcb_partition(&pts, g.vwgt(), 2);
        assert_eq!(edge_cut_kway(&g, &part), 4);
        assert_eq!(part_weights(&g, &part, 2), vec![32, 32]);
    }

    #[test]
    fn kway_balance_is_exact_on_unit_weights() {
        let g = grid2d(16, 16);
        let pts = grid2d_coords(16, 16);
        for k in [2, 3, 4, 7, 8] {
            let part = rcb_partition(&pts, g.vwgt(), k);
            let imb = imbalance(&g, &part, k);
            assert!(imb <= 1.05, "k={k}: {imb}");
            assert_eq!(part.iter().map(|&p| p as usize).max().unwrap(), k - 1);
        }
    }

    #[test]
    fn respects_vertex_weights() {
        // Two heavy points on the left balance many light ones on the right.
        let pts: Vec<Point> = (0..10).map(|i| [i as f64, 0.0, 0.0]).collect();
        let vwgt: Vec<i64> = vec![8, 8, 1, 1, 1, 1, 1, 1, 1, 1];
        let part = rcb_partition(&pts, &vwgt, 2);
        let w0: i64 = (0..10).filter(|&i| part[i] == 0).map(|i| vwgt[i]).sum();
        // Ideal is 12, but a weight-8 point straddles the median; either
        // side of it (8 or 16) is the best achievable split.
        assert!((8..=16).contains(&w0), "w0={w0}");
        // Count-wise the heavy points must land together on the left.
        assert_eq!(part[0], part[1]);
    }

    #[test]
    fn single_part_is_identity() {
        let pts = grid2d_coords(3, 3);
        let part = rcb_partition(&pts, &[1; 9], 1);
        assert!(part.iter().all(|&p| p == 0));
    }
}
