//! Randomized geometric separators in the spirit of Miller-Teng-Vavasis
//! (§1 of the paper): many random cut surfaces are tried and the best
//! edge-cut kept. The paper's observation — "due to the randomized nature
//! of these algorithms, multiple trials are often required to obtain
//! solutions comparable to spectral methods" — is directly visible in the
//! trials parameter.
//!
//! Two families of random surfaces are drawn: random-direction hyperplanes
//! through the weighted median, and random-center spheres through the
//! weighted median radius.

use mlgp_graph::generators::Point;
use mlgp_graph::rng::seeded;
use mlgp_graph::{CsrGraph, Vid, Wgt};
use mlgp_part::edge_cut_bisection;
use rand::{rngs::StdRng, RngExt};

/// Configuration for the randomized separator search.
#[derive(Clone, Copy, Debug)]
pub struct SphereConfig {
    /// Number of random surfaces tried per bisection (the paper's
    /// "multiple trials").
    pub trials: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SphereConfig {
    fn default() -> Self {
        Self {
            trials: 30,
            seed: 0x5e7a,
        }
    }
}

/// Bisect by the best of `cfg.trials` random geometric surfaces. Unlike
/// RCB/inertial, this *looks at the edges* (to score candidates), which is
/// what buys its better quality at higher cost.
pub fn sphere_bisect(g: &CsrGraph, points: &[Point], cfg: &SphereConfig) -> Vec<u8> {
    assert_eq!(points.len(), g.n());
    let n = g.n();
    if n <= 1 {
        return vec![0; n];
    }
    let mut rng = seeded(cfg.seed);
    let mut best: Option<(Wgt, Vec<u8>)> = None;
    for trial in 0..cfg.trials.max(1) {
        // Alternate hyperplane and sphere candidates.
        let values: Vec<f64> = if trial % 2 == 0 {
            let d = random_unit(&mut rng);
            points
                .iter()
                .map(|p| p[0] * d[0] + p[1] * d[1] + p[2] * d[2])
                .collect()
        } else {
            let c = points[rng.random_range(0..n)];
            points
                .iter()
                .map(|p| {
                    let dx = p[0] - c[0];
                    let dy = p[1] - c[1];
                    let dz = p[2] - c[2];
                    dx * dx + dy * dy + dz * dz
                })
                .collect()
        };
        let part = median_split(g, &values);
        let cut = edge_cut_bisection(g, &part);
        if best.as_ref().is_none_or(|(bc, _)| cut < *bc) {
            best = Some((cut, part));
        }
    }
    // LINT: allow(panic, loop above runs trials.max(1) >= 1 iterations, so best is always Some)
    best.unwrap().1
}

/// k-way partitioning by recursive randomized-separator bisection.
pub fn sphere_kway(g: &CsrGraph, points: &[Point], k: usize, cfg: &SphereConfig) -> Vec<u32> {
    let mut labels = vec![0u32; g.n()];
    rec(g, points, k, cfg, 1, &mut labels);
    labels
}

fn rec(
    g: &CsrGraph,
    points: &[Point],
    k: usize,
    cfg: &SphereConfig,
    salt: u64,
    labels: &mut [u32],
) {
    if k <= 1 || g.n() == 0 {
        return;
    }
    let k0 = k.div_ceil(2);
    let mut c = *cfg;
    c.seed = cfg.seed.wrapping_add(salt.wrapping_mul(0x9E3779B97F4A7C15));
    let part8 = sphere_bisect(g, points, &c);
    if k == 2 {
        for (l, &p) in labels.iter_mut().zip(&part8) {
            *l = p as u32;
        }
        return;
    }
    let part: Vec<u32> = part8.iter().map(|&p| p as u32).collect();
    let subs = mlgp_graph::split_by_part(g, &part, 2);
    for (side, sub) in subs.iter().enumerate() {
        let sub_pts: Vec<Point> = sub.orig.iter().map(|&v| points[v as usize]).collect();
        let sub_k = if side == 0 { k0 } else { k - k0 };
        let mut sub_labels = vec![0u32; sub.graph.n()];
        rec(
            &sub.graph,
            &sub_pts,
            sub_k,
            cfg,
            salt * 2 + side as u64,
            &mut sub_labels,
        );
        let offset = if side == 0 { 0 } else { k0 as u32 };
        for (i, &orig) in sub.orig.iter().enumerate() {
            labels[orig as usize] = offset + sub_labels[i];
        }
    }
}

fn random_unit(rng: &mut StdRng) -> [f64; 3] {
    loop {
        let v = [
            rng.random_range(-1.0..1.0),
            rng.random_range(-1.0..1.0),
            rng.random_range(-1.0..1.0),
        ];
        let norm2: f64 = v.iter().map(|x| x * x).sum();
        if norm2 > 1e-4 && norm2 <= 1.0 {
            let norm = norm2.sqrt();
            return [v[0] / norm, v[1] / norm, v[2] / norm];
        }
    }
}

/// Split at the weighted median of `values` (smaller half → part 0).
fn median_split(g: &CsrGraph, values: &[f64]) -> Vec<u8> {
    let n = g.n();
    let mut order: Vec<Vid> = (0..n as Vid).collect();
    order.sort_by(|&a, &b| {
        values[a as usize]
            .partial_cmp(&values[b as usize])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let total: Wgt = g.total_vwgt();
    let mut part = vec![1u8; n];
    let mut acc = 0;
    for &v in &order {
        if acc >= total / 2 {
            break;
        }
        part[v as usize] = 0;
        acc += g.vwgt()[v as usize];
    }
    part
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlgp_graph::generators::{grid2d, grid2d_coords, tri_mesh2d, tri_mesh2d_coords};
    use mlgp_part::{edge_cut_kway, imbalance};

    #[test]
    fn bisects_grid_reasonably() {
        let g = grid2d(16, 16);
        let pts = grid2d_coords(16, 16);
        let part = sphere_bisect(&g, &pts, &SphereConfig::default());
        let cut = edge_cut_bisection(&g, &part);
        // Any straight cut of a 16x16 grid achieves >= 16; random surfaces
        // with 30 trials should find something close.
        assert!((16..=30).contains(&cut), "cut {cut}");
        let w0 = part.iter().filter(|&&p| p == 0).count();
        assert!((120..=136).contains(&w0), "w0 {w0}");
    }

    #[test]
    fn more_trials_never_hurt() {
        let g = tri_mesh2d(20, 20, 4);
        let pts = tri_mesh2d_coords(20, 20, 4);
        let few = sphere_bisect(&g, &pts, &SphereConfig { trials: 2, seed: 9 });
        let many = sphere_bisect(
            &g,
            &pts,
            &SphereConfig {
                trials: 40,
                seed: 9,
            },
        );
        // Trials share the seed stream, so the 40-trial run sees the
        // 2-trial candidates plus 38 more.
        assert!(edge_cut_bisection(&g, &many) <= edge_cut_bisection(&g, &few));
    }

    #[test]
    fn kway_is_balanced_and_complete() {
        let g = grid2d(20, 20);
        let pts = grid2d_coords(20, 20);
        let part = sphere_kway(&g, &pts, 8, &SphereConfig::default());
        assert!(
            imbalance(&g, &part, 8) < 1.15,
            "{}",
            imbalance(&g, &part, 8)
        );
        assert_eq!(part.iter().map(|&p| p as usize).max().unwrap(), 7);
        assert!(edge_cut_kway(&g, &part) > 0);
    }

    #[test]
    fn deterministic() {
        let g = grid2d(12, 12);
        let pts = grid2d_coords(12, 12);
        let a = sphere_bisect(&g, &pts, &SphereConfig::default());
        let b = sphere_bisect(&g, &pts, &SphereConfig::default());
        assert_eq!(a, b);
    }
}
