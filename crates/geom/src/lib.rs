//! # mlgp-geom
//!
//! The geometric partitioning class the paper discusses in §1 (Heath-
//! Raghavan, Miller-Teng-Vavasis, Nour-Omid et al.): recursive coordinate
//! bisection, inertial bisection, and randomized geometric separators with
//! multiple trials. These algorithms require vertex coordinates — which is
//! exactly their limitation ("geometric graph partitioning algorithms have
//! limited applicability because often the geometric information is not
//! available"); the mesh-class generators in `mlgp-graph` provide
//! embeddings, the circuit/LP/network classes deliberately do not.
//!
//! ```
//! use mlgp_geom::rcb_partition;
//! use mlgp_graph::generators::{grid2d, grid2d_coords};
//! let g = grid2d(16, 4);
//! let part = rcb_partition(&grid2d_coords(16, 4), g.vwgt(), 2);
//! assert_eq!(mlgp_part::edge_cut_kway(&g, &part), 4); // cuts the short way
//! ```

pub mod inertial;
pub mod rcb;
pub mod sphere;

pub use inertial::inertial_partition;
pub use rcb::rcb_partition;
pub use sphere::{sphere_bisect, sphere_kway, SphereConfig};
