//! Small deterministic RNG helpers shared across the workspace.
//!
//! All randomized algorithms in the reproduction take explicit seeds (the
//! paper fixes its seed for all experiments, §4); these helpers keep the
//! sampling primitives in one place so every crate draws numbers the same
//! way.

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

/// The workspace-standard seeded RNG.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// In-place Fisher-Yates shuffle.
pub fn shuffle<T, R: Rng>(rng: &mut R, s: &mut [T]) {
    for i in (1..s.len()).rev() {
        let j = rng.random_range(0..=i);
        s.swap(i, j);
    }
}

/// A random permutation of `0..n` as a `Vec<u32>`.
pub fn random_order<R: Rng>(rng: &mut R, n: usize) -> Vec<u32> {
    let mut v: Vec<u32> = (0..n as u32).collect();
    shuffle(rng, &mut v);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = seeded(7);
        let mut v: Vec<u32> = (0..50).collect();
        shuffle(&mut rng, &mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn seeded_is_deterministic() {
        let a = random_order(&mut seeded(3), 20);
        let b = random_order(&mut seeded(3), 20);
        assert_eq!(a, b);
        let c = random_order(&mut seeded(4), 20);
        assert_ne!(a, c);
    }

    #[test]
    fn shuffle_handles_tiny_slices() {
        let mut rng = seeded(1);
        let mut empty: [u32; 0] = [];
        shuffle(&mut rng, &mut empty);
        let mut one = [9u32];
        shuffle(&mut rng, &mut one);
        assert_eq!(one, [9]);
    }
}
