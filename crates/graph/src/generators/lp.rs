//! Linear-programming constraint graphs (FINAN512 analogue).
//!
//! FINAN512 is a multistage stochastic financial optimization matrix: 512
//! dense diagonal blocks (scenario subproblems) coupled through a sparse
//! tree/ring of linking constraints. The paper singles out this class as one
//! where no geometry exists, so geometric partitioners cannot run at all.
//! We reproduce the structure directly: `nblocks` locally dense blocks, each
//! a small-world ring, chained in a global ring with sparse inter-block
//! couplings and a binary-tree overlay of linking vertices.

use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, Vid};
use crate::rng::seeded;
use rand::RngExt;

/// Hierarchical LP graph: `nblocks * block_size` vertices.
pub fn hierarchical_lp(nblocks: usize, block_size: usize, seed: u64) -> CsrGraph {
    assert!(nblocks >= 2 && block_size >= 4);
    let n = nblocks * block_size;
    let mut rng = seeded(seed);
    let mut b = GraphBuilder::with_capacity(n, 3 * n);
    let vid = |blk: usize, i: usize| (blk * block_size + i) as Vid;
    for blk in 0..nblocks {
        // Intra-block: ring + random chords => locally well-connected
        // subproblem (degree ~4.5 inside the block).
        for i in 0..block_size {
            b.add_edge(vid(blk, i), vid(blk, (i + 1) % block_size));
            if rng.random_range(0..100) < 60 {
                let j = rng.random_range(0..block_size);
                if j != i {
                    b.add_edge(vid(blk, i), vid(blk, j));
                }
            }
        }
        // Ring coupling to next block through a handful of linking columns.
        let next = (blk + 1) % nblocks;
        for link in 0..3.min(block_size) {
            b.add_edge(vid(blk, link), vid(next, link));
        }
    }
    // Binary-tree overlay over block representatives: stage-linking
    // constraints of the multistage formulation.
    let mut level: Vec<usize> = (0..nblocks).collect();
    while level.len() > 1 {
        let mut up = Vec::with_capacity(level.len() / 2);
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                b.add_edge(vid(pair[0], block_size - 1), vid(pair[1], block_size - 1));
            }
            up.push(pair[0]);
        }
        level = up;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::is_connected;

    #[test]
    fn lp_structure() {
        let g = hierarchical_lp(16, 32, 4);
        assert_eq!(g.n(), 512);
        assert!(is_connected(&g));
        assert!(g.validate().is_ok());
        // Sparse overall, like FINAN512 (nnz/n ~ 4.5).
        assert!(
            g.avg_degree() > 3.0 && g.avg_degree() < 8.0,
            "{}",
            g.avg_degree()
        );
    }

    #[test]
    fn lp_deterministic() {
        assert_eq!(hierarchical_lp(8, 16, 1), hierarchical_lp(8, 16, 1));
        assert_ne!(hierarchical_lp(8, 16, 1), hierarchical_lp(8, 16, 2));
    }
}
