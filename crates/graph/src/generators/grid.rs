//! Regular grid and stencil graphs.
//!
//! These model the finite-difference / finite-element discretizations that
//! dominate the paper's test suite: 5-point and 9-point 2D grids (CFD,
//! shells), 7-point and 27-point 3D grids (solid stiffness matrices), with
//! optional wrap-around in the first dimension for cylindrical geometries
//! (CYLINDER93, SHELL93).

use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, Vid};

#[inline]
fn idx2(nx: usize, x: usize, y: usize) -> Vid {
    (y * nx + x) as Vid
}

#[inline]
fn idx3(nx: usize, ny: usize, x: usize, y: usize, z: usize) -> Vid {
    ((z * ny + y) * nx + x) as Vid
}

/// 2D grid with the 5-point stencil (`nx * ny` vertices).
pub fn grid2d(nx: usize, ny: usize) -> CsrGraph {
    assert!(nx >= 1 && ny >= 1);
    let mut b = GraphBuilder::with_capacity(nx * ny, 2 * nx * ny);
    for y in 0..ny {
        for x in 0..nx {
            if x + 1 < nx {
                b.add_edge(idx2(nx, x, y), idx2(nx, x + 1, y));
            }
            if y + 1 < ny {
                b.add_edge(idx2(nx, x, y), idx2(nx, x, y + 1));
            }
        }
    }
    b.build()
}

/// 2D grid with the 9-point stencil (axis + diagonal neighbors). With
/// `wrap_x`, the x dimension is periodic, producing a cylindrical shell
/// surface mesh.
pub fn grid2d_9pt(nx: usize, ny: usize, wrap_x: bool) -> CsrGraph {
    assert!(nx >= 3 && ny >= 2, "9-point grid needs nx>=3, ny>=2");
    let mut b = GraphBuilder::with_capacity(nx * ny, 4 * nx * ny);
    let right = |x: usize| if wrap_x { (x + 1) % nx } else { x + 1 };
    for y in 0..ny {
        for x in 0..nx {
            let has_right = wrap_x || x + 1 < nx;
            if has_right {
                b.add_edge(idx2(nx, x, y), idx2(nx, right(x), y));
            }
            if y + 1 < ny {
                b.add_edge(idx2(nx, x, y), idx2(nx, x, y + 1));
                if has_right {
                    b.add_edge(idx2(nx, x, y), idx2(nx, right(x), y + 1));
                    b.add_edge(idx2(nx, right(x), y), idx2(nx, x, y + 1));
                }
            }
        }
    }
    b.build()
}

/// 3D grid with the 7-point stencil.
pub fn grid3d(nx: usize, ny: usize, nz: usize) -> CsrGraph {
    assert!(nx >= 1 && ny >= 1 && nz >= 1);
    let n = nx * ny * nz;
    let mut b = GraphBuilder::with_capacity(n, 3 * n);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let v = idx3(nx, ny, x, y, z);
                if x + 1 < nx {
                    b.add_edge(v, idx3(nx, ny, x + 1, y, z));
                }
                if y + 1 < ny {
                    b.add_edge(v, idx3(nx, ny, x, y + 1, z));
                }
                if z + 1 < nz {
                    b.add_edge(v, idx3(nx, ny, x, y, z + 1));
                }
            }
        }
    }
    b.build()
}

/// 3D grid with the full 27-point stencil: every vertex connects to all
/// lattice neighbors within Chebyshev distance 1. This reproduces the degree
/// structure of hexahedral-element stiffness matrices (BCSSTK30-33, CANT,
/// INPRO1, TROLL): interior degree 26, nnz/n ≈ 27.
pub fn stiffness3d(nx: usize, ny: usize, nz: usize) -> CsrGraph {
    stiffness3d_opt(nx, ny, nz, false)
}

/// [`stiffness3d`] with optional periodic wrap in x (cylindrical solids such
/// as CYLINDER93 and the SHELL93 shell).
pub fn stiffness3d_wrapped(nx: usize, ny: usize, nz: usize) -> CsrGraph {
    stiffness3d_opt(nx, ny, nz, true)
}

fn stiffness3d_opt(nx: usize, ny: usize, nz: usize, wrap_x: bool) -> CsrGraph {
    assert!(nx >= 1 && ny >= 1 && nz >= 1);
    if wrap_x {
        assert!(nx >= 3, "wrapped stencil needs nx >= 3");
    }
    let n = nx * ny * nz;
    let mut b = GraphBuilder::with_capacity(n, 13 * n);
    // Enumerate the 13 forward half-stencil offsets so each edge is added
    // once: (dx,dy,dz) lexicographically positive.
    let offsets: Vec<(i64, i64, i64)> = {
        let mut o = Vec::new();
        for dz in 0..=1i64 {
            for dy in -1..=1i64 {
                for dx in -1..=1i64 {
                    if (dz, dy, dx) > (0, 0, 0) {
                        o.push((dx, dy, dz));
                    }
                }
            }
        }
        o
    };
    debug_assert_eq!(offsets.len(), 13);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let v = idx3(nx, ny, x, y, z);
                for &(dx, dy, dz) in &offsets {
                    let xx = x as i64 + dx;
                    let xx = if wrap_x {
                        xx.rem_euclid(nx as i64)
                    } else if (0..nx as i64).contains(&xx) {
                        xx
                    } else {
                        continue;
                    };
                    let yy = y as i64 + dy;
                    let zz = z as i64 + dz;
                    if !(0..ny as i64).contains(&yy) || !(0..nz as i64).contains(&zz) {
                        continue;
                    }
                    b.add_edge(v, idx3(nx, ny, xx as usize, yy as usize, zz as usize));
                }
            }
        }
    }
    b.build()
}

/// Graded L-shaped 5-point mesh (LSHP-style): an `n x n` grid with the
/// upper-right quadrant removed. (The grading of the original mesh changes
/// vertex coordinates, not topology; partitioners see only the topology.)
pub fn lshape(n: usize) -> CsrGraph {
    assert!(n >= 2 && n.is_multiple_of(2), "lshape needs an even n >= 2");
    let half = n / 2;
    let inside = |x: usize, y: usize| !(x >= half && y >= half);
    // Compact ids for the kept cells.
    let mut id = vec![Vid::MAX; n * n];
    let mut count = 0 as Vid;
    for y in 0..n {
        for x in 0..n {
            if inside(x, y) {
                id[y * n + x] = count;
                count += 1;
            }
        }
    }
    let mut b = GraphBuilder::with_capacity(count as usize, 2 * count as usize);
    for y in 0..n {
        for x in 0..n {
            if !inside(x, y) {
                continue;
            }
            let v = id[y * n + x];
            if x + 1 < n && inside(x + 1, y) {
                b.add_edge(v, id[y * n + x + 1]);
            }
            if y + 1 < n && inside(x, y + 1) {
                b.add_edge(v, id[(y + 1) * n + x]);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::is_connected;

    #[test]
    fn grid2d_counts() {
        let g = grid2d(4, 3);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 3 * 3 + 2 * 4); // horizontal + vertical
        assert!(is_connected(&g));
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    fn grid2d_degenerate_path() {
        let g = grid2d(5, 1);
        assert_eq!(g.m(), 4);
    }

    #[test]
    fn grid9pt_interior_degree() {
        let g = grid2d_9pt(5, 5, false);
        assert_eq!(g.n(), 25);
        // interior vertex (2,2) has 8 neighbors
        assert_eq!(g.degree(12), 8);
        assert!(is_connected(&g));
    }

    #[test]
    fn grid9pt_wrapped_has_no_x_boundary() {
        let g = grid2d_9pt(6, 4, true);
        // every vertex in an interior row has degree 8
        for x in 0..6u32 {
            assert_eq!(g.degree(6 + x), 8);
        }
        assert!(is_connected(&g));
        assert!(g.validate().is_ok());
    }

    #[test]
    fn grid3d_counts() {
        let g = grid3d(3, 3, 3);
        assert_eq!(g.n(), 27);
        assert_eq!(g.m(), 3 * (2 * 9)); // 2*3*3 per direction * 3 directions
        assert_eq!(g.degree(13), 6); // center
        assert!(is_connected(&g));
    }

    #[test]
    fn stiffness_interior_degree_26() {
        let g = stiffness3d(4, 4, 4);
        assert_eq!(g.n(), 64);
        // interior vertex (1,1,1) = 21
        assert_eq!(g.degree(21), 26);
        assert!(is_connected(&g));
        assert!(g.validate().is_ok());
    }

    #[test]
    fn stiffness_wrapped_validates() {
        let g = stiffness3d_wrapped(6, 3, 3);
        assert!(g.validate().is_ok());
        assert!(is_connected(&g));
        // interior-in-y-and-z vertices have full degree regardless of x
        let v = 6 + 6 * 3; // (0,1,1)
        assert_eq!(g.degree(v as u32), 26);
    }

    #[test]
    fn lshape_counts() {
        let g = lshape(4);
        assert_eq!(g.n(), 12); // 16 - 4
        assert!(is_connected(&g));
        assert!(g.validate().is_ok());
    }

    #[test]
    fn lshape_bigger() {
        let g = lshape(84);
        assert_eq!(g.n(), 84 * 84 * 3 / 4);
        assert!(is_connected(&g));
    }
}
