//! Network-class graphs: power grids, road maps, and power-law circuits.
//!
//! These cover the paper's non-mesh workloads: BCSPWR10 (Eastern US power
//! network, degree ≈ 3, tree-like), MAP (highway network, near-planar,
//! degree ≈ 3.5), and MEMPLUS / S38584.1 (VLSI circuits with power-law
//! degree distributions, the graphs that motivate the HCM matching scheme).

use crate::builder::GraphBuilder;
use crate::components::connect_components;
use crate::csr::{CsrGraph, Vid};
use crate::rng::seeded;
use rand::RngExt;

/// Power-grid-like graph: a locality-biased random tree plus a sprinkling of
/// chord edges. Degree ≈ 2-3, long stringy structure with low connectivity,
/// like BCSPWR10.
pub fn powergrid(n: usize, seed: u64) -> CsrGraph {
    assert!(n >= 2);
    let mut rng = seeded(seed);
    let mut b = GraphBuilder::with_capacity(n, n + n / 4);
    // Locality-biased random tree: parent drawn from a recent window, which
    // produces the long chains characteristic of transmission networks.
    for v in 1..n {
        let window = 32.min(v);
        let parent = v - 1 - rng.random_range(0..window);
        b.add_edge(v as Vid, parent as Vid);
    }
    // Sparse chords (~12% of n) with local bias.
    let chords = n / 8;
    for _ in 0..chords {
        let u = rng.random_range(0..n);
        let span = 1 + rng.random_range(1..256.min(n));
        let v = (u + span) % n;
        if u != v {
            b.add_edge(u as Vid, v as Vid);
        }
    }
    b.build()
}

/// Road-network-like graph (MAP analogue): a 2D grid with a random fraction
/// of edges deleted and occasional diagonal shortcuts, reconnected if the
/// deletions disconnect it. Near-planar, degree ≈ 3.5.
pub fn roadnet(nx: usize, ny: usize, seed: u64) -> CsrGraph {
    assert!(nx >= 2 && ny >= 2);
    let mut rng = seeded(seed);
    let idx = |x: usize, y: usize| (y * nx + x) as Vid;
    let mut b = GraphBuilder::with_capacity(nx * ny, 2 * nx * ny);
    for y in 0..ny {
        for x in 0..nx {
            // Keep ~85% of grid edges: roads have gaps.
            if x + 1 < nx && rng.random_range(0..100) < 85 {
                b.add_edge(idx(x, y), idx(x + 1, y));
            }
            if y + 1 < ny && rng.random_range(0..100) < 85 {
                b.add_edge(idx(x, y), idx(x, y + 1));
            }
            // Occasional diagonal shortcut (~6% of cells).
            if x + 1 < nx && y + 1 < ny && rng.random_range(0..100) < 6 {
                b.add_edge(idx(x, y), idx(x + 1, y + 1));
            }
        }
    }
    connect_components(&b.build())
}

/// Power-law circuit graph via preferential attachment (Barabási-Albert):
/// each new vertex attaches to `m_per` existing vertices chosen
/// proportionally to degree. Models MEMPLUS / S38584.1 — a few very
/// high-degree nets and a heavy tail of low-degree cells.
pub fn powerlaw(n: usize, m_per: usize, seed: u64) -> CsrGraph {
    assert!(n > m_per && m_per >= 1);
    let mut rng = seeded(seed);
    let mut b = GraphBuilder::with_capacity(n, n * m_per);
    // `targets` holds one entry per edge endpoint, so sampling uniformly
    // from it is degree-proportional sampling.
    let mut endpoints: Vec<Vid> = Vec::with_capacity(2 * n * m_per);
    // Seed clique on the first m_per+1 vertices.
    for u in 0..=(m_per as Vid) {
        for v in 0..u {
            b.add_edge(u, v);
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for v in (m_per + 1)..n {
        let mut chosen: Vec<Vid> = Vec::with_capacity(m_per);
        let mut guard = 0;
        while chosen.len() < m_per && guard < 50 {
            let t = endpoints[rng.random_range(0..endpoints.len())];
            if t != v as Vid && !chosen.contains(&t) {
                chosen.push(t);
            }
            guard += 1;
        }
        for &t in &chosen {
            b.add_edge(v as Vid, t);
            endpoints.push(v as Vid);
            endpoints.push(t);
        }
    }
    connect_components(&b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::is_connected;

    #[test]
    fn powergrid_is_sparse_and_connected() {
        let g = powergrid(2000, 11);
        assert_eq!(g.n(), 2000);
        assert!(is_connected(&g));
        assert!(g.avg_degree() < 3.5, "{}", g.avg_degree());
        assert!(g.validate().is_ok());
    }

    #[test]
    fn roadnet_is_connected_and_sparse() {
        let g = roadnet(40, 40, 5);
        assert_eq!(g.n(), 1600);
        assert!(is_connected(&g));
        assert!(
            g.avg_degree() > 2.0 && g.avg_degree() < 4.5,
            "{}",
            g.avg_degree()
        );
    }

    #[test]
    fn powerlaw_has_hubs() {
        let g = powerlaw(2000, 3, 9);
        assert!(is_connected(&g));
        // Preferential attachment must create hubs far above the mean.
        assert!(
            g.max_degree() > 8 * g.avg_degree() as usize,
            "max {} avg {}",
            g.max_degree(),
            g.avg_degree()
        );
    }

    #[test]
    fn generators_deterministic() {
        assert_eq!(powergrid(500, 3), powergrid(500, 3));
        assert_eq!(roadnet(20, 20, 3), roadnet(20, 20, 3));
        assert_eq!(powerlaw(500, 2, 3), powerlaw(500, 2, 3));
    }
}
