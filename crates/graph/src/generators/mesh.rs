//! Irregular FEM-style meshes.
//!
//! Triangulated 2D meshes (4ELT-style) and tetrahedral-like 3D meshes
//! (COPTER2 / BRACK2 / ROTOR / WAVE-style) are modeled as jittered grids:
//! the axis edges of a grid plus randomly chosen cell diagonals. This yields
//! the irregular, locally varying degree distribution (≈6 in 2D, ≈10-14 in
//! 3D) of unstructured simplicial meshes while staying deterministic and
//! planar/local — exactly the properties the multilevel schemes exploit.

use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, Vid};
use crate::rng::seeded;
use rand::RngExt;

#[inline]
fn idx2(nx: usize, x: usize, y: usize) -> Vid {
    (y * nx + x) as Vid
}

#[inline]
fn idx3(nx: usize, ny: usize, x: usize, y: usize, z: usize) -> Vid {
    ((z * ny + y) * nx + x) as Vid
}

/// Irregular 2D triangulation: grid edges plus one random diagonal per cell.
/// Average degree ≈ 6, like a Delaunay triangulation of scattered points.
pub fn tri_mesh2d(nx: usize, ny: usize, seed: u64) -> CsrGraph {
    assert!(nx >= 2 && ny >= 2);
    let mut rng = seeded(seed);
    let mut b = GraphBuilder::with_capacity(nx * ny, 3 * nx * ny);
    for y in 0..ny {
        for x in 0..nx {
            if x + 1 < nx {
                b.add_edge(idx2(nx, x, y), idx2(nx, x + 1, y));
            }
            if y + 1 < ny {
                b.add_edge(idx2(nx, x, y), idx2(nx, x, y + 1));
            }
            if x + 1 < nx && y + 1 < ny {
                // Triangulate the cell with one of the two diagonals.
                if rng.random_range(0..2) == 0 {
                    b.add_edge(idx2(nx, x, y), idx2(nx, x + 1, y + 1));
                } else {
                    b.add_edge(idx2(nx, x + 1, y), idx2(nx, x, y + 1));
                }
            }
        }
    }
    b.build()
}

/// Irregular tetrahedral-like 3D mesh: 7-point grid edges plus, per cell, a
/// random body diagonal and a random subset of face diagonals. Average
/// degree ≈ 11, matching 3D tetrahedral FEM meshes.
pub fn tet_mesh3d(nx: usize, ny: usize, nz: usize, seed: u64) -> CsrGraph {
    assert!(nx >= 2 && ny >= 2 && nz >= 2);
    let mut rng = seeded(seed);
    let n = nx * ny * nz;
    let mut b = GraphBuilder::with_capacity(n, 6 * n);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let v = idx3(nx, ny, x, y, z);
                if x + 1 < nx {
                    b.add_edge(v, idx3(nx, ny, x + 1, y, z));
                }
                if y + 1 < ny {
                    b.add_edge(v, idx3(nx, ny, x, y + 1, z));
                }
                if z + 1 < nz {
                    b.add_edge(v, idx3(nx, ny, x, y, z + 1));
                }
                if x + 1 < nx && y + 1 < ny && z + 1 < nz {
                    // One of four body diagonals of the cell.
                    let corners = [
                        (idx3(nx, ny, x, y, z), idx3(nx, ny, x + 1, y + 1, z + 1)),
                        (idx3(nx, ny, x + 1, y, z), idx3(nx, ny, x, y + 1, z + 1)),
                        (idx3(nx, ny, x, y + 1, z), idx3(nx, ny, x + 1, y, z + 1)),
                        (idx3(nx, ny, x, y, z + 1), idx3(nx, ny, x + 1, y + 1, z)),
                    ];
                    let (a, c) = corners[rng.random_range(0..4)];
                    b.add_edge(a, c);
                    // Two of the three "lower" face diagonals, randomly
                    // oriented, emulating the tetrahedralization of the cell.
                    if rng.random_range(0..2) == 0 {
                        b.add_edge(idx3(nx, ny, x, y, z), idx3(nx, ny, x + 1, y + 1, z));
                    } else {
                        b.add_edge(idx3(nx, ny, x + 1, y, z), idx3(nx, ny, x, y + 1, z));
                    }
                    if rng.random_range(0..2) == 0 {
                        b.add_edge(idx3(nx, ny, x, y, z), idx3(nx, ny, x + 1, y, z + 1));
                    } else {
                        b.add_edge(idx3(nx, ny, x + 1, y, z), idx3(nx, ny, x, y, z + 1));
                    }
                    if rng.random_range(0..2) == 0 {
                        b.add_edge(idx3(nx, ny, x, y, z), idx3(nx, ny, x, y + 1, z + 1));
                    } else {
                        b.add_edge(idx3(nx, ny, x, y + 1, z), idx3(nx, ny, x, y, z + 1));
                    }
                }
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::is_connected;

    #[test]
    fn tri_mesh_degree_and_connectivity() {
        let g = tri_mesh2d(20, 20, 1);
        assert_eq!(g.n(), 400);
        assert!(is_connected(&g));
        assert!(g.validate().is_ok());
        // avg degree of a triangulation tends to 6 from below
        assert!(
            g.avg_degree() > 4.5 && g.avg_degree() < 6.0,
            "{}",
            g.avg_degree()
        );
    }

    #[test]
    fn tri_mesh_deterministic() {
        assert_eq!(tri_mesh2d(10, 10, 7), tri_mesh2d(10, 10, 7));
        assert_ne!(tri_mesh2d(10, 10, 7), tri_mesh2d(10, 10, 8));
    }

    #[test]
    fn tet_mesh_degree_and_connectivity() {
        let g = tet_mesh3d(8, 8, 8, 2);
        assert_eq!(g.n(), 512);
        assert!(is_connected(&g));
        assert!(g.validate().is_ok());
        assert!(
            g.avg_degree() > 8.0 && g.avg_degree() < 14.0,
            "{}",
            g.avg_degree()
        );
    }

    #[test]
    fn tet_mesh_deterministic() {
        assert_eq!(tet_mesh3d(4, 4, 4, 3), tet_mesh3d(4, 4, 4, 3));
    }
}
