//! Coordinate embeddings for the mesh generators.
//!
//! Geometric partitioning algorithms (§1 of the paper) need vertex
//! coordinates. The mesh-class generators are grid-derived, so their
//! natural embeddings are the (jittered) lattice positions produced here;
//! the jitter is seeded so embeddings are deterministic. Network- and
//! circuit-class graphs (power-law, LP) deliberately have *no* embedding —
//! that is exactly the limitation of geometric methods the paper points
//! out.

use crate::rng::seeded;
use rand::RngExt;

/// A 3D point (z = 0 for planar embeddings).
pub type Point = [f64; 3];

/// Lattice coordinates for [`super::grid2d`] / [`super::grid2d_9pt`]
/// (row-major, matching vertex ids).
pub fn grid2d_coords(nx: usize, ny: usize) -> Vec<Point> {
    let mut pts = Vec::with_capacity(nx * ny);
    for y in 0..ny {
        for x in 0..nx {
            pts.push([x as f64, y as f64, 0.0]);
        }
    }
    pts
}

/// Lattice coordinates for [`super::grid3d`] / [`super::stiffness3d`].
pub fn grid3d_coords(nx: usize, ny: usize, nz: usize) -> Vec<Point> {
    let mut pts = Vec::with_capacity(nx * ny * nz);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                pts.push([x as f64, y as f64, z as f64]);
            }
        }
    }
    pts
}

/// Jittered lattice for [`super::tri_mesh2d`]: lattice positions plus a
/// seeded perturbation of up to ±0.35 per axis (keeps the triangulation
/// roughly Delaunay-like without flipping cells).
pub fn tri_mesh2d_coords(nx: usize, ny: usize, seed: u64) -> Vec<Point> {
    let mut rng = seeded(seed ^ 0xc003d5);
    let mut pts = Vec::with_capacity(nx * ny);
    for y in 0..ny {
        for x in 0..nx {
            pts.push([
                x as f64 + rng.random_range(-0.35..0.35),
                y as f64 + rng.random_range(-0.35..0.35),
                0.0,
            ]);
        }
    }
    pts
}

/// Jittered lattice for [`super::tet_mesh3d`].
pub fn tet_mesh3d_coords(nx: usize, ny: usize, nz: usize, seed: u64) -> Vec<Point> {
    let mut rng = seeded(seed ^ 0xc003d5);
    let mut pts = Vec::with_capacity(nx * ny * nz);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                pts.push([
                    x as f64 + rng.random_range(-0.3..0.3),
                    y as f64 + rng.random_range(-0.3..0.3),
                    z as f64 + rng.random_range(-0.3..0.3),
                ]);
            }
        }
    }
    pts
}

/// Coordinates for [`super::lshape`]: positions of the kept lattice points,
/// in the generator's vertex order.
pub fn lshape_coords(n: usize) -> Vec<Point> {
    let half = n / 2;
    let mut pts = Vec::new();
    for y in 0..n {
        for x in 0..n {
            if !(x >= half && y >= half) {
                pts.push([x as f64, y as f64, 0.0]);
            }
        }
    }
    pts
}

/// Coordinates for [`super::roadnet`]: the underlying lattice.
pub fn roadnet_coords(nx: usize, ny: usize) -> Vec<Point> {
    grid2d_coords(nx, ny)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{grid2d, lshape, tet_mesh3d, tri_mesh2d};

    #[test]
    fn counts_match_generators() {
        assert_eq!(grid2d_coords(7, 5).len(), grid2d(7, 5).n());
        assert_eq!(lshape_coords(8).len(), lshape(8).n());
        assert_eq!(tri_mesh2d_coords(6, 9, 3).len(), tri_mesh2d(6, 9, 3).n());
        assert_eq!(
            tet_mesh3d_coords(4, 5, 6, 2).len(),
            tet_mesh3d(4, 5, 6, 2).n()
        );
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let a = tri_mesh2d_coords(10, 10, 7);
        let b = tri_mesh2d_coords(10, 10, 7);
        assert_eq!(a, b);
        for (i, p) in a.iter().enumerate() {
            let (x, y) = ((i % 10) as f64, (i / 10) as f64);
            assert!((p[0] - x).abs() < 0.5 && (p[1] - y).abs() < 0.5);
        }
        let c = tri_mesh2d_coords(10, 10, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn grid3d_ordering_matches_index_scheme() {
        let pts = grid3d_coords(3, 4, 5);
        // vertex (x=2, y=1, z=3) has id (3*4 + 1)*3 + 2
        let id = (3 * 4 + 1) * 3 + 2;
        assert_eq!(pts[id], [2.0, 1.0, 3.0]);
    }
}
