//! Deterministic graph generators standing in for the paper's test matrices.
//!
//! The ICPP'95 evaluation draws on finite-element, CFD, VLSI, power-network,
//! linear-programming and road-map graphs (Table 1). Those specific matrices
//! are not redistributable here, so each class is synthesized with matching
//! size and degree structure; [`suite`] assembles the full 24-entry stand-in
//! suite. All generators are pure functions of their parameters and seed.

pub mod coords;
pub mod grid;
pub mod lp;
pub mod mesh;
pub mod network;
pub mod suite;

pub use coords::{
    grid2d_coords, grid3d_coords, lshape_coords, roadnet_coords, tet_mesh3d_coords,
    tri_mesh2d_coords, Point,
};
pub use grid::{grid2d, grid2d_9pt, grid3d, lshape, stiffness3d, stiffness3d_wrapped};
pub use lp::hierarchical_lp;
pub use mesh::{tet_mesh3d, tri_mesh2d};
pub use network::{powergrid, powerlaw, roadnet};
pub use suite::{entry, fig5_rows, figure_rows, suite, table_rows, SuiteEntry};
