//! The workload suite: synthetic stand-ins for every matrix in Table 1 of
//! the paper.
//!
//! Each entry names its paper analogue, records the paper's order/nonzero
//! counts for reporting, and generates a deterministic graph of the same
//! class and size. See DESIGN.md §2 for the substitution rationale. Entries
//! support down-scaling (`generate_scaled`) so the full table/figure harness
//! can also be smoke-tested quickly.

use super::{grid, lp, mesh, network};
use crate::csr::CsrGraph;

/// Which generator an entry uses, with its full-scale parameters.
#[derive(Clone, Copy, Debug)]
enum Kind {
    /// 2D graded L-shape (side length).
    LShape(usize),
    /// 27-point 3D stiffness grid.
    Stiffness(usize, usize, usize),
    /// 27-point 3D stiffness grid, x-periodic (cylinders/shells).
    StiffnessWrapped(usize, usize, usize),
    /// Power transmission network (n).
    PowerGrid(usize),
    /// Irregular 2D triangulation.
    Tri2d(usize, usize),
    /// Irregular 3D tetrahedral-like mesh.
    Tet3d(usize, usize, usize),
    /// Preferential-attachment circuit (n, edges per vertex).
    PowerLaw(usize, usize),
    /// Hierarchical LP (blocks, block size).
    Lp(usize, usize),
    /// 9-point 2D grid (CFD).
    Grid9(usize, usize),
    /// Road network grid.
    Road(usize, usize),
}

/// One row of the workload suite (≙ one row of the paper's Table 1).
#[derive(Clone, Copy, Debug)]
pub struct SuiteEntry {
    /// Short key used throughout the paper's tables (e.g. `BC31`).
    pub key: &'static str,
    /// Full matrix name in the paper (e.g. `BCSSTK31`).
    pub paper_name: &'static str,
    /// The paper's description column.
    pub description: &'static str,
    /// Matrix order reported in Table 1.
    pub paper_order: usize,
    /// Nonzero count reported in Table 1.
    pub paper_nonzeros: usize,
    kind: Kind,
    seed: u64,
}

impl SuiteEntry {
    /// Generate the full-scale graph for this entry.
    pub fn generate(&self) -> CsrGraph {
        self.generate_scaled(1.0)
    }

    /// Generate a linearly down-scaled instance: the vertex count is
    /// approximately `scale * paper_order` (dimensions shrink by the
    /// appropriate root). `scale` is clamped so every generator stays above
    /// its minimum size.
    pub fn generate_scaled(&self, scale: f64) -> CsrGraph {
        let s1 = scale.max(1e-4);
        let s2 = s1.sqrt();
        let s3 = s1.cbrt();
        let d2 = |v: usize| ((v as f64 * s2).round() as usize).max(4);
        let d3 = |v: usize| ((v as f64 * s3).round() as usize).max(3);
        let d1 = |v: usize| ((v as f64 * s1).round() as usize).max(16);
        match self.kind {
            Kind::LShape(n) => grid::lshape((d2(n) / 2 * 2).max(4)),
            Kind::Stiffness(x, y, z) => grid::stiffness3d(d3(x), d3(y), d3(z)),
            Kind::StiffnessWrapped(x, y, z) if z <= 4 => {
                // Thin shell (SHELL93): scale the surface dimensions only,
                // keeping the through-thickness layer count.
                grid::stiffness3d_wrapped(d2(x).max(3), d2(y), z)
            }
            Kind::StiffnessWrapped(x, y, z) => {
                grid::stiffness3d_wrapped(d3(x).max(3), d3(y), d3(z))
            }
            Kind::PowerGrid(n) => network::powergrid(d1(n), self.seed),
            Kind::Tri2d(x, y) => mesh::tri_mesh2d(d2(x), d2(y), self.seed),
            Kind::Tet3d(x, y, z) => mesh::tet_mesh3d(d3(x), d3(y), d3(z), self.seed),
            Kind::PowerLaw(n, m) => network::powerlaw(d1(n), m, self.seed),
            Kind::Lp(blocks, size) => {
                lp::hierarchical_lp(d1(blocks).max(2), size.max(4), self.seed)
            }
            Kind::Grid9(x, y) => grid::grid2d_9pt(d2(x), d2(y), false),
            Kind::Road(x, y) => network::roadnet(d2(x), d2(y), self.seed),
        }
    }
}

/// The full 24-entry suite mirroring Table 1, sorted by key.
pub fn suite() -> &'static [SuiteEntry] {
    const S: &[SuiteEntry] = &[
        SuiteEntry {
            key: "4ELT",
            paper_name: "4ELT",
            description: "2D finite element mesh",
            paper_order: 15606,
            paper_nonzeros: 45878,
            kind: Kind::Tri2d(125, 125),
            seed: 0x4e17,
        },
        SuiteEntry {
            key: "BC28",
            paper_name: "BCSSTK28",
            description: "solid element model",
            paper_order: 4410,
            paper_nonzeros: 107307,
            kind: Kind::Stiffness(17, 16, 16),
            seed: 28,
        },
        SuiteEntry {
            key: "BC29",
            paper_name: "BCSSTK29",
            description: "3D stiffness matrix",
            paper_order: 13992,
            paper_nonzeros: 302748,
            kind: Kind::Stiffness(24, 24, 24),
            seed: 29,
        },
        SuiteEntry {
            key: "BC30",
            paper_name: "BCSSTK30",
            description: "3D stiffness matrix",
            paper_order: 28294,
            paper_nonzeros: 1007284,
            kind: Kind::Stiffness(31, 31, 30),
            seed: 30,
        },
        SuiteEntry {
            key: "BC31",
            paper_name: "BCSSTK31",
            description: "3D stiffness matrix",
            paper_order: 35588,
            paper_nonzeros: 572914,
            kind: Kind::Stiffness(33, 33, 33),
            seed: 31,
        },
        SuiteEntry {
            key: "BC32",
            paper_name: "BCSSTK32",
            description: "3D stiffness matrix",
            paper_order: 44609,
            paper_nonzeros: 985046,
            kind: Kind::Stiffness(36, 35, 35),
            seed: 32,
        },
        SuiteEntry {
            key: "BC33",
            paper_name: "BCSSTK33",
            description: "3D stiffness matrix",
            paper_order: 8738,
            paper_nonzeros: 291583,
            kind: Kind::Stiffness(21, 21, 20),
            seed: 33,
        },
        SuiteEntry {
            key: "BRCK",
            paper_name: "BRACK2",
            description: "3D finite element mesh",
            paper_order: 62631,
            paper_nonzeros: 366559,
            kind: Kind::Tet3d(40, 40, 39),
            seed: 0xb2,
        },
        SuiteEntry {
            key: "BSP10",
            paper_name: "BCSPWR10",
            description: "Eastern US power network",
            paper_order: 5300,
            paper_nonzeros: 8271,
            kind: Kind::PowerGrid(5300),
            seed: 10,
        },
        SuiteEntry {
            key: "CANT",
            paper_name: "CANT",
            description: "3D stiffness matrix",
            paper_order: 54195,
            paper_nonzeros: 1960797,
            kind: Kind::Stiffness(38, 38, 38),
            seed: 0xca,
        },
        SuiteEntry {
            key: "COPT",
            paper_name: "COPTER2",
            description: "3D finite element mesh",
            paper_order: 55476,
            paper_nonzeros: 352238,
            kind: Kind::Tet3d(38, 38, 38),
            seed: 0xc0,
        },
        SuiteEntry {
            key: "CY93",
            paper_name: "CYLINDER93",
            description: "3D stiffness matrix",
            paper_order: 45594,
            paper_nonzeros: 1786726,
            kind: Kind::StiffnessWrapped(150, 19, 16),
            seed: 93,
        },
        SuiteEntry {
            key: "FINC",
            paper_name: "FINAN512",
            description: "linear programming",
            paper_order: 74752,
            paper_nonzeros: 335872,
            kind: Kind::Lp(512, 146),
            seed: 512,
        },
        SuiteEntry {
            key: "INPR",
            paper_name: "INPRO1",
            description: "3D stiffness matrix",
            paper_order: 46949,
            paper_nonzeros: 1117809,
            kind: Kind::Stiffness(36, 36, 36),
            seed: 0x1a,
        },
        SuiteEntry {
            key: "LHR",
            paper_name: "LHR71",
            description: "3D coefficient matrix",
            paper_order: 70304,
            paper_nonzeros: 1528092,
            kind: Kind::Tet3d(41, 41, 42),
            seed: 71,
        },
        SuiteEntry {
            key: "LS34",
            paper_name: "LSHP3466",
            description: "graded L-shape pattern",
            paper_order: 3466,
            paper_nonzeros: 10215,
            kind: Kind::LShape(68),
            seed: 34,
        },
        SuiteEntry {
            key: "MAP",
            paper_name: "MAP",
            description: "highway network",
            paper_order: 267241,
            paper_nonzeros: 937103,
            kind: Kind::Road(517, 517),
            seed: 0x3a9,
        },
        SuiteEntry {
            key: "MEM",
            paper_name: "MEMPLUS",
            description: "memory circuit",
            paper_order: 17758,
            paper_nonzeros: 126150,
            kind: Kind::PowerLaw(17758, 3),
            seed: 0x3e3,
        },
        SuiteEntry {
            key: "ROTR",
            paper_name: "ROTOR",
            description: "3D finite element mesh",
            paper_order: 99617,
            paper_nonzeros: 662431,
            kind: Kind::Tet3d(47, 46, 46),
            seed: 0x40,
        },
        SuiteEntry {
            key: "S38",
            paper_name: "S38584.1",
            description: "sequential circuit",
            paper_order: 22143,
            paper_nonzeros: 93359,
            kind: Kind::PowerLaw(22143, 2),
            seed: 0x385,
        },
        SuiteEntry {
            key: "SHEL",
            paper_name: "SHELL93",
            description: "3D stiffness matrix",
            paper_order: 181200,
            paper_nonzeros: 2313765,
            kind: Kind::StiffnessWrapped(302, 300, 2),
            seed: 0x93,
        },
        SuiteEntry {
            key: "SHYY",
            paper_name: "SHYY161",
            description: "CFD/Navier-Stokes",
            paper_order: 76480,
            paper_nonzeros: 329762,
            kind: Kind::Grid9(277, 276),
            seed: 161,
        },
        SuiteEntry {
            key: "TROL",
            paper_name: "TROLL",
            description: "3D stiffness matrix",
            paper_order: 213453,
            paper_nonzeros: 5885829,
            kind: Kind::Stiffness(60, 60, 60),
            seed: 0x7011,
        },
        SuiteEntry {
            key: "WAVE",
            paper_name: "WAVE",
            description: "3D finite element mesh",
            paper_order: 156317,
            paper_nonzeros: 1059331,
            kind: Kind::Tet3d(54, 54, 54),
            seed: 0x3a5e,
        },
    ];
    S
}

/// Look up an entry by key.
pub fn entry(key: &str) -> Option<&'static SuiteEntry> {
    suite().iter().find(|e| e.key == key)
}

/// The 12 rows used by Tables 2, 3 and 4 of the paper, in table order.
pub fn table_rows() -> [&'static str; 12] {
    [
        "BC31", "BC32", "BRCK", "CANT", "COPT", "CY93", "4ELT", "INPR", "ROTR", "SHEL", "TROL",
        "WAVE",
    ]
}

/// The 16 bars of Figures 1-4, in figure order.
pub fn figure_rows() -> [&'static str; 16] {
    [
        "BC30", "BC32", "BRCK", "CANT", "COPT", "CY93", "FINC", "LHR", "MAP", "MEM", "ROTR", "S38",
        "SHEL", "SHYY", "TROL", "WAVE",
    ]
}

/// The 18 bars of Figure 5 (ordering quality), in increasing matrix order as
/// the paper displays them.
pub fn fig5_rows() -> [&'static str; 18] {
    [
        "LS34", "BC28", "BSP10", "BC33", "BC29", "4ELT", "BC30", "BC31", "BC32", "CY93", "INPR",
        "CANT", "COPT", "BRCK", "ROTR", "WAVE", "SHEL", "TROL",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::is_connected;

    #[test]
    fn all_rows_resolve() {
        for k in table_rows()
            .iter()
            .chain(figure_rows().iter())
            .chain(fig5_rows().iter())
        {
            assert!(entry(k).is_some(), "missing suite entry {k}");
        }
    }

    #[test]
    fn suite_has_24_unique_keys() {
        let s = suite();
        assert_eq!(s.len(), 24);
        let mut keys: Vec<_> = s.iter().map(|e| e.key).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 24);
    }

    #[test]
    fn scaled_instances_are_valid_and_connected() {
        // Small scale so this test stays fast; every generator is exercised.
        for e in suite() {
            let g = e.generate_scaled(0.02);
            assert!(g.n() > 0, "{} empty", e.key);
            assert!(g.validate().is_ok(), "{} invalid", e.key);
            assert!(is_connected(&g), "{} disconnected", e.key);
        }
    }

    #[test]
    fn full_scale_order_is_close_to_paper() {
        // Cheap entries only (the big ones are exercised by the harness).
        for key in ["LS34", "BC28", "BSP10"] {
            let e = entry(key).unwrap();
            let g = e.generate();
            let ratio = g.n() as f64 / e.paper_order as f64;
            assert!(
                (0.8..1.25).contains(&ratio),
                "{key}: n={} paper={}",
                g.n(),
                e.paper_order
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let e = entry("4ELT").unwrap();
        assert_eq!(e.generate_scaled(0.05), e.generate_scaled(0.05));
    }
}
