//! Vertex permutations and graph relabeling.
//!
//! Fill-reducing orderings are permutations; this module provides a checked
//! [`Permutation`] type (forward `perm` and inverse `iperm` kept in sync)
//! plus relabeling of a [`CsrGraph`] under a permutation.

use crate::csr::{CsrGraph, Vid};
use crate::rng::shuffle;
use rand::Rng;

/// A bijection on `0..n`.
///
/// `perm[i]` is the *new* label of old vertex `i`; `iperm[j]` is the old
/// vertex placed at new position `j` (so `iperm[perm[i]] == i`). For a
/// fill-reducing ordering, `perm[v]` is the elimination step at which `v` is
/// eliminated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Permutation {
    perm: Vec<Vid>,
    iperm: Vec<Vid>,
}

impl Permutation {
    /// The identity permutation on `0..n`.
    pub fn identity(n: usize) -> Self {
        let perm: Vec<Vid> = (0..n as Vid).collect();
        Self {
            iperm: perm.clone(),
            perm,
        }
    }

    /// Build from a forward map `perm[i] = new label of i`.
    ///
    /// # Panics
    /// Panics if `perm` is not a bijection on `0..perm.len()`.
    pub fn from_forward(perm: Vec<Vid>) -> Self {
        let n = perm.len();
        let mut iperm = vec![Vid::MAX; n];
        for (old, &new) in perm.iter().enumerate() {
            assert!((new as usize) < n, "perm value {new} out of range");
            assert!(
                iperm[new as usize] == Vid::MAX,
                "perm not injective at {new}"
            );
            iperm[new as usize] = old as Vid;
        }
        Self { perm, iperm }
    }

    /// Build from an inverse map `iperm[j] = old vertex at new position j`
    /// (the "order in which vertices are eliminated" convention).
    pub fn from_inverse(iperm: Vec<Vid>) -> Self {
        let f = Self::from_forward(iperm);
        Self {
            perm: f.iperm,
            iperm: f.perm,
        }
    }

    /// A uniformly random permutation (Fisher-Yates).
    pub fn random<R: Rng>(n: usize, rng: &mut R) -> Self {
        let mut iperm: Vec<Vid> = (0..n as Vid).collect();
        shuffle(rng, &mut iperm);
        Self::from_inverse(iperm)
    }

    /// Size of the permuted domain.
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// Whether the domain is empty.
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// Forward map: old label -> new label.
    pub fn perm(&self) -> &[Vid] {
        &self.perm
    }

    /// Inverse map: new label -> old label.
    pub fn iperm(&self) -> &[Vid] {
        &self.iperm
    }

    /// New label of old vertex `v`.
    #[inline]
    pub fn apply(&self, v: Vid) -> Vid {
        self.perm[v as usize]
    }

    /// Compose: first apply `self`, then `other` (`result(v) =
    /// other(self(v))`).
    pub fn then(&self, other: &Permutation) -> Permutation {
        assert_eq!(self.len(), other.len());
        let perm: Vec<Vid> = self.perm.iter().map(|&p| other.perm[p as usize]).collect();
        Permutation::from_forward(perm)
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Permutation {
        Permutation {
            perm: self.iperm.clone(),
            iperm: self.perm.clone(),
        }
    }
}

/// Relabel `g` so that old vertex `v` becomes `p.apply(v)`.
pub fn permute_graph(g: &CsrGraph, p: &Permutation) -> CsrGraph {
    assert_eq!(g.n(), p.len(), "permutation size mismatch");
    let n = g.n();
    let mut xadj = vec![0u32; n + 1];
    for old in 0..n as Vid {
        xadj[p.apply(old) as usize + 1] = g.degree(old) as u32;
    }
    for i in 0..n {
        xadj[i + 1] += xadj[i];
    }
    let mut adjncy = vec![0 as Vid; g.nnz()];
    let mut adjwgt = vec![0; g.nnz()];
    let mut vwgt = vec![0; n];
    for old in 0..n as Vid {
        let new = p.apply(old) as usize;
        vwgt[new] = g.vwgt()[old as usize];
        let start = xadj[new] as usize;
        let mut row: Vec<(Vid, i64)> = g.adj(old).map(|(u, w)| (p.apply(u), w)).collect();
        row.sort_unstable_by_key(|&(u, _)| u);
        for (i, (u, w)) in row.into_iter().enumerate() {
            adjncy[start + i] = u;
            adjwgt[start + i] = w;
        }
    }
    CsrGraph::from_parts_unchecked(xadj, adjncy, vwgt, adjwgt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use rand::SeedableRng;

    #[test]
    fn identity_round_trip() {
        let p = Permutation::identity(5);
        assert_eq!(p.apply(3), 3);
        assert_eq!(p.inverse(), p);
    }

    #[test]
    fn forward_inverse_consistency() {
        let p = Permutation::from_forward(vec![2, 0, 1]);
        assert_eq!(p.iperm(), &[1, 2, 0]);
        assert_eq!(p.inverse().perm(), &[1, 2, 0]);
        for v in 0..3 {
            assert_eq!(p.iperm()[p.apply(v) as usize], v);
        }
    }

    #[test]
    fn from_inverse_matches() {
        let p = Permutation::from_inverse(vec![2, 0, 1]);
        assert_eq!(p.perm(), &[1, 2, 0]);
    }

    #[test]
    #[should_panic(expected = "not injective")]
    fn rejects_non_bijection() {
        Permutation::from_forward(vec![0, 0, 1]);
    }

    #[test]
    fn composition() {
        let a = Permutation::from_forward(vec![1, 2, 0]);
        let b = Permutation::from_forward(vec![2, 1, 0]);
        let c = a.then(&b);
        for v in 0..3 {
            assert_eq!(c.apply(v), b.apply(a.apply(v)));
        }
    }

    #[test]
    fn random_is_bijection() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let p = Permutation::random(100, &mut rng);
        let mut seen = [false; 100];
        for v in 0..100 {
            seen[p.apply(v) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn permute_graph_preserves_structure() {
        let mut b = GraphBuilder::new(4);
        b.add_weighted_edge(0, 1, 3)
            .add_weighted_edge(1, 2, 5)
            .add_weighted_edge(2, 3, 7);
        b.set_vertex_weights(vec![1, 2, 3, 4]);
        let g = b.build();
        let p = Permutation::from_forward(vec![3, 1, 0, 2]);
        let h = permute_graph(&g, &p);
        assert!(h.validate().is_ok());
        assert_eq!(h.m(), g.m());
        assert_eq!(h.total_vwgt(), g.total_vwgt());
        assert_eq!(h.total_adjwgt(), g.total_adjwgt());
        // Edge (1,2,w=5) became (1,0,w=5).
        assert_eq!(h.vwgt()[1], 2);
        let w: Vec<_> = h.adj(1).collect();
        assert!(w.contains(&(0, 5)));
        // Applying the inverse restores the original graph.
        let g2 = permute_graph(&h, &p.inverse());
        assert_eq!(g2, g);
    }
}
