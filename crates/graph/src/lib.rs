//! # mlgp-graph
//!
//! Graph substrate for the multilevel-partitioning reproduction: weighted
//! undirected graphs in CSR form, an edge-list builder, induced-subgraph
//! extraction, permutations, connectivity utilities, Chaco/METIS and
//! MatrixMarket I/O, and the deterministic workload generators that stand in
//! for the paper's Table 1 matrix suite.
//!
//! ```
//! use mlgp_graph::GraphBuilder;
//! let mut b = GraphBuilder::new(3);
//! b.add_edge(0, 1).add_weighted_edge(1, 2, 5);
//! let g = b.build();
//! assert_eq!(g.m(), 2);
//! assert_eq!(g.weighted_degree(1), 6);
//! ```

pub mod builder;
pub mod components;
pub mod csr;
pub mod generators;
pub mod io;
pub mod permute;
pub mod rng;
pub mod subgraph;

pub use builder::GraphBuilder;
pub use components::{connect_components, connected_components, is_connected};
pub use csr::{CsrGraph, Vid, Wgt};
pub use permute::{permute_graph, Permutation};
pub use subgraph::{induced_subgraph, split_by_part, Subgraph};
