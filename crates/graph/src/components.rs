//! Connectivity analysis.
//!
//! Partitioners and ordering codes assume connected inputs; generators use
//! these routines to verify (or restore) connectivity, and nested dissection
//! uses component decomposition when a separator disconnects a side.

use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, Vid};

/// Label the connected components of `g`; returns `(count, comp)` where
/// `comp[v]` is the 0-based component id of `v` (ids assigned in order of
/// first discovery by vertex number).
pub fn connected_components(g: &CsrGraph) -> (usize, Vec<u32>) {
    let n = g.n();
    let mut comp = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut stack: Vec<Vid> = Vec::new();
    for s in 0..n as Vid {
        if comp[s as usize] != u32::MAX {
            continue;
        }
        comp[s as usize] = count;
        stack.push(s);
        while let Some(v) = stack.pop() {
            for &u in g.neighbors(v) {
                if comp[u as usize] == u32::MAX {
                    comp[u as usize] = count;
                    stack.push(u);
                }
            }
        }
        count += 1;
    }
    (count as usize, comp)
}

/// True iff `g` is connected (the empty graph counts as connected).
pub fn is_connected(g: &CsrGraph) -> bool {
    g.n() == 0 || connected_components(g).0 == 1
}

/// Add minimum-weight unit edges chaining one representative of each
/// component to the next, producing a connected graph. Used by generators
/// whose random construction can occasionally disconnect.
pub fn connect_components(g: &CsrGraph) -> CsrGraph {
    let (count, comp) = connected_components(g);
    if count <= 1 {
        return g.clone();
    }
    let mut rep = vec![Vid::MAX; count];
    for v in 0..g.n() as Vid {
        let c = comp[v as usize] as usize;
        if rep[c] == Vid::MAX {
            rep[c] = v;
        }
    }
    let mut b = GraphBuilder::with_capacity(g.n(), g.m() + count);
    b.set_vertex_weights(g.vwgt().to_vec());
    for v in 0..g.n() as Vid {
        for (u, w) in g.adj(v) {
            if v < u {
                b.add_weighted_edge(v, u, w);
            }
        }
    }
    for c in 1..count {
        b.add_edge(rep[c - 1], rep[c]);
    }
    b.build()
}

/// BFS eccentricity-ish estimate: the farthest vertex (by hops) from `start`
/// and its distance. Used by graph-growing partitioners to pick pseudo-
/// peripheral seeds and by tests as a cheap diameter proxy.
pub fn bfs_farthest(g: &CsrGraph, start: Vid) -> (Vid, usize) {
    let n = g.n();
    let mut dist = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    dist[start as usize] = 0;
    queue.push_back(start);
    let mut far = (start, 0usize);
    while let Some(v) = queue.pop_front() {
        let d = dist[v as usize];
        if d > far.1 {
            far = (v, d);
        }
        for &u in g.neighbors(v) {
            if dist[u as usize] == usize::MAX {
                dist[u as usize] = d + 1;
                queue.push_back(u);
            }
        }
    }
    far
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_triangles() -> CsrGraph {
        let mut b = GraphBuilder::new(6);
        b.add_edge(0, 1).add_edge(1, 2).add_edge(2, 0);
        b.add_edge(3, 4).add_edge(4, 5).add_edge(5, 3);
        b.build()
    }

    #[test]
    fn counts_components() {
        let (count, comp) = connected_components(&two_triangles());
        assert_eq!(count, 2);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[0], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
    }

    #[test]
    fn connectivity_predicate() {
        assert!(!is_connected(&two_triangles()));
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).add_edge(1, 2);
        assert!(is_connected(&b.build()));
        assert!(is_connected(&CsrGraph::empty()));
    }

    #[test]
    fn connecting_makes_connected() {
        let g = connect_components(&two_triangles());
        assert!(is_connected(&g));
        assert_eq!(g.m(), 7); // 6 original + 1 bridge
        assert!(g.validate().is_ok());
    }

    #[test]
    fn connect_is_identity_on_connected() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1);
        let g = b.build();
        assert_eq!(connect_components(&g), g);
    }

    #[test]
    fn bfs_farthest_on_path() {
        let mut b = GraphBuilder::new(5);
        for i in 0..4 {
            b.add_edge(i, i + 1);
        }
        let g = b.build();
        let (v, d) = bfs_farthest(&g, 0);
        assert_eq!((v, d), (4, 4));
        let (v, d) = bfs_farthest(&g, 2);
        assert_eq!(d, 2);
        assert!(v == 0 || v == 4);
    }
}
