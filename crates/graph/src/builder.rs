//! Incremental construction of [`CsrGraph`]s from edge lists.
//!
//! The builder accepts edges in any order, in either direction, with
//! duplicates; it symmetrizes, folds parallel edges by summing weights, and
//! drops self-loops, producing a graph that satisfies every [`CsrGraph`]
//! invariant. All algorithms that synthesize graphs (generators, file
//! readers, test fixtures) funnel through here.

use crate::csr::{CsrGraph, Vid, Wgt};

/// Accumulates an edge list and finalizes it into a [`CsrGraph`].
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(Vid, Vid, Wgt)>,
    vwgt: Option<Vec<Wgt>>,
}

impl GraphBuilder {
    /// Builder for a graph with `n` vertices and unit vertex weights.
    pub fn new(n: usize) -> Self {
        assert!(n < Vid::MAX as usize, "too many vertices for u32 ids");
        Self {
            n,
            edges: Vec::new(),
            vwgt: None,
        }
    }

    /// Pre-allocate room for `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        let mut b = Self::new(n);
        b.edges.reserve(m);
        b
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Set all vertex weights at once.
    ///
    /// # Panics
    /// Panics if `vwgt.len() != n` or any weight is non-positive.
    pub fn set_vertex_weights(&mut self, vwgt: Vec<Wgt>) -> &mut Self {
        assert_eq!(vwgt.len(), self.n, "vertex weight length mismatch");
        assert!(
            vwgt.iter().all(|&w| w > 0),
            "vertex weights must be positive"
        );
        self.vwgt = Some(vwgt);
        self
    }

    /// Add an undirected edge with unit weight. Self-loops are silently
    /// dropped; duplicates are folded at build time by summing weights.
    pub fn add_edge(&mut self, u: Vid, v: Vid) -> &mut Self {
        self.add_weighted_edge(u, v, 1)
    }

    /// Add an undirected edge with the given positive weight.
    pub fn add_weighted_edge(&mut self, u: Vid, v: Vid, w: Wgt) -> &mut Self {
        assert!((u as usize) < self.n, "edge endpoint {u} out of range");
        assert!((v as usize) < self.n, "edge endpoint {v} out of range");
        assert!(w > 0, "edge weights must be positive");
        if u != v {
            self.edges.push((u, v, w));
        }
        self
    }

    /// Number of (possibly duplicate) edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Finalize into a CSR graph.
    pub fn build(self) -> CsrGraph {
        let n = self.n;
        // Degree count over both directions.
        let mut xadj = vec![0u32; n + 1];
        for &(u, v, _) in &self.edges {
            xadj[u as usize + 1] += 1;
            xadj[v as usize + 1] += 1;
        }
        for i in 0..n {
            xadj[i + 1] += xadj[i];
        }
        let total = xadj[n] as usize;
        let mut adjncy = vec![0 as Vid; total];
        let mut adjwgt = vec![0 as Wgt; total];
        let mut cursor: Vec<u32> = xadj[..n].to_vec();
        for &(u, v, w) in &self.edges {
            let cu = cursor[u as usize] as usize;
            adjncy[cu] = v;
            adjwgt[cu] = w;
            cursor[u as usize] += 1;
            let cv = cursor[v as usize] as usize;
            adjncy[cv] = u;
            adjwgt[cv] = w;
            cursor[v as usize] += 1;
        }
        // Per-row sort + merge duplicates, compacting in place.
        let mut out_xadj = vec![0u32; n + 1];
        let mut write = 0usize;
        for v in 0..n {
            let start = xadj[v] as usize;
            let end = xadj[v + 1] as usize;
            let mut row: Vec<(Vid, Wgt)> = adjncy[start..end]
                .iter()
                .copied()
                .zip(adjwgt[start..end].iter().copied())
                .collect();
            row.sort_unstable_by_key(|&(u, _)| u);
            let row_start = write;
            for (u, w) in row {
                if write > row_start && adjncy[write - 1] == u {
                    adjwgt[write - 1] += w;
                } else {
                    adjncy[write] = u;
                    adjwgt[write] = w;
                    write += 1;
                }
            }
            out_xadj[v + 1] = write as u32;
        }
        adjncy.truncate(write);
        adjwgt.truncate(write);
        let vwgt = self.vwgt.unwrap_or_else(|| vec![1; n]);
        CsrGraph::from_parts_unchecked(out_xadj, adjncy, vwgt, adjwgt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_simple_path() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).add_edge(1, 2);
        let g = b.build();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn folds_duplicate_edges() {
        let mut b = GraphBuilder::new(2);
        b.add_weighted_edge(0, 1, 2);
        b.add_weighted_edge(1, 0, 3);
        let g = b.build();
        assert_eq!(g.m(), 1);
        assert_eq!(g.edge_weights(0), &[5]);
        assert_eq!(g.edge_weights(1), &[5]);
    }

    #[test]
    fn drops_self_loops() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 0).add_edge(0, 1);
        let g = b.build();
        assert_eq!(g.m(), 1);
    }

    #[test]
    fn respects_vertex_weights() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1);
        b.set_vertex_weights(vec![7, 9]);
        let g = b.build();
        assert_eq!(g.vwgt(), &[7, 9]);
        assert_eq!(g.total_vwgt(), 16);
    }

    #[test]
    fn isolated_vertices_allowed() {
        let g = GraphBuilder::new(4).build();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 0);
        assert!(g.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_edge() {
        GraphBuilder::new(2).add_edge(0, 2);
    }

    #[test]
    fn sorted_rows() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(3, 0).add_edge(1, 3).add_edge(3, 2);
        let g = b.build();
        assert_eq!(g.neighbors(3), &[0, 1, 2]);
    }
}
