//! Compressed sparse row (CSR) representation of an undirected weighted graph.
//!
//! This is the representation every algorithm in the workspace operates on:
//! the adjacency structure is stored forward and backward (each undirected
//! edge appears in both endpoint rows), vertices and edges both carry integer
//! weights, and self-loops are disallowed. It matches the representation used
//! by the ICPP'95 multilevel partitioning paper (and later by METIS), where
//! coarsening sums vertex weights into multinodes and folds parallel edges by
//! summing their weights.

/// Vertex identifier. Graphs in the paper's suite top out below 300k
/// vertices; `u32` halves the memory traffic of the hot adjacency scans.
pub type Vid = u32;

/// Integer weight type for vertices and edges. Coarsening only ever *sums*
/// existing weights, so `i64` cannot overflow for any graph whose total
/// weight fits in 63 bits.
pub type Wgt = i64;

/// An undirected weighted graph in CSR form.
///
/// Invariants (checked by [`CsrGraph::validate`], maintained by all
/// constructors in this crate):
/// * `xadj.len() == n + 1`, `xadj[0] == 0`, `xadj` is non-decreasing;
/// * `adjncy.len() == adjwgt.len() == xadj[n]`;
/// * adjacency is symmetric: `(u, v)` appears iff `(v, u)` does, with equal
///   weight;
/// * no self-loops and no duplicate entries within a row;
/// * all vertex and edge weights are strictly positive.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrGraph {
    xadj: Vec<u32>,
    adjncy: Vec<Vid>,
    vwgt: Vec<Wgt>,
    adjwgt: Vec<Wgt>,
}

impl CsrGraph {
    /// Build a graph from raw CSR parts with unit vertex and edge weights.
    ///
    /// # Panics
    /// Panics if the structure is malformed (see type invariants).
    pub fn from_adjacency(xadj: Vec<u32>, adjncy: Vec<Vid>) -> Self {
        let n = xadj.len().saturating_sub(1);
        let nnz = adjncy.len();
        let g = Self {
            xadj,
            adjncy,
            vwgt: vec![1; n],
            adjwgt: vec![1; nnz],
        };
        // LINT: allow(panic, documented constructor contract — the `# Panics` section promises rejection of malformed CSR input)
        g.validate().expect("malformed CSR adjacency");
        g
    }

    /// Build a graph from fully specified CSR parts.
    ///
    /// # Panics
    /// Panics if the structure is malformed (see type invariants).
    pub fn from_parts(xadj: Vec<u32>, adjncy: Vec<Vid>, vwgt: Vec<Wgt>, adjwgt: Vec<Wgt>) -> Self {
        let g = Self {
            xadj,
            adjncy,
            vwgt,
            adjwgt,
        };
        // LINT: allow(panic, documented constructor contract — the `# Panics` section promises rejection of malformed CSR input)
        g.validate().expect("malformed CSR graph");
        g
    }

    /// Like [`CsrGraph::from_parts`] but skips invariant validation.
    ///
    /// Intended for hot construction paths (contraction, subgraph
    /// extraction) that maintain the invariants themselves. Debug builds
    /// still validate.
    pub fn from_parts_unchecked(
        xadj: Vec<u32>,
        adjncy: Vec<Vid>,
        vwgt: Vec<Wgt>,
        adjwgt: Vec<Wgt>,
    ) -> Self {
        let g = Self {
            xadj,
            adjncy,
            vwgt,
            adjwgt,
        };
        debug_assert!(g.validate().is_ok(), "malformed CSR graph");
        g
    }

    /// The empty graph.
    pub fn empty() -> Self {
        Self {
            xadj: vec![0],
            adjncy: Vec::new(),
            vwgt: Vec::new(),
            adjwgt: Vec::new(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.xadj.len() - 1
    }

    /// Number of undirected edges (half the stored adjacency entries).
    #[inline]
    pub fn m(&self) -> usize {
        self.adjncy.len() / 2
    }

    /// Number of stored adjacency entries (`2m`), i.e. the nonzeros of the
    /// corresponding sparse matrix excluding the diagonal.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.adjncy.len()
    }

    /// CSR row pointer array (`n + 1` entries).
    #[inline]
    pub fn xadj(&self) -> &[u32] {
        &self.xadj
    }

    /// Flat adjacency array.
    #[inline]
    pub fn adjncy(&self) -> &[Vid] {
        &self.adjncy
    }

    /// Vertex weights.
    #[inline]
    pub fn vwgt(&self) -> &[Wgt] {
        &self.vwgt
    }

    /// Edge weights, parallel to [`CsrGraph::adjncy`].
    #[inline]
    pub fn adjwgt(&self) -> &[Wgt] {
        &self.adjwgt
    }

    /// Half-open range of `v`'s adjacency entries in the flat arrays.
    #[inline]
    pub fn range(&self, v: Vid) -> std::ops::Range<usize> {
        self.xadj[v as usize] as usize..self.xadj[v as usize + 1] as usize
    }

    /// Neighbor list of `v`.
    #[inline]
    pub fn neighbors(&self, v: Vid) -> &[Vid] {
        &self.adjncy[self.range(v)]
    }

    /// Weights of the edges incident to `v`, parallel to
    /// [`CsrGraph::neighbors`].
    #[inline]
    pub fn edge_weights(&self, v: Vid) -> &[Wgt] {
        &self.adjwgt[self.range(v)]
    }

    /// Iterate `(neighbor, edge_weight)` pairs of `v`.
    #[inline]
    pub fn adj(&self, v: Vid) -> impl Iterator<Item = (Vid, Wgt)> + '_ {
        let r = self.range(v);
        self.adjncy[r.clone()]
            .iter()
            .copied()
            .zip(self.adjwgt[r].iter().copied())
    }

    /// Degree (number of neighbors) of `v`.
    #[inline]
    pub fn degree(&self, v: Vid) -> usize {
        (self.xadj[v as usize + 1] - self.xadj[v as usize]) as usize
    }

    /// Sum of the weights of the edges incident to `v`.
    #[inline]
    pub fn weighted_degree(&self, v: Vid) -> Wgt {
        self.edge_weights(v).iter().sum()
    }

    /// Sum of all vertex weights.
    pub fn total_vwgt(&self) -> Wgt {
        self.vwgt.iter().sum()
    }

    /// Sum of all edge weights, each undirected edge counted once.
    pub fn total_adjwgt(&self) -> Wgt {
        debug_assert_eq!(self.adjwgt.iter().sum::<Wgt>() % 2, 0);
        self.adjwgt.iter().sum::<Wgt>() / 2
    }

    /// Average degree (`2m / n`), 0 for the empty graph.
    pub fn avg_degree(&self) -> f64 {
        if self.n() == 0 {
            0.0
        } else {
            self.nnz() as f64 / self.n() as f64
        }
    }

    /// Maximum degree over all vertices.
    pub fn max_degree(&self) -> usize {
        (0..self.n() as Vid)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Decompose into raw CSR parts `(xadj, adjncy, vwgt, adjwgt)`.
    pub fn into_parts(self) -> (Vec<u32>, Vec<Vid>, Vec<Wgt>, Vec<Wgt>) {
        (self.xadj, self.adjncy, self.vwgt, self.adjwgt)
    }

    /// Verify every structural invariant; returns a description of the first
    /// violation found.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.xadj.len().saturating_sub(1);
        if self.xadj.is_empty() {
            return Err("xadj must have at least one entry".into());
        }
        if self.xadj[0] != 0 {
            return Err("xadj[0] must be 0".into());
        }
        if self.vwgt.len() != n {
            return Err(format!("vwgt length {} != n {}", self.vwgt.len(), n));
        }
        if self.adjwgt.len() != self.adjncy.len() {
            return Err("adjwgt length != adjncy length".into());
        }
        if self.xadj[n] as usize != self.adjncy.len() {
            return Err("xadj[n] != adjncy length".into());
        }
        for w in &self.vwgt {
            if *w <= 0 {
                return Err("non-positive vertex weight".into());
            }
        }
        for i in 0..n {
            if self.xadj[i] > self.xadj[i + 1] {
                return Err(format!("xadj not monotone at {i}"));
            }
        }
        // Symmetry + weight checks via a sorted edge multiset fingerprint.
        let mut fwd: Vec<(Vid, Vid, Wgt)> = Vec::with_capacity(self.adjncy.len());
        for v in 0..n as Vid {
            let mut seen: Vec<Vid> = Vec::with_capacity(self.degree(v));
            for (u, w) in self.adj(v) {
                if u as usize >= n {
                    return Err(format!("neighbor {u} of {v} out of range"));
                }
                if u == v {
                    return Err(format!("self-loop at {v}"));
                }
                if w <= 0 {
                    return Err(format!("non-positive edge weight on ({v},{u})"));
                }
                seen.push(u);
                fwd.push((v, u, w));
            }
            seen.sort_unstable();
            if seen.windows(2).any(|p| p[0] == p[1]) {
                return Err(format!("duplicate neighbor in row {v}"));
            }
        }
        let mut rev: Vec<(Vid, Vid, Wgt)> = fwd.iter().map(|&(a, b, w)| (b, a, w)).collect();
        fwd.sort_unstable();
        rev.sort_unstable();
        if fwd != rev {
            return Err("adjacency is not symmetric with equal weights".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Triangle with an extra pendant vertex: 0-1, 1-2, 2-0, 2-3.
    fn paw() -> CsrGraph {
        CsrGraph::from_adjacency(vec![0, 2, 4, 7, 8], vec![1, 2, 0, 2, 0, 1, 3, 2])
    }

    #[test]
    fn basic_accessors() {
        let g = paw();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 4);
        assert_eq!(g.nnz(), 8);
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.degree(3), 1);
        assert_eq!(g.weighted_degree(2), 3);
        assert_eq!(g.total_vwgt(), 4);
        assert_eq!(g.total_adjwgt(), 4);
        assert_eq!(g.max_degree(), 3);
        assert!((g.avg_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn adj_iterates_pairs() {
        let g = paw();
        let pairs: Vec<_> = g.adj(2).collect();
        assert_eq!(pairs, vec![(0, 1), (1, 1), (3, 1)]);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty();
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
        assert_eq!(g.avg_degree(), 0.0);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn validate_rejects_asymmetry() {
        let g = CsrGraph {
            xadj: vec![0, 1, 1],
            adjncy: vec![1],
            vwgt: vec![1, 1],
            adjwgt: vec![1],
        };
        assert!(g.validate().is_err());
    }

    #[test]
    fn validate_rejects_self_loop() {
        let g = CsrGraph {
            xadj: vec![0, 1],
            adjncy: vec![0],
            vwgt: vec![1],
            adjwgt: vec![1],
        };
        assert!(g.validate().is_err());
    }

    #[test]
    fn validate_rejects_weight_mismatch() {
        let g = CsrGraph {
            xadj: vec![0, 1, 2],
            adjncy: vec![1, 0],
            vwgt: vec![1, 1],
            adjwgt: vec![2, 3],
        };
        assert!(g.validate().is_err());
    }

    #[test]
    fn validate_rejects_nonpositive_weights() {
        let g = CsrGraph {
            xadj: vec![0, 1, 2],
            adjncy: vec![1, 0],
            vwgt: vec![1, 0],
            adjwgt: vec![1, 1],
        };
        assert!(g.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "malformed")]
    fn from_adjacency_panics_on_bad_input() {
        CsrGraph::from_adjacency(vec![0, 1], vec![5]);
    }

    #[test]
    fn into_parts_round_trips() {
        let g = paw();
        let g2 = g.clone();
        let (xadj, adjncy, vwgt, adjwgt) = g2.into_parts();
        let g3 = CsrGraph::from_parts(xadj, adjncy, vwgt, adjwgt);
        assert_eq!(g, g3);
    }
}
