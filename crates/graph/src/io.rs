//! Graph file I/O.
//!
//! Two formats are supported:
//!
//! * the **Chaco / METIS `.graph` format** the original systems consumed
//!   (header `n m [fmt]`, then one line of 1-indexed neighbors per vertex;
//!   `fmt` = `1` edge weights, `10` vertex weights, `11` both);
//! * **MatrixMarket** `coordinate` files (`pattern`/`real`/`integer`,
//!   `symmetric` or `general`), read as the adjacency structure of the
//!   matrix — how the paper's Harwell-Boeing test matrices are distributed
//!   today.

use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, Vid, Wgt};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors from graph parsing.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed file contents, with a human-readable description.
    Parse(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse(m) => write!(f, "parse error: {m}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

fn parse_err<T>(msg: impl Into<String>) -> Result<T, IoError> {
    Err(IoError::Parse(msg.into()))
}

/// Read a Chaco/METIS format graph from a reader.
///
/// Parse errors name the offending 1-based physical line and token, e.g.
/// `parse error: line 3: bad neighbor token `x``.
pub fn read_chaco<R: Read>(r: R) -> Result<CsrGraph, IoError> {
    let reader = BufReader::new(r);
    let mut lines = reader.lines().enumerate();
    // Header: n m [fmt]
    let (header_ln, header) = loop {
        match lines.next() {
            None => return parse_err("empty file"),
            Some((i, line)) => {
                let line = line?;
                let t = line.trim();
                if !t.is_empty() && !t.starts_with('%') && !t.starts_with('#') {
                    break (i + 1, t.to_string());
                }
            }
        }
    };
    let head: Vec<&str> = header.split_whitespace().collect();
    if head.len() < 2 {
        return parse_err(format!("line {header_ln}: header must be `n m [fmt]`"));
    }
    let n: usize = head[0]
        .parse()
        .map_err(|_| IoError::Parse(format!("line {header_ln}: bad n `{}`", head[0])))?;
    let m: usize = head[1]
        .parse()
        .map_err(|_| IoError::Parse(format!("line {header_ln}: bad m `{}`", head[1])))?;
    let fmt = if head.len() > 2 { head[2] } else { "0" };
    let (has_vwgt, has_ewgt) = match fmt {
        "0" | "00" => (false, false),
        "1" | "01" => (false, true),
        "10" => (true, false),
        "11" => (true, true),
        other => return parse_err(format!("line {header_ln}: unsupported fmt `{other}`")),
    };
    let mut b = GraphBuilder::with_capacity(n, m);
    let mut vwgt: Vec<Wgt> = Vec::with_capacity(if has_vwgt { n } else { 0 });
    // Weights seen on the lower endpoint's line, awaiting their mirror on
    // the higher endpoint's line (BTreeMap so the first error reported for
    // an unmirrored edge is the smallest offending pair).
    let mut pending: std::collections::BTreeMap<(Vid, Vid), Vec<Wgt>> =
        std::collections::BTreeMap::new();
    let mut v = 0 as Vid;
    for (i, line) in lines {
        let ln = i + 1;
        let line = line?;
        let t = line.trim();
        if t.starts_with('%') || t.starts_with('#') {
            continue;
        }
        if v as usize >= n {
            if t.is_empty() {
                continue;
            }
            return parse_err(format!("line {ln}: more vertex lines than n = {n}"));
        }
        let mut tok = t.split_whitespace();
        if has_vwgt {
            match tok.next() {
                Some(w) => vwgt.push(w.parse().map_err(|_| {
                    IoError::Parse(format!(
                        "line {ln}: bad vertex weight `{w}` for vertex {}",
                        v + 1
                    ))
                })?),
                None => vwgt.push(1),
            }
        }
        while let Some(u) = tok.next() {
            let u: usize = u
                .parse()
                .map_err(|_| IoError::Parse(format!("line {ln}: bad neighbor token `{u}`")))?;
            if u == 0 || u > n {
                return parse_err(format!("line {ln}: neighbor {u} out of range 1..={n}"));
            }
            let w: Wgt = if has_ewgt {
                match tok.next() {
                    Some(w) => w
                        .parse()
                        .map_err(|_| IoError::Parse(format!("line {ln}: bad edge weight `{w}`")))?,
                    None => {
                        return parse_err(format!(
                            "line {ln}: missing edge weight after neighbor {u}"
                        ))
                    }
                }
            } else {
                1
            };
            let u = (u - 1) as Vid;
            // Each undirected edge must appear on both endpoint lines with
            // the same weight. The lower endpoint's copy is held pending
            // (as a weight multiset, to tolerate parallel entries); the
            // higher endpoint's copy must cancel one pending weight.
            if u == v {
                return parse_err(format!("line {ln}: self-loop on vertex {}", v + 1));
            } else if v < u {
                pending.entry((v, u)).or_default().push(w);
            } else {
                let slot = pending.get_mut(&(u, v));
                let Some(ws) = slot.filter(|ws| !ws.is_empty()) else {
                    return parse_err(format!(
                        "line {ln}: edge ({}, {}) appears on vertex {}'s line but not on vertex {}'s line",
                        u + 1,
                        v + 1,
                        v + 1,
                        u + 1
                    ));
                };
                match ws.iter().position(|&pw| pw == w) {
                    Some(pos) => {
                        ws.swap_remove(pos);
                        b.add_weighted_edge(u, v, w);
                    }
                    None => {
                        return parse_err(format!(
                            "line {ln}: edge ({}, {}) has weight {} on vertex {}'s line but {} on vertex {}'s line",
                            u + 1,
                            v + 1,
                            ws[0],
                            u + 1,
                            w,
                            v + 1
                        ))
                    }
                }
            }
        }
        v += 1;
    }
    if (v as usize) < n {
        return parse_err(format!("only {v} of {n} vertex lines present"));
    }
    if let Some(((a, b_), ws)) = pending.iter().find(|(_, ws)| !ws.is_empty()) {
        debug_assert!(!ws.is_empty());
        return parse_err(format!(
            "edge ({}, {}) appears on vertex {}'s line but not on vertex {}'s line",
            a + 1,
            b_ + 1,
            a + 1,
            b_ + 1
        ));
    }
    if has_vwgt {
        b.set_vertex_weights(vwgt);
    }
    let g = b.build();
    if g.m() != m {
        return parse_err(format!("header claims {m} edges, found {}", g.m()));
    }
    Ok(g)
}

/// Write a graph in Chaco/METIS format (always emits fmt `11`).
pub fn write_chaco<W: Write>(g: &CsrGraph, w: W) -> std::io::Result<()> {
    let mut out = BufWriter::new(w);
    writeln!(out, "{} {} 11", g.n(), g.m())?;
    for v in 0..g.n() as Vid {
        write!(out, "{}", g.vwgt()[v as usize])?;
        for (u, wgt) in g.adj(v) {
            write!(out, " {} {}", u + 1, wgt)?;
        }
        writeln!(out)?;
    }
    out.flush()
}

/// Read a MatrixMarket coordinate file as a graph: off-diagonal nonzeros
/// become unit-weight edges (values, if present, are ignored — partitioning
/// uses only the structure, as the paper does).
pub fn read_matrix_market<R: Read>(r: R) -> Result<CsrGraph, IoError> {
    let reader = BufReader::new(r);
    let mut lines = reader.lines().enumerate();
    let banner = match lines.next() {
        Some((_, l)) => l?,
        None => return parse_err("empty file"),
    };
    let lower = banner.to_ascii_lowercase();
    if !lower.starts_with("%%matrixmarket") {
        return parse_err("missing MatrixMarket banner");
    }
    // Banner: %%MatrixMarket matrix coordinate <field> <symmetry>
    let tokens: Vec<&str> = lower.split_whitespace().collect();
    if tokens.len() < 5 {
        return parse_err("banner must be `%%MatrixMarket matrix coordinate <field> <symmetry>`");
    }
    if tokens[2] != "coordinate" {
        return parse_err("only coordinate format supported");
    }
    let pattern = tokens[3] == "pattern";
    // `symmetric` variants store each off-diagonal entry once (lower
    // triangle); `general` stores both (i,j) and (j,i), which must fold to
    // ONE unit edge — not two, which would double every edge weight.
    let symmetric = match tokens[4] {
        "general" => false,
        "symmetric" | "skew-symmetric" | "hermitian" => true,
        other => return parse_err(format!("unknown symmetry `{other}`")),
    };
    let mut size_line = None;
    for (i, line) in lines.by_ref() {
        let line = line?;
        let t = line.trim().to_string();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        size_line = Some((i + 1, t));
        break;
    }
    let Some((size_ln, size_line)) = size_line else {
        return parse_err("missing size line");
    };
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|s| {
            s.parse()
                .map_err(|_| IoError::Parse(format!("line {size_ln}: bad size token `{s}`")))
        })
        .collect::<Result<_, _>>()?;
    if dims.len() != 3 {
        return parse_err(format!("line {size_ln}: size line must be `rows cols nnz`"));
    }
    let (rows, cols, nnz) = (dims[0], dims[1], dims[2]);
    if rows != cols {
        return parse_err(format!(
            "line {size_ln}: matrix must be square to define a graph, got {rows}x{cols}"
        ));
    }
    let mut b = GraphBuilder::with_capacity(rows, nnz);
    // For `general` storage the structurally-mirrored entries (i,j)/(j,i)
    // describe the SAME undirected edge; collect normalized pairs and add
    // each distinct one once.
    let mut general_pairs: Vec<(Vid, Vid)> = Vec::new();
    let mut seen = 0usize;
    for (li, line) in lines {
        let ln = li + 1;
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut tok = t.split_whitespace();
        let (Some(i), Some(j)) = (tok.next(), tok.next()) else {
            return parse_err(format!("line {ln}: entry must be `row col [value]`"));
        };
        if !pattern && tok.next().is_none() {
            return parse_err(format!("line {ln}: missing value on entry line"));
        }
        let i: usize = i
            .parse()
            .map_err(|_| IoError::Parse(format!("line {ln}: bad row index `{i}`")))?;
        let j: usize = j
            .parse()
            .map_err(|_| IoError::Parse(format!("line {ln}: bad col index `{j}`")))?;
        if i == 0 || i > rows || j == 0 || j > rows {
            return parse_err(format!(
                "line {ln}: index ({i}, {j}) out of range 1..={rows}"
            ));
        }
        if i != j {
            let (a, b_) = ((i - 1) as Vid, (j - 1) as Vid);
            if symmetric {
                b.add_edge(a, b_);
            } else {
                general_pairs.push((a.min(b_), a.max(b_)));
            }
        }
        seen += 1;
    }
    if seen != nnz {
        return parse_err(format!("header claims {nnz} entries, found {seen}"));
    }
    general_pairs.sort_unstable();
    general_pairs.dedup();
    for (a, b_) in general_pairs {
        b.add_edge(a, b_);
    }
    Ok(b.build())
}

/// Write a graph as a symmetric MatrixMarket pattern matrix (lower
/// triangle plus unit diagonal, the Harwell-Boeing convention for
/// structural symmetry).
pub fn write_matrix_market<W: Write>(g: &CsrGraph, w: W) -> std::io::Result<()> {
    let mut out = BufWriter::new(w);
    writeln!(out, "%%MatrixMarket matrix coordinate pattern symmetric")?;
    writeln!(out, "% exported by mlgp-graph")?;
    writeln!(out, "{} {} {}", g.n(), g.n(), g.n() + g.m())?;
    for v in 0..g.n() as Vid {
        writeln!(out, "{} {}", v + 1, v + 1)?;
        for &u in g.neighbors(v) {
            if u < v {
                writeln!(out, "{} {}", v + 1, u + 1)?;
            }
        }
    }
    out.flush()
}

/// Read a graph file, dispatching on extension (`.mtx` → MatrixMarket,
/// anything else → Chaco/METIS).
pub fn read_graph_file(path: &Path) -> Result<CsrGraph, IoError> {
    let f = std::fs::File::open(path)?;
    if path.extension().is_some_and(|e| e == "mtx") {
        read_matrix_market(f)
    } else {
        read_chaco(f)
    }
}

/// Write a graph to a `.graph` file in Chaco/METIS format.
pub fn write_graph_file(g: &CsrGraph, path: &Path) -> std::io::Result<()> {
    write_chaco(g, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaco_round_trip() {
        let mut b = GraphBuilder::new(4);
        b.add_weighted_edge(0, 1, 2)
            .add_weighted_edge(1, 2, 3)
            .add_weighted_edge(2, 3, 4)
            .add_weighted_edge(3, 0, 5);
        b.set_vertex_weights(vec![1, 2, 3, 4]);
        let g = b.build();
        let mut buf = Vec::new();
        write_chaco(&g, &mut buf).unwrap();
        let g2 = read_chaco(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn reads_unweighted_chaco() {
        let text = "% comment\n3 2\n2\n1 3\n2\n";
        let g = read_chaco(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn reads_edge_weighted_chaco() {
        let text = "2 1 1\n2 7\n1 7\n";
        let g = read_chaco(text.as_bytes()).unwrap();
        assert_eq!(g.edge_weights(0), &[7]);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(read_chaco("3\n".as_bytes()).is_err());
        assert!(read_chaco("".as_bytes()).is_err());
        assert!(read_chaco("2 1 99\n2\n1\n".as_bytes()).is_err());
    }

    #[test]
    fn rejects_edge_count_mismatch() {
        let text = "3 5\n2\n1 3\n2\n";
        assert!(read_chaco(text.as_bytes()).is_err());
    }

    #[test]
    fn reads_matrix_market_symmetric() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    3 3 4\n1 1 2.0\n2 1 -1.0\n3 2 -1.0\n3 3 2.0\n";
        let g = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2); // diagonal entries dropped
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn reads_matrix_market_pattern_general() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n\
                    2 2 2\n1 2\n2 1\n";
        let g = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(g.m(), 1); // duplicate (1,2)/(2,1) folded...
        assert_eq!(g.edge_weights(0), &[1]); // ...to ONE unit edge, not weight 2
    }

    #[test]
    fn general_and_symmetric_encodings_read_identically() {
        // The same 4-vertex path + chord, stored both ways. `general` lists
        // every off-diagonal nonzero twice; `symmetric` lists the lower
        // triangle once. Both must produce the identical CsrGraph.
        let general = "%%MatrixMarket matrix coordinate real general\n\
                       4 4 12\n\
                       1 2 1.0\n2 1 1.0\n\
                       2 3 1.0\n3 2 1.0\n\
                       3 4 1.0\n4 3 1.0\n\
                       1 4 1.0\n4 1 1.0\n\
                       1 1 2.0\n2 2 2.0\n3 3 2.0\n4 4 2.0\n";
        let symmetric = "%%MatrixMarket matrix coordinate real symmetric\n\
                         4 4 8\n\
                         2 1 1.0\n3 2 1.0\n4 3 1.0\n4 1 1.0\n\
                         1 1 2.0\n2 2 2.0\n3 3 2.0\n4 4 2.0\n";
        let gg = read_matrix_market(general.as_bytes()).unwrap();
        let gs = read_matrix_market(symmetric.as_bytes()).unwrap();
        assert_eq!(gg.m(), 4);
        assert_eq!(gg, gs);
        assert!(gg.edge_weights(0).iter().all(|&w| w == 1));
    }

    #[test]
    fn mm_rejects_unknown_symmetry() {
        let text = "%%MatrixMarket matrix coordinate pattern banana\n2 2 1\n1 2\n";
        let err = read_matrix_market(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("banana"), "{err}");
    }

    #[test]
    fn mm_rejects_short_banner() {
        let text = "%%MatrixMarket matrix coordinate\n2 2 1\n1 2\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }

    #[test]
    fn chaco_rejects_self_loop() {
        // Vertex 2's line lists vertex 2 itself.
        let text = "3 3\n2 3\n1 2 3\n1 2\n";
        let err = read_chaco(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("self-loop"), "{err}");
        assert!(err.to_string().contains('2'), "{err}");
    }

    #[test]
    fn chaco_rejects_asymmetric_adjacency() {
        // Edge (1,3) appears on vertex 1's line only; header says 2 edges
        // but the file is simply inconsistent, and the error must name the
        // unmirrored pair rather than a misleading edge-count mismatch.
        let text = "3 2\n2 3\n1\n\n";
        let err = read_chaco(text.as_bytes()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("(1, 3)"), "{msg}");
        assert!(!msg.contains("header claims"), "{msg}");
    }

    #[test]
    fn chaco_rejects_missing_mirror_direction() {
        // Vertex 3's line claims an edge to 1 that vertex 1 never listed.
        let text = "3 2\n2\n1 3\n2 1\n";
        let err = read_chaco(text.as_bytes()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("(1, 3)"), "{msg}");
        assert!(msg.contains("vertex 1's line"), "{msg}");
    }

    #[test]
    fn chaco_rejects_mismatched_edge_weights() {
        // Edge (1,2) has weight 7 on vertex 1's line, 9 on vertex 2's.
        let text = "2 1 1\n2 7\n1 9\n";
        let err = read_chaco(text.as_bytes()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("(1, 2)"), "{msg}");
        assert!(msg.contains('7') && msg.contains('9'), "{msg}");
    }

    #[test]
    fn chaco_errors_name_line_and_token() {
        // Vertex 2's line is physical line 3 and carries a garbage token.
        let text = "3 2\n2\nx 3\n2\n";
        let err = read_chaco(text.as_bytes()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 3"), "{msg}");
        assert!(msg.contains("`x`"), "{msg}");
    }

    #[test]
    fn chaco_bad_header_names_line() {
        // Header is pushed to physical line 3 by a comment and a blank line.
        let text = "% comment\n\nx 2\n";
        let err = read_chaco(text.as_bytes()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 3"), "{msg}");
        assert!(msg.contains("`x`"), "{msg}");
    }

    #[test]
    fn chaco_weight_errors_name_line() {
        // Edge weight on vertex 2's line (physical line 3) is garbage.
        let text = "2 1 1\n2 7\n1 oops\n";
        let err = read_chaco(text.as_bytes()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 3"), "{msg}");
        assert!(msg.contains("`oops`"), "{msg}");
    }

    #[test]
    fn mm_errors_name_line_and_token() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 2\nq 1\n";
        let err = read_matrix_market(text.as_bytes()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 4"), "{msg}");
        assert!(msg.contains("`q`"), "{msg}");
    }

    #[test]
    fn mm_bad_size_line_names_line() {
        // Size line lands on physical line 3 behind a comment.
        let text = "%%MatrixMarket matrix coordinate pattern general\n% c\n2 2\n";
        let err = read_matrix_market(text.as_bytes()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 3"), "{msg}");
        assert!(msg.contains("rows cols nnz"), "{msg}");
    }

    #[test]
    fn matrix_market_round_trips_structure() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1)
            .add_edge(1, 2)
            .add_edge(2, 3)
            .add_edge(3, 4)
            .add_edge(4, 0);
        let g = b.build();
        let mut buf = Vec::new();
        write_matrix_market(&g, &mut buf).unwrap();
        let g2 = read_matrix_market(&buf[..]).unwrap();
        // Weights are structural (units), so the graphs are fully equal.
        assert_eq!(g, g2);
    }

    #[test]
    fn mm_rejects_rectangular() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 3 1\n1 2\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }
}
