//! Induced-subgraph extraction.
//!
//! Recursive bisection and nested dissection repeatedly carve a partitioned
//! graph into its per-part induced subgraphs and recurse; these routines do
//! that in `O(n + m)` while returning the old-vertex labels so results can be
//! mapped back to the original graph.

use crate::csr::{CsrGraph, Vid};

/// An induced subgraph together with the mapping back to the parent graph.
#[derive(Clone, Debug)]
pub struct Subgraph {
    /// The extracted graph, with vertices relabeled to `0..k`.
    pub graph: CsrGraph,
    /// `orig[i]` is the parent-graph vertex that became subgraph vertex `i`.
    pub orig: Vec<Vid>,
}

/// Extract the subgraph induced by the vertices with `select[v] == true`.
pub fn induced_subgraph(g: &CsrGraph, select: &[bool]) -> Subgraph {
    assert_eq!(select.len(), g.n());
    let mut orig: Vec<Vid> = Vec::new();
    let mut local = vec![Vid::MAX; g.n()];
    for v in 0..g.n() as Vid {
        if select[v as usize] {
            local[v as usize] = orig.len() as Vid;
            orig.push(v);
        }
    }
    let k = orig.len();
    let mut xadj = vec![0u32; k + 1];
    for (i, &v) in orig.iter().enumerate() {
        let deg = g
            .neighbors(v)
            .iter()
            .filter(|&&u| select[u as usize])
            .count();
        xadj[i + 1] = xadj[i] + deg as u32;
    }
    let nnz = xadj[k] as usize;
    let mut adjncy = vec![0 as Vid; nnz];
    let mut adjwgt = vec![0; nnz];
    let mut vwgt = vec![0; k];
    for (i, &v) in orig.iter().enumerate() {
        vwgt[i] = g.vwgt()[v as usize];
        let mut at = xadj[i] as usize;
        for (u, w) in g.adj(v) {
            if select[u as usize] {
                adjncy[at] = local[u as usize];
                adjwgt[at] = w;
                at += 1;
            }
        }
        debug_assert_eq!(at, xadj[i + 1] as usize);
    }
    Subgraph {
        graph: CsrGraph::from_parts_unchecked(xadj, adjncy, vwgt, adjwgt),
        orig,
    }
}

/// Split a partitioned graph into one induced subgraph per part.
///
/// `part[v]` must be in `0..nparts`. Cut edges are discarded (they are
/// exactly the edge-cut of the partition).
pub fn split_by_part(g: &CsrGraph, part: &[u32], nparts: usize) -> Vec<Subgraph> {
    assert_eq!(part.len(), g.n());
    (0..nparts as u32)
        .map(|p| {
            let select: Vec<bool> = part.iter().map(|&x| x == p).collect();
            induced_subgraph(g, &select)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    /// 6-cycle 0-1-2-3-4-5-0.
    fn cycle6() -> CsrGraph {
        let mut b = GraphBuilder::new(6);
        for i in 0..6 {
            b.add_edge(i, (i + 1) % 6);
        }
        b.build()
    }

    #[test]
    fn extracts_half_cycle() {
        let g = cycle6();
        let select = vec![true, true, true, false, false, false];
        let s = induced_subgraph(&g, &select);
        assert_eq!(s.graph.n(), 3);
        assert_eq!(s.graph.m(), 2); // path 0-1-2
        assert_eq!(s.orig, vec![0, 1, 2]);
        assert!(s.graph.validate().is_ok());
    }

    #[test]
    fn preserves_weights() {
        let mut b = GraphBuilder::new(3);
        b.add_weighted_edge(0, 1, 5).add_weighted_edge(1, 2, 7);
        b.set_vertex_weights(vec![10, 20, 30]);
        let g = b.build();
        let s = induced_subgraph(&g, &[true, true, false]);
        assert_eq!(s.graph.vwgt(), &[10, 20]);
        assert_eq!(s.graph.edge_weights(0), &[5]);
    }

    #[test]
    fn split_covers_all_vertices() {
        let g = cycle6();
        let part = vec![0, 0, 1, 1, 2, 2];
        let parts = split_by_part(&g, &part, 3);
        assert_eq!(parts.len(), 3);
        let total: usize = parts.iter().map(|s| s.graph.n()).sum();
        assert_eq!(total, 6);
        // Each part of the cycle is a 2-path with one edge.
        for s in &parts {
            assert_eq!(s.graph.n(), 2);
            assert_eq!(s.graph.m(), 1);
        }
    }

    #[test]
    fn empty_selection() {
        let g = cycle6();
        let s = induced_subgraph(&g, &[false; 6]);
        assert_eq!(s.graph.n(), 0);
        assert!(s.orig.is_empty());
    }

    #[test]
    fn orig_maps_back() {
        let g = cycle6();
        let s = induced_subgraph(&g, &[false, true, false, true, true, false]);
        assert_eq!(s.orig, vec![1, 3, 4]);
        // Edge 3-4 survives as local 1-2.
        let nbrs: Vec<_> = s.graph.neighbors(1).to_vec();
        assert_eq!(nbrs, vec![2]);
    }
}
