//! Property tests for the graph substrate.

use mlgp_graph::generators::suite;
use mlgp_graph::io::{read_chaco, write_chaco};
use mlgp_graph::rng::seeded;
use mlgp_graph::{
    connect_components, connected_components, induced_subgraph, is_connected, permute_graph,
    split_by_part, CsrGraph, GraphBuilder, Permutation, Vid,
};
use proptest::prelude::*;

/// Strategy: an arbitrary weighted edge list over `n` vertices.
fn edge_list(max_n: usize) -> impl Strategy<Value = (usize, Vec<(u32, u32, i64)>)> {
    (2usize..max_n).prop_flat_map(|n| {
        let edges =
            prop::collection::vec((0..n as u32, 0..n as u32, 1i64..10), 0..(4 * n).min(400));
        (Just(n), edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn builder_always_produces_valid_graphs((n, edges) in edge_list(60)) {
        let mut b = GraphBuilder::new(n);
        let mut distinct = std::collections::BTreeSet::new();
        for &(u, v, w) in &edges {
            b.add_weighted_edge(u, v, w);
            if u != v {
                distinct.insert((u.min(v), u.max(v)));
            }
        }
        let g = b.build();
        prop_assert!(g.validate().is_ok());
        prop_assert_eq!(g.n(), n);
        prop_assert_eq!(g.m(), distinct.len());
        // Total edge weight equals the sum of inserted non-loop weights.
        let inserted: i64 = edges.iter().filter(|&&(u, v, _)| u != v).map(|&(_, _, w)| w).sum();
        prop_assert_eq!(g.total_adjwgt(), inserted);
    }

    #[test]
    fn builder_rows_are_sorted_and_loop_free((n, edges) in edge_list(60)) {
        // Canonical CSR form: every adjacency row strictly increasing (so
        // no duplicates) with no self-loops. The parallel contraction
        // kernel emits the same form, which is what makes coarse graphs
        // comparable with `==` across thread counts.
        let mut b = GraphBuilder::new(n);
        for &(u, v, w) in &edges {
            b.add_weighted_edge(u, v, w);
        }
        let g = b.build();
        for v in 0..n as u32 {
            let nb = g.neighbors(v);
            prop_assert!(nb.windows(2).all(|w| w[0] < w[1]), "row {} not sorted", v);
            prop_assert!(!nb.contains(&v), "self-loop at {}", v);
        }
    }

    #[test]
    fn chaco_io_round_trips((n, edges) in edge_list(40)) {
        let mut b = GraphBuilder::new(n);
        for &(u, v, w) in &edges {
            b.add_weighted_edge(u, v, w);
        }
        let g = b.build();
        let mut buf = Vec::new();
        write_chaco(&g, &mut buf).unwrap();
        let g2 = read_chaco(&buf[..]).unwrap();
        prop_assert_eq!(g, g2);
    }

    #[test]
    fn permutation_round_trips((n, edges) in edge_list(40), seed in 0u64..500) {
        let mut b = GraphBuilder::new(n);
        for &(u, v, w) in &edges {
            b.add_weighted_edge(u, v, w);
        }
        let g = b.build();
        let p = Permutation::random(n, &mut seeded(seed));
        let h = permute_graph(&g, &p);
        prop_assert!(h.validate().is_ok());
        prop_assert_eq!(h.total_adjwgt(), g.total_adjwgt());
        prop_assert_eq!(permute_graph(&h, &p.inverse()), g);
    }

    #[test]
    fn split_partitions_vertices_and_edges((n, edges) in edge_list(50), k in 2usize..5) {
        let mut b = GraphBuilder::new(n);
        for &(u, v, w) in &edges {
            b.add_weighted_edge(u, v, w);
        }
        let g = b.build();
        let part: Vec<u32> = (0..n).map(|v| (v % k) as u32).collect();
        let subs = split_by_part(&g, &part, k);
        let total_n: usize = subs.iter().map(|s| s.graph.n()).sum();
        prop_assert_eq!(total_n, n);
        // Edges inside subgraphs + cut edges == all edges.
        let inside: usize = subs.iter().map(|s| s.graph.m()).sum();
        let cut = {
            let mut c = 0;
            for v in 0..n as Vid {
                for &u in g.neighbors(v) {
                    if u > v && part[u as usize] != part[v as usize] {
                        c += 1;
                    }
                }
            }
            c
        };
        prop_assert_eq!(inside + cut, g.m());
        // Each subgraph's orig ids map back to the right part.
        for (pi, s) in subs.iter().enumerate() {
            for &o in &s.orig {
                prop_assert_eq!(part[o as usize] as usize, pi);
            }
        }
    }

    #[test]
    fn connect_components_always_connects((n, edges) in edge_list(50)) {
        let mut b = GraphBuilder::new(n);
        for &(u, v, w) in &edges {
            b.add_weighted_edge(u, v, w);
        }
        let g = connect_components(&b.build());
        prop_assert!(is_connected(&g));
        let (count, comp) = connected_components(&g);
        prop_assert_eq!(count, 1);
        prop_assert!(comp.iter().all(|&c| c == 0));
    }

    #[test]
    fn induced_subgraph_degree_bound((n, edges) in edge_list(40), mask_seed in 0u64..100) {
        let mut b = GraphBuilder::new(n);
        for &(u, v, w) in &edges {
            b.add_weighted_edge(u, v, w);
        }
        let g = b.build();
        let select: Vec<bool> = (0..n).map(|v| !(v as u64 * 31 + mask_seed).is_multiple_of(3)).collect();
        let s = induced_subgraph(&g, &select);
        prop_assert!(s.graph.validate().is_ok());
        for (i, &orig) in s.orig.iter().enumerate() {
            prop_assert!(s.graph.degree(i as Vid) <= g.degree(orig));
        }
    }
}

#[test]
fn suite_entries_are_stable_across_calls() {
    // The full suite must resolve and stay deterministic (not proptest, but
    // lives here to keep the expensive generator checks out of unit tests).
    for e in suite().iter().take(6) {
        let a: CsrGraph = e.generate_scaled(0.03);
        let b: CsrGraph = e.generate_scaled(0.03);
        assert_eq!(a, b, "{}", e.key);
    }
}
