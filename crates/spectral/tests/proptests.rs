//! Property tests for the spectral baselines.

use mlgp_graph::rng::seeded;
use mlgp_graph::{CsrGraph, GraphBuilder};
use mlgp_part::{edge_cut_bisection, edge_cut_kway, part_weights, BalanceTargets};
use mlgp_spectral::{
    chaco_ml_bisect_targets, chaco_ml_kway, msb_bisect_targets, msb_fiedler, msb_kl_bisect_targets,
    ChacoMlConfig, MsbConfig,
};
use proptest::prelude::*;
use rand::RngExt;

fn random_connected(n: usize, extra: usize, seed: u64) -> CsrGraph {
    let mut rng = seeded(seed);
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge(v as u32, rng.random_range(0..v) as u32);
    }
    for _ in 0..extra {
        let u = rng.random_range(0..n) as u32;
        let v = rng.random_range(0..n) as u32;
        if u != v {
            b.add_edge(u, v);
        }
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn msb_bisection_is_balanced(
        n in 16usize..200,
        extra in 10usize..250,
        seed in 0u64..200,
    ) {
        let g = random_connected(n, extra, seed);
        let total = g.total_vwgt();
        let targets = [total / 2, total - total / 2];
        let cfg = MsbConfig { seed, ..MsbConfig::default() };
        let part = msb_bisect_targets(&g, &cfg, targets);
        let pw = {
            let p32: Vec<u32> = part.iter().map(|&x| x as u32).collect();
            part_weights(&g, &p32, 2)
        };
        let bt = BalanceTargets::new(targets, 1.05);
        prop_assert!(bt.balanced([pw[0], pw[1]]), "{pw:?}");
    }

    #[test]
    fn msb_kl_never_worse_than_msb(
        n in 24usize..150,
        extra in 20usize..200,
        seed in 0u64..200,
    ) {
        let g = random_connected(n, extra, seed);
        let total = g.total_vwgt();
        let targets = [total / 2, total - total / 2];
        let cfg = MsbConfig { seed, ..MsbConfig::default() };
        let plain = edge_cut_bisection(&g, &msb_bisect_targets(&g, &cfg, targets));
        let kl = edge_cut_bisection(&g, &msb_kl_bisect_targets(&g, &cfg, targets));
        prop_assert!(kl <= plain, "KL {} vs {}", kl, plain);
    }

    #[test]
    fn chaco_ml_bisection_is_balanced_and_deterministic(
        n in 16usize..150,
        extra in 10usize..200,
        seed in 0u64..200,
    ) {
        let g = random_connected(n, extra, seed);
        let total = g.total_vwgt();
        let targets = [total / 2, total - total / 2];
        let cfg = ChacoMlConfig { seed, ..ChacoMlConfig::default() };
        let a = chaco_ml_bisect_targets(&g, &cfg, targets);
        let b = chaco_ml_bisect_targets(&g, &cfg, targets);
        prop_assert_eq!(&a, &b);
        let p32: Vec<u32> = a.iter().map(|&x| x as u32).collect();
        let pw = part_weights(&g, &p32, 2);
        let bt = BalanceTargets::new(targets, 1.05);
        prop_assert!(bt.balanced([pw[0], pw[1]]), "{pw:?}");
    }

    #[test]
    fn msb_fiedler_is_deflated(
        n in 8usize..120,
        extra in 5usize..150,
        seed in 0u64..200,
    ) {
        let g = random_connected(n, extra, seed);
        let f = msb_fiedler(&g, &MsbConfig { seed, ..MsbConfig::default() });
        prop_assert_eq!(f.len(), n);
        // Orthogonal to constants and not the zero vector.
        let sum: f64 = f.iter().sum();
        let norm: f64 = f.iter().map(|x| x * x).sum::<f64>().sqrt();
        prop_assert!(norm > 1e-8);
        prop_assert!(sum.abs() < 1e-6 * n as f64, "mean leak {sum}");
    }

    #[test]
    fn chaco_kway_covers_all_parts(
        n in 64usize..220,
        extra in 60usize..260,
        k in 2usize..6,
        seed in 0u64..100,
    ) {
        let g = random_connected(n, extra, seed);
        let part = chaco_ml_kway(&g, k, &ChacoMlConfig { seed, ..ChacoMlConfig::default() });
        let mut present = vec![false; k];
        for &p in &part {
            prop_assert!((p as usize) < k);
            present[p as usize] = true;
        }
        prop_assert!(present.iter().all(|&x| x));
        prop_assert!(edge_cut_kway(&g, &part) >= 0);
    }
}
