//! Multilevel Spectral Bisection (MSB) à la Barnard-Simon, and its
//! KL-refined variant MSB-KL — the main baselines of §4.2.
//!
//! MSB computes the Fiedler vector *multilevel*: coarsen with random
//! matching to a tiny graph, solve the dense eigenproblem there, then
//! interpolate the vector level by level, refining it at each level with
//! Rayleigh-quotient iteration (indefinite solves via MINRES — the role
//! SYMMLQ plays in Chaco). The bisection is the weighted-median split of
//! the resulting vector. MSB-KL additionally runs Kernighan-Lin on the
//! final partition.

use mlgp_graph::{CsrGraph, Wgt};
use mlgp_linalg::{
    fiedler_dense, lanczos_fiedler_with_start, rqi_refine, LanczosOptions, Laplacian, RqiOptions,
};
use mlgp_part::initpart::split_by_values;
use mlgp_part::kway::recursive_kway_with;
use mlgp_part::refine::fm::BalanceTargets;
use mlgp_part::refine::{refine_level, BisectState};
use mlgp_part::{coarsen, MatchingScheme, MlConfig, RefinementPolicy};

/// Configuration for the MSB baseline.
#[derive(Clone, Copy, Debug)]
pub struct MsbConfig {
    /// Coarsen (with RM) until at most this many vertices.
    pub coarsen_to: usize,
    /// RQI settings used at every uncoarsening level.
    pub rqi: RqiOptions,
    /// Allowed imbalance for the median split.
    pub imbalance: f64,
    /// Seed for the random matchings.
    pub seed: u64,
    /// Worker threads for the coarsening kernels, SpMV shards, and vector
    /// reductions (`0` = ambient rayon fan-out). Bit-identical results at
    /// every value — the float reductions are deterministic
    /// chunked-pairwise (see `mlgp_linalg::vecops`).
    pub threads: usize,
}

impl Default for MsbConfig {
    fn default() -> Self {
        Self {
            coarsen_to: 100,
            rqi: RqiOptions {
                max_outer: 6,
                inner_iters: 50,
                tol: 1e-5,
                ..RqiOptions::default()
            },
            imbalance: 1.03,
            seed: 777,
            threads: 0,
        }
    }
}

/// Compute the Fiedler vector of `g` with the multilevel algorithm
/// (coarsest dense solve + per-level interpolation and RQI refinement).
pub fn msb_fiedler(g: &CsrGraph, cfg: &MsbConfig) -> Vec<f64> {
    assert!(g.n() >= 2);
    // RM coarsening, reusing the partitioner's coarsening machinery.
    let ml = MlConfig {
        matching: MatchingScheme::Random,
        coarsen_to: cfg.coarsen_to,
        seed: cfg.seed,
        threads: cfg.threads,
        ..MlConfig::default()
    };
    let mut rng = mlgp_graph::rng::seeded(cfg.seed);
    let h = coarsen(g, &ml, &mut rng);
    let coarsest = h.coarsest();
    let mut x = if coarsest.n() >= 2 {
        fiedler_dense(coarsest).1
    } else {
        vec![0.0; coarsest.n()]
    };
    // Interpolate and refine up the hierarchy.
    for level in (0..h.levels() - 1).rev() {
        let cmap = &h.cmaps[level];
        let fine = &h.graphs[level];
        let interp: Vec<f64> = cmap.iter().map(|&c| x[c as usize]).collect();
        x = refine_fiedler(fine, &interp, cfg);
    }
    // If no coarsening happened, refine the dense solution of g itself.
    if h.levels() == 1 && g.n() > 2 {
        let x0 = x.clone();
        x = refine_fiedler(g, &x0, cfg);
    }
    x
}

/// Refine an interpolated Fiedler approximation on one level: RQI first
/// (cheap, cubic near the answer), falling back to warm-started Lanczos
/// when RQI stalls or locks onto a higher eigenpair — RQI converges to the
/// eigenvalue *nearest* its starting Rayleigh quotient, which after a crude
/// piecewise-constant interpolation is not always λ₂.
fn refine_fiedler(fine: &CsrGraph, interp: &[f64], cfg: &MsbConfig) -> Vec<f64> {
    let lap = Laplacian::with_threads(fine, cfg.threads);
    let rho_interp = lap.rayleigh(interp);
    let rqi_opts = RqiOptions {
        threads: cfg.threads,
        ..cfg.rqi
    };
    let r = rqi_refine(&lap, interp, &rqi_opts);
    let converged = r.residual <= 10.0 * cfg.rqi.tol * lap.spectral_upper_bound();
    let not_escaped = r.lambda <= rho_interp * 1.05 + 1e-12;
    if converged && not_escaped {
        return r.vector;
    }
    lanczos_fiedler_with_start(
        &lap,
        interp,
        &LanczosOptions {
            max_steps: 60,
            max_restarts: 4,
            tol: 1e-6,
            seed: cfg.seed,
            threads: cfg.threads,
        },
    )
    .vector
}

/// MSB bisection with explicit weight targets.
pub fn msb_bisect_targets(g: &CsrGraph, cfg: &MsbConfig, target: [Wgt; 2]) -> Vec<u8> {
    let bt = BalanceTargets::new(target, cfg.imbalance);
    let f = msb_fiedler(g, cfg);
    split_by_values(g, &f, &bt)
}

/// MSB bisection into equal halves. Returns `(part, cut)`.
pub fn msb_bisect(g: &CsrGraph, cfg: &MsbConfig) -> (Vec<u8>, Wgt) {
    let total = g.total_vwgt();
    let part = msb_bisect_targets(g, cfg, [total / 2, total - total / 2]);
    let cut = mlgp_part::edge_cut_bisection(g, &part);
    (part, cut)
}

/// MSB-KL bisection: MSB followed by Kernighan-Lin refinement of the final
/// partition.
pub fn msb_kl_bisect_targets(g: &CsrGraph, cfg: &MsbConfig, target: [Wgt; 2]) -> Vec<u8> {
    let part = msb_bisect_targets(g, cfg, target);
    let bt = BalanceTargets::new(target, cfg.imbalance);
    let mut state = BisectState::new(g, part);
    let ml = MlConfig::default();
    refine_level(&mut state, &bt, RefinementPolicy::KernighanLin, &ml, g.n());
    state.part
}

/// k-way MSB by recursive bisection.
pub fn msb_kway(g: &CsrGraph, k: usize, cfg: &MsbConfig) -> Vec<u32> {
    recursive_kway_with(g, k, &|sub: &CsrGraph, targets, salt| {
        let mut c = *cfg;
        c.seed = cfg.seed.wrapping_add(salt);
        msb_bisect_targets(sub, &c, targets)
    })
}

/// k-way MSB-KL by recursive bisection.
pub fn msb_kl_kway(g: &CsrGraph, k: usize, cfg: &MsbConfig) -> Vec<u32> {
    recursive_kway_with(g, k, &|sub: &CsrGraph, targets, salt| {
        let mut c = *cfg;
        c.seed = cfg.seed.wrapping_add(salt);
        msb_kl_bisect_targets(sub, &c, targets)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlgp_graph::generators::{grid2d, tri_mesh2d};
    use mlgp_part::metrics::{edge_cut_kway, imbalance, part_weights};

    #[test]
    fn msb_fiedler_close_to_true_on_medium_grid() {
        // 24x12 grid: λ2 = 2(1 - cos(pi/24)), simple. Check the Rayleigh
        // quotient of the multilevel vector approaches it.
        let g = grid2d(24, 12);
        let f = msb_fiedler(&g, &MsbConfig::default());
        let lap = Laplacian::new(&g);
        let rho = lap.rayleigh(&f);
        let l2 = 2.0 * (1.0 - (std::f64::consts::PI / 24.0).cos());
        assert!((rho - l2).abs() < 0.05 * l2.max(1e-3), "rho {rho} vs {l2}");
    }

    #[test]
    fn msb_bisects_grid_sanely() {
        let g = grid2d(24, 24);
        let (part, cut) = msb_bisect(&g, &MsbConfig::default());
        let bt = BalanceTargets::even(g.total_vwgt(), 1.05);
        let pw = [
            part.iter().filter(|&&p| p == 0).count() as Wgt,
            part.iter().filter(|&&p| p == 1).count() as Wgt,
        ];
        assert!(bt.balanced(pw), "{pw:?}");
        // Optimal is 24; spectral median on a square grid should be close.
        assert!(cut <= 40, "cut {cut}");
    }

    #[test]
    fn msb_kl_never_worse_than_msb() {
        let g = tri_mesh2d(20, 20, 5);
        let cfg = MsbConfig::default();
        let (_, msb_cut) = msb_bisect(&g, &cfg);
        let total = g.total_vwgt();
        let part = msb_kl_bisect_targets(&g, &cfg, [total / 2, total - total / 2]);
        let kl_cut = mlgp_part::edge_cut_bisection(&g, &part);
        assert!(kl_cut <= msb_cut, "KL {kl_cut} vs MSB {msb_cut}");
    }

    #[test]
    fn msb_kway_produces_balanced_parts() {
        let g = grid2d(20, 20);
        let part = msb_kway(&g, 4, &MsbConfig::default());
        let w = part_weights(&g, &part, 4);
        assert!(w.iter().all(|&x| x > 0), "{w:?}");
        assert!(imbalance(&g, &part, 4) < 1.12);
        assert!(edge_cut_kway(&g, &part) > 0);
    }
}
