//! Chaco-ML analogue: the Hendrickson-Leland multilevel partitioner as
//! described in §4.2 of the paper — random matching during coarsening,
//! spectral bisection of the coarsest graph, and Kernighan-Lin refinement
//! applied **every other** uncoarsening level.

use mlgp_graph::{CsrGraph, Wgt};
use mlgp_part::initpart::initial_partition_traced;
use mlgp_part::kway::recursive_kway_with;
use mlgp_part::refine::fm::BalanceTargets;
use mlgp_part::refine::{refine_level, BisectState};
use mlgp_part::{coarsen, InitialPartitioning, MatchingScheme, MlConfig, RefinementPolicy};
use mlgp_trace::Trace;

/// Configuration for the Chaco-ML baseline.
#[derive(Clone, Copy, Debug)]
pub struct ChacoMlConfig {
    /// Coarsening threshold.
    pub coarsen_to: usize,
    /// Allowed imbalance.
    pub imbalance: f64,
    /// Seed for the random matchings.
    pub seed: u64,
    /// Worker threads for the coarsening kernels and the spectral solve
    /// (`0` = ambient rayon fan-out). Bit-identical results at every
    /// value.
    pub threads: usize,
}

impl Default for ChacoMlConfig {
    fn default() -> Self {
        Self {
            coarsen_to: 100,
            imbalance: 1.03,
            seed: 1919,
            threads: 0,
        }
    }
}

/// Chaco-ML bisection with explicit weight targets.
pub fn chaco_ml_bisect_targets(g: &CsrGraph, cfg: &ChacoMlConfig, target: [Wgt; 2]) -> Vec<u8> {
    let n = g.n();
    if n == 0 {
        return Vec::new();
    }
    let ml = MlConfig {
        matching: MatchingScheme::Random,
        initial: InitialPartitioning::Spectral,
        refinement: RefinementPolicy::KernighanLin,
        coarsen_to: cfg.coarsen_to,
        imbalance: cfg.imbalance,
        seed: cfg.seed,
        threads: cfg.threads,
        ..MlConfig::default()
    };
    let bt = BalanceTargets::new(target, cfg.imbalance);
    let mut rng = mlgp_graph::rng::seeded(cfg.seed);
    let h = coarsen(g, &ml, &mut rng);
    // Spectral bisection of the coarsest graph.
    let mut part = initial_partition_traced(
        h.coarsest(),
        &bt,
        InitialPartitioning::Spectral,
        1,
        &mut rng,
        cfg.threads,
        &Trace::disabled(),
    );
    {
        let mut state = BisectState::new(h.coarsest(), part);
        refine_level(&mut state, &bt, RefinementPolicy::KernighanLin, &ml, n);
        part = state.part;
    }
    // Uncoarsen; KL every other level, but always at the finest level so
    // the final partition is locally optimal (as Chaco does).
    for level in (0..h.levels() - 1).rev() {
        let fine_part = h.project(level, &part);
        let depth_from_coarsest = h.levels() - 1 - level;
        let mut state = BisectState::new(&h.graphs[level], fine_part);
        if depth_from_coarsest.is_multiple_of(2) || level == 0 {
            refine_level(&mut state, &bt, RefinementPolicy::KernighanLin, &ml, n);
        }
        part = state.part;
    }
    part
}

/// Chaco-ML bisection into equal halves. Returns `(part, cut)`.
pub fn chaco_ml_bisect(g: &CsrGraph, cfg: &ChacoMlConfig) -> (Vec<u8>, Wgt) {
    let total = g.total_vwgt();
    let part = chaco_ml_bisect_targets(g, cfg, [total / 2, total - total / 2]);
    let cut = mlgp_part::edge_cut_bisection(g, &part);
    (part, cut)
}

/// k-way Chaco-ML by recursive bisection.
pub fn chaco_ml_kway(g: &CsrGraph, k: usize, cfg: &ChacoMlConfig) -> Vec<u32> {
    recursive_kway_with(g, k, &|sub: &CsrGraph, targets, salt| {
        let mut c = *cfg;
        c.seed = cfg.seed.wrapping_add(salt);
        chaco_ml_bisect_targets(sub, &c, targets)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlgp_graph::generators::{grid2d, tri_mesh2d};
    use mlgp_part::metrics::{edge_cut_kway, imbalance, part_weights};

    #[test]
    fn bisects_grid_sanely() {
        let g = grid2d(24, 24);
        let (part, cut) = chaco_ml_bisect(&g, &ChacoMlConfig::default());
        let pw = [
            part.iter().filter(|&&p| p == 0).count() as Wgt,
            part.iter().filter(|&&p| p == 1).count() as Wgt,
        ];
        let bt = BalanceTargets::even(g.total_vwgt(), 1.05);
        assert!(bt.balanced(pw), "{pw:?}");
        assert!(cut <= 40, "cut {cut}");
    }

    #[test]
    fn kway_balanced_on_mesh() {
        let g = tri_mesh2d(18, 18, 2);
        let part = chaco_ml_kway(&g, 4, &ChacoMlConfig::default());
        let w = part_weights(&g, &part, 4);
        assert!(w.iter().all(|&x| x > 0), "{w:?}");
        assert!(imbalance(&g, &part, 4) < 1.15);
        assert!(edge_cut_kway(&g, &part) > 0);
    }

    #[test]
    fn deterministic() {
        let g = grid2d(16, 16);
        let a = chaco_ml_bisect(&g, &ChacoMlConfig::default());
        let b = chaco_ml_bisect(&g, &ChacoMlConfig::default());
        assert_eq!(a, b);
    }
}
