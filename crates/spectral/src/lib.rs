//! # mlgp-spectral
//!
//! The spectral partitioning baselines the paper compares against (§4.2):
//!
//! * **MSB** — multilevel spectral bisection (Barnard-Simon): multilevel
//!   Fiedler computation with per-level RQI refinement;
//! * **MSB-KL** — MSB followed by Kernighan-Lin refinement;
//! * **Chaco-ML** — the Hendrickson-Leland multilevel scheme (random
//!   matching + spectral coarse partition + KL every other level).
//!
//! All three are lifted to k-way by recursive bisection, exactly as the
//! paper's Figures 1-4 evaluate them.
//!
//! ```
//! use mlgp_spectral::{msb_bisect, MsbConfig};
//! let g = mlgp_graph::generators::grid2d(24, 24);
//! let (part, cut) = msb_bisect(&g, &MsbConfig::default());
//! assert_eq!(part.len(), g.n());
//! assert!(cut <= 40); // optimal straight cut is 24
//! ```

pub mod chaco;
pub mod msb;

pub use chaco::{chaco_ml_bisect, chaco_ml_bisect_targets, chaco_ml_kway, ChacoMlConfig};
pub use msb::{
    msb_bisect, msb_bisect_targets, msb_fiedler, msb_kl_bisect_targets, msb_kl_kway, msb_kway,
    MsbConfig,
};
