//! Rayleigh-quotient iteration (RQI) for refining an approximate Fiedler
//! vector.
//!
//! This is the workhorse of multilevel spectral bisection (Barnard-Simon):
//! the Fiedler vector of a coarse graph, interpolated onto the next finer
//! graph, is already a good approximation; a few RQI steps — each an
//! indefinite solve `(L − ρI) y = x` done with MINRES — converge it
//! cubically to the fine graph's Fiedler pair.

use crate::laplacian::{Laplacian, Shifted, SymOp};
use crate::minres::{minres, MinresOptions};
use crate::vecops::{axpy, deflate_constant, norm, normalize};

/// Options for [`rqi_refine`].
#[derive(Clone, Copy, Debug)]
pub struct RqiOptions {
    /// Maximum RQI (outer) iterations.
    pub max_outer: usize,
    /// MINRES iteration cap per outer step.
    pub inner_iters: usize,
    /// Convergence: `‖Lx − ρx‖ ≤ tol · max_degree`.
    pub tol: f64,
    /// Worker threads for the vector kernels, inner MINRES solves, and
    /// SpMV (`0` = ambient rayon fan-out). Bit-identical results at every
    /// value — all float reductions are deterministic chunked-pairwise.
    pub threads: usize,
}

impl Default for RqiOptions {
    fn default() -> Self {
        Self {
            max_outer: 10,
            inner_iters: 60,
            tol: 1e-6,
            threads: 0,
        }
    }
}

/// Result of RQI refinement.
#[derive(Clone, Debug)]
pub struct RqiResult {
    /// Refined eigenvalue estimate (Rayleigh quotient).
    pub lambda: f64,
    /// Refined unit eigenvector, orthogonal to constants.
    pub vector: Vec<f64>,
    /// Final eigen-residual `‖Lx − ρx‖`.
    pub residual: f64,
    /// Outer iterations performed.
    pub outer_iters: usize,
}

/// Refine `x0` toward the Fiedler pair of `lap`.
pub fn rqi_refine(lap: &Laplacian<'_>, x0: &[f64], opts: &RqiOptions) -> RqiResult {
    crate::vecops::with_fanout(opts.threads, || rqi_refine_body(lap, x0, opts))
}

fn rqi_refine_body(lap: &Laplacian<'_>, x0: &[f64], opts: &RqiOptions) -> RqiResult {
    let n = lap.dim();
    assert_eq!(x0.len(), n);
    let mut x = x0.to_vec();
    deflate_constant(&mut x);
    if normalize(&mut x) == 0.0 {
        // Nothing to refine from; use a ramp.
        x = (0..n).map(|i| i as f64).collect();
        deflate_constant(&mut x);
        normalize(&mut x);
    }
    let scale = lap.spectral_upper_bound().max(1.0);
    let mut rho = lap.rayleigh(&x);
    let mut lx = vec![0.0; n];
    let mut outer = 0;
    let mut residual = f64::INFINITY;
    for it in 0..opts.max_outer {
        outer = it;
        lap.apply(&x, &mut lx);
        let mut r = lx.clone();
        axpy(-rho, &x, &mut r);
        residual = norm(&r);
        if residual <= opts.tol * scale {
            break;
        }
        let shifted = Shifted {
            op: lap,
            sigma: rho,
        };
        let solve = minres(
            &shifted,
            &x,
            &MinresOptions {
                max_iters: opts.inner_iters,
                tol: 1e-10,
                deflate: true,
                // The outer with_fanout cap is already installed; inner
                // solves follow ambient.
                threads: 0,
            },
        );
        let mut y = solve.x;
        deflate_constant(&mut y);
        if normalize(&mut y) == 0.0 {
            break; // solver collapsed; keep current pair
        }
        x = y;
        rho = lap.rayleigh(&x);
        outer = it + 1;
    }
    // Final residual for the reported pair.
    lap.apply(&x, &mut lx);
    let mut r = lx;
    axpy(-rho, &x, &mut r);
    residual = residual.min(norm(&r));
    RqiResult {
        lambda: rho,
        vector: x,
        residual,
        outer_iters: outer,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::fiedler_dense;
    use mlgp_graph::generators::{grid2d, tri_mesh2d};

    #[test]
    fn refines_noisy_fiedler_to_exact() {
        let g = grid2d(10, 4); // rectangular => simple lambda2
        let lap = Laplacian::new(&g);
        let (l2, f) = fiedler_dense(&g);
        // Perturb the true vector.
        let noisy: Vec<f64> = f
            .iter()
            .enumerate()
            .map(|(i, v)| v + 0.1 * ((i * 7 % 11) as f64 - 5.0) / 5.0)
            .collect();
        let r = rqi_refine(&lap, &noisy, &RqiOptions::default());
        assert!((r.lambda - l2).abs() < 1e-6, "{} vs {}", r.lambda, l2);
        assert!(r.residual < 1e-5 * lap.spectral_upper_bound());
    }

    #[test]
    fn converges_from_rough_start_on_mesh() {
        let g = tri_mesh2d(12, 12, 3);
        let lap = Laplacian::new(&g);
        // Linear ramp: decent but unconverged initial guess.
        let x0: Vec<f64> = (0..g.n()).map(|i| (i % 12) as f64).collect();
        let r = rqi_refine(&lap, &x0, &RqiOptions::default());
        assert!(r.lambda > 0.0);
        assert!(
            r.residual < 1e-4 * lap.spectral_upper_bound(),
            "res {}",
            r.residual
        );
        assert!(r.vector.iter().sum::<f64>().abs() < 1e-8);
    }

    #[test]
    fn already_converged_input_exits_immediately() {
        let g = grid2d(8, 3);
        let lap = Laplacian::new(&g);
        let (_, f) = fiedler_dense(&g);
        let r = rqi_refine(&lap, &f, &RqiOptions::default());
        assert_eq!(r.outer_iters, 0);
    }
}
