//! # mlgp-linalg
//!
//! Numerical substrate for the spectral partitioning methods in the ICPP'95
//! reproduction: matrix-free graph Laplacians, a dense Jacobi eigensolver
//! (coarsest graphs), Lanczos with full reorthogonalization (Fiedler pairs
//! from scratch), MINRES for symmetric indefinite solves, and
//! Rayleigh-quotient iteration (multilevel Fiedler refinement à la
//! Barnard-Simon).
//!
//! ```
//! // lambda_2 of the path P_n is 2(1 - cos(pi/n)).
//! let g = mlgp_graph::generators::grid2d(16, 1);
//! let (l2, v) = mlgp_linalg::fiedler_vector(&g, 7);
//! let expect = 2.0 * (1.0 - (std::f64::consts::PI / 16.0).cos());
//! assert!((l2 - expect).abs() < 1e-6);
//! assert_eq!(v.len(), 16);
//! ```

pub mod dense;
pub mod lanczos;
pub mod laplacian;
pub mod minres;
pub mod rqi;
pub mod vecops;

pub use dense::{fiedler_dense, jacobi_eigen, DenseSym, EigenDecomposition};
pub use lanczos::{lanczos_fiedler, lanczos_fiedler_with_start, LanczosOptions, LanczosResult};
pub use laplacian::{Laplacian, Shifted, SymOp};
pub use minres::{minres, MinresOptions, MinresResult};
pub use rqi::{rqi_refine, RqiOptions, RqiResult};
pub use vecops::{chunked_reduce, with_fanout, REDUCTION_CHUNK};

use mlgp_graph::CsrGraph;
use mlgp_trace::{Event, Trace};

/// [`lanczos_fiedler`] recording an `eigen` event (solver `"lanczos"`,
/// matvec count, final residual) and an `eigen_matvec` counter on `trace`.
pub fn lanczos_fiedler_traced<O: SymOp>(
    op: &O,
    opts: &LanczosOptions,
    trace: &Trace,
) -> LanczosResult {
    let r = lanczos_fiedler(op, opts);
    trace.record(|| Event::Eigen {
        solver: "lanczos",
        n: op.dim(),
        iters: r.matvecs,
        residual: r.residual,
    });
    trace.count("eigen_matvec", r.matvecs as u64);
    r
}

/// [`minres`] recording an `eigen` event (solver `"minres"`, Krylov steps,
/// final residual) and an `eigen_matvec` counter (one SpMV per step) on
/// `trace`.
pub fn minres_traced<O: SymOp>(
    op: &O,
    b: &[f64],
    opts: &MinresOptions,
    trace: &Trace,
) -> MinresResult {
    let r = minres(op, b, opts);
    trace.record(|| Event::Eigen {
        solver: "minres",
        n: op.dim(),
        iters: r.iters,
        residual: r.residual,
    });
    trace.count("eigen_matvec", r.iters as u64);
    r
}

/// [`rqi_refine`] recording an `eigen` event (solver `"rqi"`, outer
/// iterations, final eigen-residual) on `trace`, plus the operator-level
/// `spmv_calls`/`spmv_rows` deltas (RQI's matvecs hide inside the inner
/// MINRES solves, so the Laplacian's own tally is the honest count).
pub fn rqi_refine_traced(
    lap: &Laplacian<'_>,
    x0: &[f64],
    opts: &RqiOptions,
    trace: &Trace,
) -> RqiResult {
    let (calls0, rows0) = (lap.spmv_calls(), lap.spmv_rows());
    let r = rqi_refine(lap, x0, opts);
    trace.record(|| Event::Eigen {
        solver: "rqi",
        n: lap.dim(),
        iters: r.outer_iters,
        residual: r.residual,
    });
    trace.count("eigen_matvec", lap.spmv_calls() - calls0);
    trace.count("spmv_calls", lap.spmv_calls() - calls0);
    trace.count("spmv_rows", lap.spmv_rows() - rows0);
    r
}

/// Size threshold below which the dense Jacobi path is used for Fiedler
/// vectors; above it, Lanczos.
pub const DENSE_FIEDLER_LIMIT: usize = 320;

/// Compute `(λ₂, fiedler vector)` of a connected graph, dispatching between
/// the dense and iterative solvers by size.
pub fn fiedler_vector(g: &CsrGraph, seed: u64) -> (f64, Vec<f64>) {
    fiedler_vector_traced(g, seed, &Trace::disabled())
}

/// [`fiedler_vector`] recording an `eigen` event per solve (the dense path
/// reports solver `"dense-jacobi"` with zero iterations and residual — it
/// is direct to machine precision).
pub fn fiedler_vector_traced(g: &CsrGraph, seed: u64, trace: &Trace) -> (f64, Vec<f64>) {
    fiedler_vector_threads_traced(g, seed, 0, trace)
}

/// [`fiedler_vector_traced`] with an explicit worker-thread fan-out for
/// the Lanczos path (`0` = ambient rayon fan-out). Bit-identical results
/// at every value; the Lanczos path additionally records `spmv_calls` /
/// `spmv_rows` counters from the Laplacian's SpMV tally.
pub fn fiedler_vector_threads_traced(
    g: &CsrGraph,
    seed: u64,
    threads: usize,
    trace: &Trace,
) -> (f64, Vec<f64>) {
    assert!(g.n() >= 2);
    if g.n() <= DENSE_FIEDLER_LIMIT {
        let (lambda, vector) = fiedler_dense(g);
        trace.record(|| Event::Eigen {
            solver: "dense-jacobi",
            n: g.n(),
            iters: 0,
            residual: 0.0,
        });
        (lambda, vector)
    } else {
        let lap = Laplacian::with_threads(g, threads);
        let r = lanczos_fiedler_traced(
            &lap,
            &LanczosOptions {
                seed,
                threads,
                ..LanczosOptions::default()
            },
            trace,
        );
        trace.count("spmv_calls", lap.spmv_calls());
        trace.count("spmv_rows", lap.spmv_rows());
        (r.lambda, r.vector)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlgp_graph::generators::grid2d;

    #[test]
    fn dispatch_agrees_across_threshold() {
        // 18x18 = 324 > limit forces Lanczos; 17x17 = 289 uses dense.
        let small = grid2d(17, 17);
        let large = grid2d(18, 18);
        let (l_small, _) = fiedler_vector(&small, 1);
        let (l_large, _) = fiedler_vector(&large, 1);
        // λ₂ of an n×n grid is 2(1 − cos(π/n)).
        let expect = |n: f64| 2.0 * (1.0 - (std::f64::consts::PI / n).cos());
        assert!((l_small - expect(17.0)).abs() < 1e-5, "{l_small}");
        assert!((l_large - expect(18.0)).abs() < 1e-4, "{l_large}");
    }
}
