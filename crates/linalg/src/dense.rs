//! Dense symmetric eigensolver (cyclic Jacobi).
//!
//! The multilevel schemes only ever need dense eigendecompositions of tiny
//! matrices: the coarsest graph (|V| < 100 by §3.2 of the paper) and the
//! Lanczos tridiagonal projections (a few hundred at most). Cyclic Jacobi is
//! simple, unconditionally stable, and plenty fast at those sizes.

/// Row-major dense symmetric matrix.
#[derive(Clone, Debug)]
pub struct DenseSym {
    n: usize,
    a: Vec<f64>,
}

impl DenseSym {
    /// Zero matrix of dimension `n`.
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            a: vec![0.0; n * n],
        }
    }

    /// Dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Entry accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.a[i * self.n + j]
    }

    /// Set `a[i][j]` and `a[j][i]`.
    #[inline]
    pub fn set_sym(&mut self, i: usize, j: usize, v: f64) {
        self.a[i * self.n + j] = v;
        self.a[j * self.n + i] = v;
    }

    /// Build the dense Laplacian of a graph.
    pub fn laplacian(g: &mlgp_graph::CsrGraph) -> Self {
        let n = g.n();
        let mut m = Self::zeros(n);
        for v in 0..n as mlgp_graph::Vid {
            let mut deg = 0.0;
            for (u, w) in g.adj(v) {
                deg += w as f64;
                m.a[v as usize * n + u as usize] = -(w as f64);
            }
            m.a[v as usize * n + v as usize] = deg;
        }
        m
    }
}

/// Full eigendecomposition of a dense symmetric matrix.
///
/// Returns eigenvalues in ascending order with matching eigenvectors:
/// `vectors[k]` is the unit eigenvector of `values[k]`.
#[derive(Debug)]
pub struct EigenDecomposition {
    /// Eigenvalues, ascending.
    pub values: Vec<f64>,
    /// `vectors[k][i]` = i-th component of the k-th eigenvector.
    pub vectors: Vec<Vec<f64>>,
}

/// Cyclic Jacobi eigendecomposition. Converges quadratically; the sweep
/// count is bounded defensively.
pub fn jacobi_eigen(m: &DenseSym) -> EigenDecomposition {
    let n = m.n;
    let mut a = m.a.clone();
    // v starts as identity; columns accumulate the eigenvectors.
    let mut v = vec![0.0; n * n];
    for i in 0..n {
        v[i * n + i] = 1.0;
    }
    let idx = |i: usize, j: usize| i * n + j;
    for _sweep in 0..100 {
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += a[idx(i, j)] * a[idx(i, j)];
            }
        }
        if off.sqrt() < 1e-12 * (1.0 + frobenius(&a, n)) {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a[idx(p, q)];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = a[idx(p, p)];
                let aqq = a[idx(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                // A <- J' A J on rows/cols p and q.
                for k in 0..n {
                    let akp = a[idx(k, p)];
                    let akq = a[idx(k, q)];
                    a[idx(k, p)] = c * akp - s * akq;
                    a[idx(k, q)] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[idx(p, k)];
                    let aqk = a[idx(q, k)];
                    a[idx(p, k)] = c * apk - s * aqk;
                    a[idx(q, k)] = s * apk + c * aqk;
                }
                // Accumulate rotations into v (columns are eigenvectors).
                for k in 0..n {
                    let vkp = v[idx(k, p)];
                    let vkq = v[idx(k, q)];
                    v[idx(k, p)] = c * vkp - s * vkq;
                    v[idx(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| a[idx(i, i)].total_cmp(&a[idx(j, j)]));
    let values: Vec<f64> = order.iter().map(|&i| a[idx(i, i)]).collect();
    let vectors: Vec<Vec<f64>> = order
        .iter()
        .map(|&col| (0..n).map(|row| v[idx(row, col)]).collect())
        .collect();
    EigenDecomposition { values, vectors }
}

fn frobenius(a: &[f64], n: usize) -> f64 {
    a[..n * n].iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Fiedler vector of a small graph via dense Jacobi: the eigenvector of the
/// second-smallest Laplacian eigenvalue. Returns `(lambda2, vector)`.
///
/// The graph should be connected; for a disconnected graph the returned
/// eigenvalue is ~0 and the vector separates components, which is still a
/// usable bisection direction.
pub fn fiedler_dense(g: &mlgp_graph::CsrGraph) -> (f64, Vec<f64>) {
    assert!(g.n() >= 2, "fiedler needs at least 2 vertices");
    let m = DenseSym::laplacian(g);
    let e = jacobi_eigen(&m);
    (e.values[1], e.vectors[1].clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vecops::{dot, norm};
    use mlgp_graph::GraphBuilder;

    #[test]
    fn diagonal_matrix() {
        let mut m = DenseSym::zeros(3);
        m.set_sym(0, 0, 3.0);
        m.set_sym(1, 1, 1.0);
        m.set_sym(2, 2, 2.0);
        let e = jacobi_eigen(&m);
        assert!((e.values[0] - 1.0).abs() < 1e-10);
        assert!((e.values[1] - 2.0).abs() < 1e-10);
        assert!((e.values[2] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn two_by_two() {
        let mut m = DenseSym::zeros(2);
        m.set_sym(0, 0, 2.0);
        m.set_sym(1, 1, 2.0);
        m.set_sym(0, 1, 1.0);
        let e = jacobi_eigen(&m);
        assert!((e.values[0] - 1.0).abs() < 1e-10);
        assert!((e.values[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn eigenpairs_satisfy_definition() {
        // Laplacian of the 4-cycle: eigenvalues 0, 2, 2, 4.
        let mut b = GraphBuilder::new(4);
        for i in 0..4 {
            b.add_edge(i, (i + 1) % 4);
        }
        let g = b.build();
        let m = DenseSym::laplacian(&g);
        let e = jacobi_eigen(&m);
        let expect = [0.0, 2.0, 2.0, 4.0];
        for (val, exp) in e.values.iter().zip(expect) {
            assert!((val - exp).abs() < 1e-9, "{val} vs {exp}");
        }
        // Check A v = lambda v for each pair.
        for k in 0..4 {
            let v = &e.vectors[k];
            assert!((norm(v) - 1.0).abs() < 1e-9);
            for i in 0..4 {
                let av: f64 = (0..4).map(|j| m.get(i, j) * v[j]).sum();
                assert!((av - e.values[k] * v[i]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn fiedler_of_path_splits_in_middle() {
        // Path 0-1-2-3: Fiedler vector is monotone, sign change in middle.
        let mut b = GraphBuilder::new(4);
        for i in 0..3 {
            b.add_edge(i, i + 1);
        }
        let g = b.build();
        let (l2, f) = fiedler_dense(&g);
        // lambda2 of path P4 = 2 - sqrt(2) ≈ 0.5858
        assert!((l2 - (2.0 - 2.0_f64.sqrt())).abs() < 1e-9, "{l2}");
        // Components are monotone (up to global sign).
        let s = if f[0] < f[3] { 1.0 } else { -1.0 };
        for w in f.windows(2) {
            assert!(s * (w[1] - w[0]) > 0.0);
        }
        // Orthogonal to constants.
        assert!(f.iter().sum::<f64>().abs() < 1e-9);
        let _ = dot(&f, &f);
    }

    #[test]
    fn fiedler_separates_weak_link() {
        // Two triangles joined by one edge: Fiedler signs split them.
        let mut b = GraphBuilder::new(6);
        b.add_edge(0, 1).add_edge(1, 2).add_edge(2, 0);
        b.add_edge(3, 4).add_edge(4, 5).add_edge(5, 3);
        b.add_edge(2, 3);
        let g = b.build();
        let (_, f) = fiedler_dense(&g);
        let sa = f[0].signum();
        assert_eq!(f[1].signum(), sa);
        assert_eq!(f[2].signum(), sa);
        assert_eq!(f[3].signum(), -sa);
        assert_eq!(f[4].signum(), -sa);
        assert_eq!(f[5].signum(), -sa);
    }
}
