//! The graph Laplacian as a matrix-free symmetric operator.
//!
//! Spectral bisection works with `L = D - A` where `A` is the weighted
//! adjacency matrix and `D` the diagonal of weighted degrees. The Fiedler
//! vector is the eigenvector of the second-smallest eigenvalue of `L`.

use std::sync::atomic::{AtomicU64, Ordering};

use mlgp_graph::{CsrGraph, Vid};

/// A symmetric linear operator `y = A x` on `R^n`.
pub trait SymOp {
    /// Dimension of the operator.
    fn dim(&self) -> usize;
    /// Compute `y = A x`. `y` is fully overwritten.
    fn apply(&self, x: &[f64], y: &mut [f64]);
}

/// Matrix-free weighted graph Laplacian.
///
/// The SpMV is sharded over vertex-row ranges — each `y[v]` depends only
/// on row `v` of the CSR arrays, so the result is bit-identical at every
/// fan-out. The [`Laplacian::with_threads`] knob caps the shard count
/// (`0` = ambient rayon fan-out); every apply is tallied in the
/// `spmv_calls` / `spmv_rows` telemetry counters (see
/// [`Laplacian::spmv_calls`]) which the traced solver wrappers export as
/// `spmv_*` trace counters.
#[derive(Debug)]
pub struct Laplacian<'a> {
    g: &'a CsrGraph,
    /// Cached weighted degrees (diagonal of `L`).
    deg: Vec<f64>,
    /// Shard fan-out for `apply`/`rayleigh` (0 = ambient).
    threads: usize,
    /// Number of `apply` (SpMV) calls performed through this operator.
    spmv_calls: AtomicU64,
    /// Total rows (vertex equations) computed across all `apply` calls.
    spmv_rows: AtomicU64,
}

impl<'a> Laplacian<'a> {
    /// Wrap a graph; precomputes the degree diagonal. Uses the ambient
    /// rayon fan-out for the SpMV shards.
    pub fn new(g: &'a CsrGraph) -> Self {
        Self::with_threads(g, 0)
    }

    /// [`Laplacian::new`] with an explicit shard fan-out (`0` = ambient,
    /// `1` = serial, `n` = advisory `n` shards). Purely a speed knob —
    /// the SpMV is row-sharded and bit-identical at every value.
    pub fn with_threads(g: &'a CsrGraph, threads: usize) -> Self {
        let deg = (0..g.n() as Vid)
            .map(|v| g.weighted_degree(v) as f64)
            .collect();
        Self {
            g,
            deg,
            threads,
            spmv_calls: AtomicU64::new(0),
            spmv_rows: AtomicU64::new(0),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &CsrGraph {
        self.g
    }

    /// The configured shard fan-out (0 = ambient).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// SpMV calls performed so far ([`SymOp::apply`] invocations).
    pub fn spmv_calls(&self) -> u64 {
        // RELAXED: statistic only — never feeds partitioning decisions.
        self.spmv_calls.load(Ordering::Relaxed)
    }

    /// Total vertex rows computed across all SpMV calls so far.
    pub fn spmv_rows(&self) -> u64 {
        // RELAXED: statistic only — never feeds partitioning decisions.
        self.spmv_rows.load(Ordering::Relaxed)
    }

    /// Weighted degree of vertex `v` (the diagonal entry `L[v][v]`).
    pub fn degree(&self, v: Vid) -> f64 {
        self.deg[v as usize]
    }

    /// Upper bound on the spectrum: `max_v 2 * deg(v)` (Gershgorin).
    pub fn spectral_upper_bound(&self) -> f64 {
        2.0 * self.deg.iter().cloned().fold(0.0, f64::max)
    }

    /// Rayleigh quotient `x' L x / x' x`, computed edge-wise for stability:
    /// `x' L x = Σ_{(u,v) ∈ E} w_uv (x_u − x_v)²`. Both reductions use the
    /// deterministic chunked-pairwise tree (`vecops::chunked_reduce`), so
    /// the value is identical at every thread count.
    pub fn rayleigh(&self, x: &[f64]) -> f64 {
        let xx = crate::vecops::dot_threads(x, x, self.threads);
        if xx == 0.0 {
            return 0.0;
        }
        let num = crate::vecops::chunked_reduce(self.g.n(), self.threads, |lo, hi| {
            let mut acc = 0.0;
            for v in lo as Vid..hi as Vid {
                let xv = x[v as usize];
                for (u, w) in self.g.adj(v) {
                    if u > v {
                        let d = xv - x[u as usize];
                        acc += w as f64 * d * d;
                    }
                }
            }
            acc
        });
        num / xx
    }
}

/// Below this size the parallel SpMV's fork overhead exceeds the work.
const PAR_APPLY_THRESHOLD: usize = 20_000;

impl SymOp for Laplacian<'_> {
    fn dim(&self) -> usize {
        self.g.n()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.dim());
        debug_assert_eq!(y.len(), self.dim());
        // RELAXED: statistic only — telemetry counters, no data dependency.
        self.spmv_calls.fetch_add(1, Ordering::Relaxed);
        self.spmv_rows
            .fetch_add(self.dim() as u64, Ordering::Relaxed);
        let row = |v: Vid| -> f64 {
            let mut acc = self.deg[v as usize] * x[v as usize];
            for (u, w) in self.g.adj(v) {
                acc -= w as f64 * x[u as usize];
            }
            acc
        };
        let shard = |y: &mut [f64]| {
            use rayon::prelude::*;
            y.par_iter_mut()
                .enumerate()
                .with_min_len(4096)
                .for_each(|(v, yv)| {
                    *yv = row(v as Vid);
                });
        };
        if self.g.n() >= PAR_APPLY_THRESHOLD && self.threads != 1 {
            if self.threads == 0 {
                shard(y);
            } else {
                // LINT: allow(panic, pool construction fails only on thread-spawn resource exhaustion; no recovery is possible)
                rayon::ThreadPoolBuilder::new()
                    .num_threads(self.threads)
                    .build()
                    .expect("advisory thread pool")
                    .install(|| shard(y));
            }
        } else {
            for v in 0..self.g.n() as Vid {
                y[v as usize] = row(v);
            }
        }
    }
}

/// `A - sigma I` as an operator (for shift-and-invert style iterations).
#[derive(Debug)]
pub struct Shifted<'a, O: SymOp> {
    /// Base operator.
    pub op: &'a O,
    /// Shift subtracted from the diagonal.
    pub sigma: f64,
}

impl<O: SymOp> SymOp for Shifted<'_, O> {
    fn dim(&self) -> usize {
        self.op.dim()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.op.apply(x, y);
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi -= self.sigma * xi;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlgp_graph::GraphBuilder;

    fn path3() -> CsrGraph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).add_edge(1, 2);
        b.build()
    }

    #[test]
    fn laplacian_annihilates_constants() {
        let g = path3();
        let lap = Laplacian::new(&g);
        let x = vec![1.0; 3];
        let mut y = vec![9.0; 3];
        lap.apply(&x, &mut y);
        assert!(y.iter().all(|v| v.abs() < 1e-15));
    }

    #[test]
    fn laplacian_matches_matrix() {
        // L(path3) = [[1,-1,0],[-1,2,-1],[0,-1,1]]
        let g = path3();
        let lap = Laplacian::new(&g);
        let x = vec![1.0, 2.0, 4.0];
        let mut y = vec![0.0; 3];
        lap.apply(&x, &mut y);
        assert_eq!(y, vec![-1.0, -1.0, 2.0]);
    }

    #[test]
    fn rayleigh_consistent_with_apply() {
        let g = path3();
        let lap = Laplacian::new(&g);
        let x = vec![1.0, -2.0, 0.5];
        let mut y = vec![0.0; 3];
        lap.apply(&x, &mut y);
        let via_apply = crate::vecops::dot(&x, &y) / crate::vecops::dot(&x, &x);
        assert!((lap.rayleigh(&x) - via_apply).abs() < 1e-12);
    }

    #[test]
    fn shifted_operator() {
        let g = path3();
        let lap = Laplacian::new(&g);
        let sh = Shifted {
            op: &lap,
            sigma: 1.0,
        };
        let x = vec![1.0, 0.0, 0.0];
        let mut y = vec![0.0; 3];
        sh.apply(&x, &mut y);
        assert_eq!(y, vec![0.0, -1.0, 0.0]); // (L - I) e0
    }

    #[test]
    fn weighted_degrees() {
        let mut b = GraphBuilder::new(2);
        b.add_weighted_edge(0, 1, 5);
        let g = b.build();
        let lap = Laplacian::new(&g);
        assert_eq!(lap.degree(0), 5.0);
        assert_eq!(lap.spectral_upper_bound(), 10.0);
    }
}
