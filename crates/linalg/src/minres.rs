//! MINRES: Krylov solver for symmetric (possibly indefinite) systems.
//!
//! The Rayleigh-quotient iteration that refines interpolated Fiedler vectors
//! during multilevel spectral bisection must solve `(L − σI) y = x` with σ
//! inside the spectrum — an indefinite system. Chaco used SYMMLQ for this;
//! MINRES is the sibling Paige-Saunders method for the same problem class
//! and serves the identical role here (see DESIGN.md §2).

use crate::laplacian::SymOp;
use crate::vecops::{axpy, deflate_constant, dot, norm};

/// Options for [`minres`].
#[derive(Clone, Copy, Debug)]
pub struct MinresOptions {
    /// Iteration cap.
    pub max_iters: usize,
    /// Relative residual tolerance `‖b − Ax‖ ≤ tol·‖b‖`.
    pub tol: f64,
    /// Project every iterate off the constant vector. Required when solving
    /// shifted Laplacian systems restricted to the non-constant subspace.
    pub deflate: bool,
    /// Worker threads for the vector kernels and SpMV (`0` = ambient
    /// rayon fan-out). Bit-identical results at every value — the float
    /// reductions are deterministic chunked-pairwise.
    pub threads: usize,
}

impl Default for MinresOptions {
    fn default() -> Self {
        Self {
            max_iters: 100,
            tol: 1e-8,
            deflate: false,
            threads: 0,
        }
    }
}

/// Result of a MINRES solve.
#[derive(Clone, Debug)]
pub struct MinresResult {
    /// Approximate solution.
    pub x: Vec<f64>,
    /// Final (recurrence) residual norm estimate.
    pub residual: f64,
    /// Iterations performed.
    pub iters: usize,
}

/// Solve `A x = b` for symmetric `A`.
pub fn minres<O: SymOp>(op: &O, b: &[f64], opts: &MinresOptions) -> MinresResult {
    crate::vecops::with_fanout(opts.threads, || minres_body(op, b, opts))
}

fn minres_body<O: SymOp>(op: &O, b: &[f64], opts: &MinresOptions) -> MinresResult {
    let n = op.dim();
    assert_eq!(b.len(), n);
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    if opts.deflate {
        deflate_constant(&mut r);
    }
    let beta1 = norm(&r);
    if beta1 == 0.0 {
        return MinresResult {
            x,
            residual: 0.0,
            iters: 0,
        };
    }
    let mut v_prev = vec![0.0; n];
    let mut v: Vec<f64> = r.iter().map(|ri| ri / beta1).collect();
    let mut d = vec![0.0; n];
    let mut d_old = vec![0.0; n];
    let mut w = vec![0.0; n];
    let (mut c_old, mut c) = (1.0, 1.0);
    let (mut s_old, mut s) = (0.0, 0.0);
    let mut eta = beta1;
    let mut beta = beta1;
    let mut iters = 0;
    for k in 1..=opts.max_iters {
        iters = k;
        // Lanczos step.
        op.apply(&v, &mut w);
        if opts.deflate {
            deflate_constant(&mut w);
        }
        axpy(-beta, &v_prev, &mut w);
        let alpha = dot(&w, &v);
        axpy(-alpha, &v, &mut w);
        let beta_new = norm(&w);
        // Apply the two previous Givens rotations to the new column
        // [beta, alpha, beta_new] of T.
        let r1 = c * alpha - c_old * s * beta;
        let gamma = (r1 * r1 + beta_new * beta_new).sqrt().max(1e-300);
        let r2 = s * alpha + c_old * c * beta;
        let r3 = s_old * beta;
        let c_new = r1 / gamma;
        let s_new = beta_new / gamma;
        // Update the search direction and the solution.
        let mut d_new = v.clone();
        axpy(-r3, &d_old, &mut d_new);
        axpy(-r2, &d, &mut d_new);
        for di in &mut d_new {
            *di /= gamma;
        }
        axpy(c_new * eta, &d_new, &mut x);
        eta *= -s_new;
        // Shift state.
        std::mem::swap(&mut v_prev, &mut v);
        // w / beta_new becomes the next Lanczos vector.
        if beta_new > 0.0 {
            for (vi, wi) in v.iter_mut().zip(&w) {
                *vi = wi / beta_new;
            }
        }
        d_old = std::mem::replace(&mut d, d_new);
        c_old = c;
        c = c_new;
        s_old = s;
        s = s_new;
        beta = beta_new;
        if eta.abs() <= opts.tol * beta1 || beta_new < 1e-300 {
            break;
        }
    }
    if opts.deflate {
        deflate_constant(&mut x);
    }
    MinresResult {
        x,
        residual: eta.abs(),
        iters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laplacian::{Laplacian, Shifted};
    use mlgp_graph::generators::grid2d;
    use mlgp_graph::GraphBuilder;

    /// Dense symmetric operator for testing.
    struct DenseOp {
        n: usize,
        a: Vec<f64>,
    }
    impl SymOp for DenseOp {
        fn dim(&self) -> usize {
            self.n
        }
        fn apply(&self, x: &[f64], y: &mut [f64]) {
            for (i, yi) in y.iter_mut().enumerate() {
                *yi = (0..self.n).map(|j| self.a[i * self.n + j] * x[j]).sum();
            }
        }
    }

    #[test]
    fn solves_spd_system() {
        // A = [[4,1],[1,3]], b = [1,2] => x = [1/11, 7/11]
        let op = DenseOp {
            n: 2,
            a: vec![4.0, 1.0, 1.0, 3.0],
        };
        let r = minres(&op, &[1.0, 2.0], &MinresOptions::default());
        assert!((r.x[0] - 1.0 / 11.0).abs() < 1e-8, "{:?}", r.x);
        assert!((r.x[1] - 7.0 / 11.0).abs() < 1e-8);
    }

    #[test]
    fn solves_indefinite_system() {
        // A = diag(2, -1): indefinite; b = [2, 3] => x = [1, -3].
        let op = DenseOp {
            n: 2,
            a: vec![2.0, 0.0, 0.0, -1.0],
        };
        let r = minres(&op, &[2.0, 3.0], &MinresOptions::default());
        assert!((r.x[0] - 1.0).abs() < 1e-8);
        assert!((r.x[1] + 3.0).abs() < 1e-8);
    }

    #[test]
    fn zero_rhs() {
        let op = DenseOp {
            n: 2,
            a: vec![1.0, 0.0, 0.0, 1.0],
        };
        let r = minres(&op, &[0.0, 0.0], &MinresOptions::default());
        assert_eq!(r.x, vec![0.0, 0.0]);
        assert_eq!(r.iters, 0);
    }

    #[test]
    fn shifted_laplacian_solve_in_deflated_subspace() {
        // Solve (L - sigma I) y = b with b ⟂ 1, sigma between 0 and λ2:
        // the restricted operator is definite and the solve must succeed.
        let g = grid2d(5, 4);
        let lap = Laplacian::new(&g);
        let sh = Shifted {
            op: &lap,
            sigma: 0.05,
        };
        let mut b: Vec<f64> = (0..g.n()).map(|i| (i as f64).sin()).collect();
        deflate_constant(&mut b);
        let r = minres(
            &sh,
            &b,
            &MinresOptions {
                max_iters: 500,
                tol: 1e-10,
                deflate: true,
                ..Default::default()
            },
        );
        // Check true residual within the subspace.
        let mut ax = vec![0.0; g.n()];
        sh.apply(&r.x, &mut ax);
        deflate_constant(&mut ax);
        let mut res = ax;
        for (ri, bi) in res.iter_mut().zip(&b) {
            *ri -= bi;
        }
        assert!(norm(&res) < 1e-6 * norm(&b), "residual {}", norm(&res));
    }

    #[test]
    fn handles_path_graph_laplacian_shift() {
        let mut bld = GraphBuilder::new(3);
        bld.add_edge(0, 1).add_edge(1, 2);
        let g = bld.build();
        let lap = Laplacian::new(&g);
        let sh = Shifted {
            op: &lap,
            sigma: 0.5,
        };
        let mut b = vec![1.0, 0.0, -1.0];
        deflate_constant(&mut b);
        let r = minres(
            &sh,
            &b,
            &MinresOptions {
                deflate: true,
                ..Default::default()
            },
        );
        assert!(r.residual < 1e-6);
    }
}
