//! Lanczos iteration for the Fiedler (second-smallest) eigenpair of a graph
//! Laplacian.
//!
//! Full reorthogonalization is used — the coarse graphs this runs on are
//! small (spectral initial partitioning) or the run is explicitly the
//! expensive baseline (spectral nested dissection), so robustness beats
//! memory here. The Laplacian null space (constant vector) is deflated
//! explicitly, making the smallest Ritz value approximate λ₂.

use crate::dense::{jacobi_eigen, DenseSym};
use crate::laplacian::SymOp;
use crate::vecops::{axpy, deflate_constant, dot, normalize};
use mlgp_graph::rng::seeded;
use rand::RngExt;

/// Options for [`lanczos_fiedler`].
#[derive(Clone, Copy, Debug)]
pub struct LanczosOptions {
    /// Maximum Krylov dimension per restart cycle.
    pub max_steps: usize,
    /// Maximum number of restart cycles.
    pub max_restarts: usize,
    /// Relative residual tolerance `‖Lx − λx‖ ≤ tol·‖L‖`.
    pub tol: f64,
    /// RNG seed for the start vector.
    pub seed: u64,
    /// Worker threads for the vector kernels and SpMV (`0` = ambient
    /// rayon fan-out, `1` = serial, `n` = advisory `n` shards). Results
    /// are bit-identical for every value: all float reductions use the
    /// deterministic chunked-pairwise tree in `vecops`.
    pub threads: usize,
}

impl Default for LanczosOptions {
    fn default() -> Self {
        Self {
            max_steps: 100,
            max_restarts: 8,
            tol: 1e-7,
            seed: 0x1a2c,
            threads: 0,
        }
    }
}

/// Result of a Lanczos run.
#[derive(Clone, Debug)]
pub struct LanczosResult {
    /// Approximate second-smallest eigenvalue λ₂.
    pub lambda: f64,
    /// Unit eigenvector approximation (orthogonal to constants).
    pub vector: Vec<f64>,
    /// Final residual estimate `‖Lx − λx‖`.
    pub residual: f64,
    /// Total matrix-vector products performed.
    pub matvecs: usize,
}

/// Compute the Fiedler pair of `op` (a graph Laplacian or any symmetric
/// positive semidefinite operator whose null space is the constant vector).
pub fn lanczos_fiedler<O: SymOp>(op: &O, opts: &LanczosOptions) -> LanczosResult {
    lanczos_fiedler_impl(op, opts, None)
}

/// [`lanczos_fiedler`] warm-started from an approximate eigenvector (e.g.
/// a Fiedler vector interpolated from a coarser graph): the start vector
/// seeds the Krylov space, so a good approximation converges in few steps.
pub fn lanczos_fiedler_with_start<O: SymOp>(
    op: &O,
    start: &[f64],
    opts: &LanczosOptions,
) -> LanczosResult {
    lanczos_fiedler_impl(op, opts, Some(start))
}

fn lanczos_fiedler_impl<O: SymOp>(
    op: &O,
    opts: &LanczosOptions,
    start: Option<&[f64]>,
) -> LanczosResult {
    // One advisory cap at entry governs every inner kernel (vecops
    // reductions and the operator's SpMV shards when it follows ambient).
    crate::vecops::with_fanout(opts.threads, || lanczos_fiedler_body(op, opts, start))
}

fn lanczos_fiedler_body<O: SymOp>(
    op: &O,
    opts: &LanczosOptions,
    start: Option<&[f64]>,
) -> LanczosResult {
    let n = op.dim();
    assert!(n >= 2, "operator too small for a Fiedler pair");
    let mut x: Vec<f64> = match start {
        Some(s) => {
            assert_eq!(s.len(), n, "start vector dimension mismatch");
            s.to_vec()
        }
        None => {
            let mut rng = seeded(opts.seed);
            (0..n).map(|_| rng.random_range(-1.0..1.0)).collect()
        }
    };
    deflate_constant(&mut x);
    if normalize(&mut x) == 0.0 {
        // Degenerate start; fall back to a ramp.
        x = (0..n).map(|i| i as f64).collect();
        deflate_constant(&mut x);
        normalize(&mut x);
    }
    let mut matvecs = 0usize;
    // Operator scale for the relative tolerance.
    let mut scratch = vec![0.0; n];
    op.apply(&x, &mut scratch);
    matvecs += 1;
    let op_scale = crate::vecops::norm(&scratch).max(1.0);

    let mut best = LanczosResult {
        lambda: f64::INFINITY,
        vector: x.clone(),
        residual: f64::INFINITY,
        matvecs: 0,
    };

    for _restart in 0..opts.max_restarts.max(1) {
        let steps = opts.max_steps.min(n.saturating_sub(1)).max(1);
        let mut basis: Vec<Vec<f64>> = Vec::with_capacity(steps);
        let mut alphas: Vec<f64> = Vec::with_capacity(steps);
        let mut betas: Vec<f64> = Vec::with_capacity(steps);
        let mut v = x.clone();
        let mut w = vec![0.0; n];
        let mut beta_next = 0.0;
        for j in 0..steps {
            basis.push(v.clone());
            op.apply(&v, &mut w);
            matvecs += 1;
            let alpha = dot(&w, &v);
            alphas.push(alpha);
            axpy(-alpha, &v, &mut w);
            if j > 0 {
                let beta_prev = betas[j - 1];
                axpy(-beta_prev, &basis[j - 1], &mut w);
            }
            // Full reorthogonalization (twice is enough) + null-space
            // deflation.
            for _ in 0..2 {
                deflate_constant(&mut w);
                for q in &basis {
                    let c = dot(&w, q);
                    axpy(-c, q, &mut w);
                }
            }
            beta_next = normalize(&mut w);
            if beta_next < 1e-13 * op_scale {
                // Invariant subspace found; T is exact.
                break;
            }
            betas.push(beta_next);
            std::mem::swap(&mut v, &mut w);
        }
        let m = alphas.len();
        // Eigen-decompose the tridiagonal projection.
        let mut t = DenseSym::zeros(m);
        for i in 0..m {
            t.set_sym(i, i, alphas[i]);
            if i + 1 < m {
                t.set_sym(i, i + 1, betas[i]);
            }
        }
        let e = jacobi_eigen(&t);
        let s = &e.vectors[0];
        let lambda = e.values[0];
        // Ritz vector y = V s.
        let mut y = vec![0.0; n];
        for (q, &coef) in basis.iter().zip(s.iter()) {
            axpy(coef, q, &mut y);
        }
        deflate_constant(&mut y);
        normalize(&mut y);
        // Residual: either the cheap bound |beta_m * s_m| or exact.
        let cheap = if m < basis.len() + 1 && betas.len() >= m {
            (betas[m - 1] * s[m - 1]).abs()
        } else {
            (beta_next * s[m - 1]).abs()
        };
        let result = LanczosResult {
            lambda,
            vector: y.clone(),
            residual: cheap,
            matvecs,
        };
        if result.residual < best.residual || best.residual.is_infinite() {
            best = result;
        }
        if best.residual <= opts.tol * op_scale {
            break;
        }
        // Restart from the best Ritz vector.
        x = y;
    }
    // Report the exact residual of the returned pair.
    let mut lx = vec![0.0; n];
    op.apply(&best.vector, &mut lx);
    matvecs += 1;
    axpy(-best.lambda, &best.vector, &mut lx);
    best.residual = crate::vecops::norm(&lx);
    best.matvecs = matvecs;
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::fiedler_dense;
    use crate::laplacian::Laplacian;
    use mlgp_graph::generators::{grid2d, lshape};
    use mlgp_graph::GraphBuilder;

    #[test]
    fn matches_dense_on_path() {
        let mut b = GraphBuilder::new(10);
        for i in 0..9 {
            b.add_edge(i, i + 1);
        }
        let g = b.build();
        let lap = Laplacian::new(&g);
        let r = lanczos_fiedler(&lap, &LanczosOptions::default());
        let (l2, _) = fiedler_dense(&g);
        assert!((r.lambda - l2).abs() < 1e-6, "{} vs {}", r.lambda, l2);
        assert!(r.residual < 1e-5);
    }

    #[test]
    fn matches_dense_on_grid() {
        let g = grid2d(8, 8);
        let lap = Laplacian::new(&g);
        let r = lanczos_fiedler(&lap, &LanczosOptions::default());
        let (l2, dense_vec) = fiedler_dense(&g);
        assert!((r.lambda - l2).abs() < 1e-5, "{} vs {}", r.lambda, l2);
        // Vectors agree up to sign (λ₂ of the square grid is degenerate in
        // general; 8x8 grid has λ₂ simple? For nx==ny it is double.) Only
        // check the eigen-residual instead.
        let mut lx = vec![0.0; g.n()];
        lap.apply(&r.vector, &mut lx);
        axpy(-r.lambda, &r.vector, &mut lx);
        assert!(crate::vecops::norm(&lx) < 1e-5);
        let _ = dense_vec;
    }

    #[test]
    fn works_on_larger_irregular_graph() {
        let g = lshape(24);
        let lap = Laplacian::new(&g);
        let r = lanczos_fiedler(&lap, &LanczosOptions::default());
        assert!(
            r.lambda > 1e-6,
            "lambda2 must be positive on connected graph"
        );
        assert!(r.residual < 1e-4 * lap.spectral_upper_bound());
        // Orthogonal to constants.
        assert!(r.vector.iter().sum::<f64>().abs() < 1e-8);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = grid2d(6, 5);
        let lap = Laplacian::new(&g);
        let a = lanczos_fiedler(&lap, &LanczosOptions::default());
        let b = lanczos_fiedler(&lap, &LanczosOptions::default());
        assert_eq!(a.lambda, b.lambda);
        assert_eq!(a.vector, b.vector);
    }
}
