//! Dense vector kernels used by the iterative eigensolvers, built on
//! **deterministic chunked pairwise reductions**.
//!
//! The determinism contract of the rest of the workspace (bit-identical
//! output at any thread count for a fixed seed — DESIGN.md §10) only held
//! for integer reductions until this module; floating-point addition is
//! not associative, so naively parallelizing `dot`/`norm` would make the
//! eigensolvers' results depend on the fan-out. Every reduction here is
//! therefore computed the same way regardless of thread count:
//!
//! 1. the input is cut into fixed [`REDUCTION_CHUNK`]-element chunks
//!    (the *data* decides the chunk layout, never the thread count);
//! 2. each chunk is reduced serially (LLVM auto-vectorizes the inner
//!    loops — these are memory-bound level-1 BLAS operations);
//! 3. the per-chunk partials are combined by a **fixed-shape pairwise
//!    tree** (split at `len / 2`, recurse), again independent of how many
//!    threads produced them.
//!
//! The result differs from a naive left-to-right serial sum in the last
//! ulps (pairwise summation also has *better* worst-case error: O(log n)
//! vs O(n) ulp growth), but it is a pure function of the input — thread
//! counts, pool caps, and scheduling cannot perturb it. Elementwise
//! kernels (`axpy`, `scale`) are trivially deterministic and parallelize
//! over disjoint ranges.
//!
//! Every kernel has a `*_threads` variant taking an explicit fan-out
//! (`0` = ambient rayon fan-out, `1` = force serial, `n` = advisory `n`
//! shards); the plain names are ambient-fan-out conveniences. Inputs
//! below [`PAR_MIN_LEN`] always run inline — the fork overhead of the
//! scoped-thread shim exceeds the work there.

/// Elements per reduction chunk. 4096 f64s = 32 KiB, half a typical L1 —
/// small enough that a chunk's serial reduction stays cache-resident,
/// large enough that the pairwise tree over partials is negligible.
pub const REDUCTION_CHUNK: usize = 4096;

/// Inputs shorter than this run serially even when a fan-out is allowed:
/// spawning scoped threads costs more than reducing ~16 chunks.
pub const PAR_MIN_LEN: usize = 1 << 16;

/// Effective fan-out for a kernel: `threads` if nonzero, else the ambient
/// rayon fan-out (pool caps installed by callers apply).
#[inline]
fn fanout(threads: usize) -> usize {
    if threads == 0 {
        rayon::current_num_threads()
    } else {
        threads
    }
}

/// Combine partials with a fixed-shape pairwise tree (split at `len/2`).
/// The shape depends only on `p.len()`, never on the thread count.
fn pairwise_sum(p: &[f64]) -> f64 {
    match p.len() {
        0 => 0.0,
        1 => p[0],
        2 => p[0] + p[1],
        n => {
            let mid = n / 2;
            pairwise_sum(&p[..mid]) + pairwise_sum(&p[mid..])
        }
    }
}

/// Fill `partials[ci]` with `reduce_chunk(lo..hi)` for every
/// [`REDUCTION_CHUNK`]-sized chunk of `0..n`, fanning out to `threads`
/// when the input is large enough. The chunk layout — and therefore every
/// partial — is identical on the serial and parallel paths.
fn chunk_partials<F>(n: usize, threads: usize, reduce_chunk: F) -> Vec<f64>
where
    F: Fn(usize, usize) -> f64 + Sync,
{
    let nchunks = n.div_ceil(REDUCTION_CHUNK).max(1);
    let mut partials = vec![0.0f64; nchunks];
    if n >= PAR_MIN_LEN && fanout(threads) > 1 {
        use rayon::prelude::*;
        let mut run = || {
            partials
                .par_iter_mut()
                .enumerate()
                .with_min_len(1)
                .for_each(|(ci, p)| {
                    let lo = ci * REDUCTION_CHUNK;
                    let hi = (lo + REDUCTION_CHUNK).min(n);
                    *p = reduce_chunk(lo, hi);
                });
        };
        if threads == 0 {
            run();
        } else {
            advisory_pool(threads).install(run);
        }
    } else {
        for (ci, p) in partials.iter_mut().enumerate() {
            let lo = ci * REDUCTION_CHUNK;
            let hi = (lo + REDUCTION_CHUNK).min(n);
            *p = reduce_chunk(lo, hi);
        }
    }
    partials
}

/// An advisory pool capping the shim's fan-out at `threads`.
fn advisory_pool(threads: usize) -> rayon::ThreadPool {
    // LINT: allow(panic, pool construction fails only on thread-spawn resource exhaustion; no recovery is possible)
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("advisory thread pool")
}

/// Run `f` under an advisory fan-out cap: `threads == 0` leaves the
/// ambient pool untouched, any other value caps every parallel kernel
/// invoked inside `f` (including nested [`rayon::join`] forks) at
/// `threads` shards. Solvers call this once at entry so their inner
/// vecops/SpMV calls all follow one knob.
pub fn with_fanout<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    if threads == 0 {
        f()
    } else {
        advisory_pool(threads).install(f)
    }
}

/// Run an elementwise kernel over `y` in disjoint [`REDUCTION_CHUNK`]
/// slices, honoring the `threads` knob. `f(base, chunk)` gets the global
/// offset of its chunk. Elementwise maps write disjoint ranges, so they
/// are bit-identical at any fan-out by construction.
fn elementwise<F>(y: &mut [f64], threads: usize, f: F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    let n = y.len();
    if n >= PAR_MIN_LEN && fanout(threads) > 1 {
        use rayon::prelude::*;
        let mut chunks: Vec<&mut [f64]> = y.chunks_mut(REDUCTION_CHUNK).collect();
        let run = |chunks: &mut Vec<&mut [f64]>| {
            chunks
                .par_iter_mut()
                .enumerate()
                .with_min_len(1)
                .for_each(|(ci, ch)| f(ci * REDUCTION_CHUNK, ch));
        };
        if threads == 0 {
            run(&mut chunks);
        } else {
            advisory_pool(threads).install(|| run(&mut chunks));
        }
    } else {
        f(0, y);
    }
}

/// Deterministic chunked-pairwise reduction over an index space: cut
/// `0..n` into [`REDUCTION_CHUNK`] chunks, reduce each with
/// `reduce_chunk(lo, hi)`, combine the partials with the fixed pairwise
/// tree. The result is a pure function of `(n, reduce_chunk)` — the
/// `threads` knob (0 = ambient, 1 = serial, n = advisory shards) only
/// affects speed. This is the building block behind `dot`/`norm`/`sum`
/// and the Laplacian's edge-wise Rayleigh quotient.
pub fn chunked_reduce<F>(n: usize, threads: usize, reduce_chunk: F) -> f64
where
    F: Fn(usize, usize) -> f64 + Sync,
{
    if n == 0 {
        return 0.0;
    }
    if n <= REDUCTION_CHUNK {
        return reduce_chunk(0, n);
    }
    pairwise_sum(&chunk_partials(n, threads, reduce_chunk))
}

/// Dot product over one chunk; plain slice loop, auto-vectorized.
#[inline]
fn dot_chunk(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Dot product (deterministic chunked-pairwise; ambient fan-out).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    dot_threads(a, b, 0)
}

/// [`dot`] with an explicit fan-out. The value is a pure function of
/// `(a, b)` — identical for every `threads`.
pub fn dot_threads(a: &[f64], b: &[f64], threads: usize) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    chunked_reduce(a.len(), threads, |lo, hi| dot_chunk(&a[lo..hi], &b[lo..hi]))
}

/// Euclidean norm (deterministic chunked-pairwise; ambient fan-out).
#[inline]
pub fn norm(a: &[f64]) -> f64 {
    norm_threads(a, 0)
}

/// [`norm`] with an explicit fan-out.
#[inline]
pub fn norm_threads(a: &[f64], threads: usize) -> f64 {
    dot_threads(a, a, threads).sqrt()
}

/// Sum of all elements (deterministic chunked-pairwise; ambient fan-out).
#[inline]
pub fn sum(a: &[f64]) -> f64 {
    sum_threads(a, 0)
}

/// [`sum`] with an explicit fan-out.
pub fn sum_threads(a: &[f64], threads: usize) -> f64 {
    chunked_reduce(a.len(), threads, |lo, hi| a[lo..hi].iter().sum())
}

/// `y += alpha * x` (elementwise; ambient fan-out).
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    axpy_threads(alpha, x, y, 0);
}

/// [`axpy`] with an explicit fan-out.
pub fn axpy_threads(alpha: f64, x: &[f64], y: &mut [f64], threads: usize) {
    debug_assert_eq!(x.len(), y.len());
    elementwise(y, threads, |base, ys| {
        for (i, yi) in ys.iter_mut().enumerate() {
            *yi += alpha * x[base + i];
        }
    });
}

/// `x *= alpha` (elementwise; ambient fan-out).
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    scale_threads(alpha, x, 0);
}

/// [`scale`] with an explicit fan-out.
pub fn scale_threads(alpha: f64, x: &mut [f64], threads: usize) {
    elementwise(x, threads, |_, xs| {
        for xi in xs {
            *xi *= alpha;
        }
    });
}

/// Normalize `x` to unit norm.
///
/// Always returns the **pre-scale** Euclidean norm of `x`, whatever its
/// value. `x` is rescaled only when that norm is a positive *normal*
/// float: a zero vector is left untouched (returning `0.0`), and a vector
/// whose norm underflows to a denormal is also left untouched (dividing
/// by a denormal would overflow every component to ±inf) — callers that
/// need a direction from such a vector should rescale it first.
#[inline]
pub fn normalize(x: &mut [f64]) -> f64 {
    normalize_threads(x, 0)
}

/// [`normalize`] with an explicit fan-out.
pub fn normalize_threads(x: &mut [f64], threads: usize) -> f64 {
    let n = norm_threads(x, threads);
    if n.is_normal() && n > 0.0 {
        scale_threads(1.0 / n, x, threads);
    }
    n
}

/// Remove the component of `x` along (unit or non-unit) `q`:
/// `x -= (x·q / q·q) q`.
///
/// Skips (leaves `x` untouched) when `q·q` underflows to zero or to a
/// denormal: a zero `q` spans nothing to project out, and dividing by a
/// denormal `q·q` overflows the coefficient to ±inf and would destroy
/// `x`. The skip threshold is `f64::MIN_POSITIVE` (smallest normal).
#[inline]
pub fn orthogonalize_against(x: &mut [f64], q: &[f64]) {
    orthogonalize_against_threads(x, q, 0);
}

/// [`orthogonalize_against`] with an explicit fan-out.
pub fn orthogonalize_against_threads(x: &mut [f64], q: &[f64], threads: usize) {
    let qq = dot_threads(q, q, threads);
    if qq >= f64::MIN_POSITIVE {
        let coeff = dot_threads(x, q, threads) / qq;
        axpy_threads(-coeff, q, x, threads);
    }
}

/// Remove the mean of `x` (orthogonalize against the constant vector, the
/// Laplacian's null space).
#[inline]
pub fn deflate_constant(x: &mut [f64]) {
    deflate_constant_threads(x, 0);
}

/// [`deflate_constant`] with an explicit fan-out.
pub fn deflate_constant_threads(x: &mut [f64], threads: usize) {
    let n = x.len();
    if n == 0 {
        return;
    }
    let mean = sum_threads(x, threads) / n as f64;
    elementwise(x, threads, |_, xs| {
        for xi in xs {
            *xi -= mean;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn axpy_scale() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
        scale(0.5, &mut y);
        assert_eq!(y, vec![3.5, 4.5]);
    }

    #[test]
    fn normalize_unit() {
        let mut x = vec![0.0, 3.0, 4.0];
        let n = normalize(&mut x);
        assert!((n - 5.0).abs() < 1e-15);
        assert!((norm(&x) - 1.0).abs() < 1e-15);
        let mut z = vec![0.0, 0.0];
        assert_eq!(normalize(&mut z), 0.0);
    }

    #[test]
    fn normalize_zero_and_denormal_left_untouched() {
        // Zero vector: reports norm 0, untouched.
        let mut z = vec![0.0; 5];
        assert_eq!(normalize(&mut z), 0.0);
        assert_eq!(z, vec![0.0; 5]);
        // Denormal vector: the norm underflows below the smallest normal;
        // the reported value is the true pre-scale norm and the vector is
        // left untouched instead of overflowing to ±inf.
        let d = f64::MIN_POSITIVE / 4.0; // subnormal after squaring
        let mut x = vec![d * 1e-20, -d * 1e-20];
        let before = x.clone();
        let n = normalize(&mut x);
        assert!(n < f64::MIN_POSITIVE, "norm {n} should be denormal/zero");
        assert_eq!(x, before, "denormal vector must not be rescaled");
        assert!(x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn orthogonalization() {
        let q = vec![1.0, 1.0];
        let mut x = vec![2.0, 0.0];
        orthogonalize_against(&mut x, &q);
        assert!(dot(&x, &q).abs() < 1e-14);
    }

    #[test]
    fn orthogonalize_against_zero_vector_is_a_noop() {
        let q = vec![0.0; 4];
        let mut x = vec![1.0, -2.0, 3.0, -4.0];
        let before = x.clone();
        orthogonalize_against(&mut x, &q);
        assert_eq!(x, before);
    }

    #[test]
    fn orthogonalize_against_denormal_vector_skips() {
        // q·q underflows to a denormal (or zero); dividing by it would
        // overflow the coefficient — the kernel must skip instead.
        let tiny = 1e-200; // tiny^2 = 1e-400 underflows to 0
        let q = vec![tiny, tiny];
        let mut x = vec![5.0, -7.0];
        let before = x.clone();
        orthogonalize_against(&mut x, &q);
        assert_eq!(x, before);
        assert!(x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn deflation_removes_mean() {
        let mut x = vec![1.0, 2.0, 3.0, 6.0];
        deflate_constant(&mut x);
        assert!(x.iter().sum::<f64>().abs() < 1e-12);
    }

    #[test]
    fn chunked_dot_close_to_serial_and_thread_invariant() {
        // > REDUCTION_CHUNK so the pairwise tree actually engages.
        let n = 3 * REDUCTION_CHUNK + 917;
        let a: Vec<f64> = (0..n)
            .map(|i| ((i * 37) % 101) as f64 / 17.0 - 2.5)
            .collect();
        let b: Vec<f64> = (0..n)
            .map(|i| ((i * 53) % 97) as f64 / 13.0 - 3.5)
            .collect();
        let serial: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        let chunked = dot(&a, &b);
        assert!(
            (chunked - serial).abs() <= 1e-12 * serial.abs().max(1.0),
            "chunked {chunked} vs serial {serial}"
        );
        // Bit-identical across explicit fan-outs.
        for t in [1usize, 2, 3, 8] {
            assert_eq!(
                dot_threads(&a, &b, t).to_bits(),
                chunked.to_bits(),
                "dot differs at {t} threads"
            );
        }
    }

    #[test]
    fn sum_and_deflate_thread_invariant() {
        let n = 2 * PAR_MIN_LEN + 311;
        let x: Vec<f64> = (0..n)
            .map(|i| ((i * 29) % 113) as f64 / 7.0 - 8.0)
            .collect();
        let s1 = sum_threads(&x, 1);
        for t in [2usize, 5, 8] {
            assert_eq!(sum_threads(&x, t).to_bits(), s1.to_bits());
        }
        let mut a = x.clone();
        let mut b = x.clone();
        deflate_constant_threads(&mut a, 1);
        deflate_constant_threads(&mut b, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn axpy_scale_thread_invariant_on_large_vectors() {
        let n = PAR_MIN_LEN + 1234;
        let x: Vec<f64> = (0..n).map(|i| (i % 31) as f64 * 0.25 - 3.0).collect();
        let mut y1: Vec<f64> = (0..n).map(|i| (i % 17) as f64 * 0.5).collect();
        let mut y8 = y1.clone();
        axpy_threads(0.37, &x, &mut y1, 1);
        axpy_threads(0.37, &x, &mut y8, 8);
        assert_eq!(y1, y8);
        scale_threads(1.0 / 3.0, &mut y1, 1);
        scale_threads(1.0 / 3.0, &mut y8, 8);
        assert_eq!(y1, y8);
    }

    #[test]
    fn pairwise_tree_shape_is_fixed() {
        // The tree splits at len/2 regardless of anything else; spot-check
        // against a hand-computed shape for 5 partials:
        // pairwise([a,b,c,d,e]) = (a+b) + (c + (d+e))
        let p = [1e16, 1.0, -1e16, 1.0, 1.0];
        let expect: f64 = (1e16 + 1.0) + (-1e16 + (1.0 + 1.0));
        assert_eq!(pairwise_sum(&p).to_bits(), expect.to_bits());
    }
}
