//! Dense vector kernels used by the iterative eigensolvers.
//!
//! Plain slice loops: these are memory-bound level-1 BLAS operations that
//! LLVM auto-vectorizes; the eigensolver runtimes are dominated by the
//! sparse matrix-vector products, not these.

/// Dot product.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
#[inline]
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `x *= alpha`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Normalize `x` to unit norm; returns the original norm (0 leaves `x`
/// untouched).
pub fn normalize(x: &mut [f64]) -> f64 {
    let n = norm(x);
    if n > 0.0 {
        scale(1.0 / n, x);
    }
    n
}

/// Remove the component of `x` along (unit or non-unit) `q`:
/// `x -= (x·q / q·q) q`.
pub fn orthogonalize_against(x: &mut [f64], q: &[f64]) {
    let qq = dot(q, q);
    if qq > 0.0 {
        let coeff = dot(x, q) / qq;
        axpy(-coeff, q, x);
    }
}

/// Remove the mean of `x` (orthogonalize against the constant vector, the
/// Laplacian's null space).
pub fn deflate_constant(x: &mut [f64]) {
    let n = x.len();
    if n == 0 {
        return;
    }
    let mean = x.iter().sum::<f64>() / n as f64;
    for xi in x {
        *xi -= mean;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn axpy_scale() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
        scale(0.5, &mut y);
        assert_eq!(y, vec![3.5, 4.5]);
    }

    #[test]
    fn normalize_unit() {
        let mut x = vec![0.0, 3.0, 4.0];
        let n = normalize(&mut x);
        assert!((n - 5.0).abs() < 1e-15);
        assert!((norm(&x) - 1.0).abs() < 1e-15);
        let mut z = vec![0.0, 0.0];
        assert_eq!(normalize(&mut z), 0.0);
    }

    #[test]
    fn orthogonalization() {
        let q = vec![1.0, 1.0];
        let mut x = vec![2.0, 0.0];
        orthogonalize_against(&mut x, &q);
        assert!(dot(&x, &q).abs() < 1e-14);
    }

    #[test]
    fn deflation_removes_mean() {
        let mut x = vec![1.0, 2.0, 3.0, 6.0];
        deflate_constant(&mut x);
        assert!(x.iter().sum::<f64>().abs() < 1e-12);
    }
}
