//! Property tests for the eigensolver substrate.

use mlgp_linalg::{
    fiedler_dense, jacobi_eigen, lanczos_fiedler, minres, DenseSym, LanczosOptions, Laplacian,
    MinresOptions, SymOp,
};
use proptest::prelude::*;

/// Strategy: a random symmetric matrix of dimension 2..=8 with entries in
/// [-5, 5].
fn sym_matrix() -> impl Strategy<Value = DenseSym> {
    (2usize..=8).prop_flat_map(|n| {
        prop::collection::vec(-5.0f64..5.0, n * (n + 1) / 2).prop_map(move |vals| {
            let mut m = DenseSym::zeros(n);
            let mut it = vals.into_iter();
            for i in 0..n {
                for j in i..n {
                    m.set_sym(i, j, it.next().unwrap());
                }
            }
            m
        })
    })
}

struct DenseOp(DenseSym);
impl SymOp for DenseOp {
    fn dim(&self) -> usize {
        self.0.n()
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        for (i, yi) in y.iter_mut().enumerate() {
            *yi = (0..self.0.n()).map(|j| self.0.get(i, j) * x[j]).sum();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn jacobi_eigenpairs_satisfy_definition(m in sym_matrix()) {
        let n = m.n();
        let e = jacobi_eigen(&m);
        // Eigenvalues ascending.
        for w in e.values.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-9);
        }
        // Trace is preserved.
        let trace: f64 = (0..n).map(|i| m.get(i, i)).sum();
        let sum: f64 = e.values.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-7 * (1.0 + trace.abs()), "{trace} vs {sum}");
        // A v = lambda v.
        let scale: f64 = 1.0 + e.values.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        for k in 0..n {
            let v = &e.vectors[k];
            for i in 0..n {
                let av: f64 = (0..n).map(|j| m.get(i, j) * v[j]).sum();
                prop_assert!((av - e.values[k] * v[i]).abs() < 1e-7 * scale);
            }
        }
        // Eigenvectors orthonormal.
        for a in 0..n {
            for b in a..n {
                let dot: f64 = e.vectors[a].iter().zip(&e.vectors[b]).map(|(x, y)| x * y).sum();
                let expect = if a == b { 1.0 } else { 0.0 };
                prop_assert!((dot - expect).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn minres_solves_nonsingular_symmetric(m in sym_matrix(), bseed in 0u64..100) {
        // Shift well away from singularity: A + (1 + |trace|) I ... instead
        // make it diagonally dominant to guarantee nonsingularity.
        let n = m.n();
        let mut a = m.clone();
        for i in 0..n {
            let row: f64 = (0..n).map(|j| a.get(i, j).abs()).sum();
            a.set_sym(i, i, a.get(i, i) + row + 1.0);
        }
        let b: Vec<f64> = (0..n).map(|i| ((i as u64 * 37 + bseed) % 11) as f64 - 5.0).collect();
        let op = DenseOp(a);
        let r = minres(&op, &b, &MinresOptions { max_iters: 200, tol: 1e-12, ..Default::default() });
        let mut ax = vec![0.0; n];
        op.apply(&r.x, &mut ax);
        let res: f64 = ax.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt();
        let bnorm: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
        prop_assert!(res <= 1e-6 * (1.0 + bnorm), "residual {res}");
    }

    #[test]
    fn lanczos_matches_dense_on_random_connected_graphs(
        n in 6usize..24,
        extra in 0usize..40,
        seed in 0u64..200,
    ) {
        use mlgp_graph::rng::seeded;
        use rand::RngExt;
        let mut rng = seeded(seed);
        let mut b = mlgp_graph::GraphBuilder::new(n);
        for v in 1..n {
            b.add_edge(v as u32, rng.random_range(0..v) as u32);
        }
        for _ in 0..extra {
            let u = rng.random_range(0..n) as u32;
            let v = rng.random_range(0..n) as u32;
            if u != v {
                b.add_edge(u, v);
            }
        }
        let g = b.build();
        let lap = Laplacian::new(&g);
        let r = lanczos_fiedler(&lap, &LanczosOptions::default());
        let (l2, _) = fiedler_dense(&g);
        prop_assert!(
            (r.lambda - l2).abs() <= 1e-5 * (1.0 + l2),
            "lanczos {} vs dense {}", r.lambda, l2
        );
    }

    #[test]
    fn chunked_pairwise_dot_matches_serial(
        // Span several REDUCTION_CHUNK boundaries so the pairwise tree has
        // real depth; proptest shrinks toward the small end.
        n in 1usize..(3 * mlgp_linalg::REDUCTION_CHUNK + 500),
        seed in 0u64..1000,
    ) {
        use mlgp_graph::rng::seeded;
        use rand::RngExt;
        let mut rng = seeded(seed);
        let a: Vec<f64> = (0..n).map(|_| rng.random_range(-10.0..10.0)).collect();
        let b: Vec<f64> = (0..n).map(|_| rng.random_range(-10.0..10.0)).collect();
        let serial: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        let chunked = mlgp_linalg::vecops::dot(&a, &b);
        // The pairwise tree differs from left-to-right summation only in
        // rounding; 1e-12 relative is generous for these magnitudes.
        let scale = a.iter().zip(&b).map(|(x, y)| (x * y).abs()).sum::<f64>().max(1.0);
        prop_assert!(
            (chunked - serial).abs() <= 1e-12 * scale,
            "chunked {chunked} vs serial {serial} (n = {n})"
        );
    }

    #[test]
    fn chunked_pairwise_dot_bit_identical_across_threads(
        n in 1usize..(2 * mlgp_linalg::REDUCTION_CHUNK + 500),
        seed in 0u64..1000,
    ) {
        use mlgp_graph::rng::seeded;
        use rand::RngExt;
        let mut rng = seeded(seed);
        let a: Vec<f64> = (0..n).map(|_| rng.random_range(-10.0..10.0)).collect();
        let b: Vec<f64> = (0..n).map(|_| rng.random_range(-10.0..10.0)).collect();
        let reference = mlgp_linalg::vecops::dot_threads(&a, &b, 1);
        for threads in [2usize, 3, 8] {
            let t = mlgp_linalg::vecops::dot_threads(&a, &b, threads);
            prop_assert_eq!(
                t.to_bits(), reference.to_bits(),
                "dot differs at {} threads: {} vs {}", threads, t, reference
            );
        }
        // norm rides on dot; check it too.
        let nref = mlgp_linalg::vecops::norm_threads(&a, 1);
        for threads in [2usize, 8] {
            prop_assert_eq!(mlgp_linalg::vecops::norm_threads(&a, threads).to_bits(), nref.to_bits());
        }
    }

    #[test]
    fn laplacian_rayleigh_nonnegative(
        n in 4usize..30,
        seed in 0u64..100,
    ) {
        use mlgp_graph::rng::seeded;
        use rand::RngExt;
        let mut rng = seeded(seed);
        let mut b = mlgp_graph::GraphBuilder::new(n);
        for v in 1..n {
            b.add_weighted_edge(v as u32, rng.random_range(0..v) as u32, 1 + rng.random_range(0..5));
        }
        let g = b.build();
        let lap = Laplacian::new(&g);
        let x: Vec<f64> = (0..n).map(|_| rng.random_range(-1.0..1.0)).collect();
        // L is PSD: Rayleigh quotient >= 0, bounded by Gershgorin.
        let rho = lap.rayleigh(&x);
        prop_assert!(rho >= -1e-12);
        prop_assert!(rho <= lap.spectral_upper_bound() + 1e-9);
    }
}
