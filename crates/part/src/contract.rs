//! Graph contraction: build `G_{i+1}` from `G_i` and a matching, with a
//! **deterministic parallel two-pass kernel**.
//!
//! Multinode weights are the sums of their constituents' weights, parallel
//! edges fold by summing weights, and internal (contracted) edges disappear
//! from the structure but are accounted in `cewgt` so that HCM can measure
//! edge density at deeper levels. This maintains the key identity the paper
//! uses: `W(E_{i+1}) = W(E_i) − W(M_i)`, and makes the coarse edge-cut of a
//! partition equal the fine edge-cut of its projection.
//!
//! # Parallel scheme (count/fill with prefix-sum merge)
//!
//! The coarse vertex range is split into contiguous shards. **Pass 1**:
//! each shard independently builds the CSR rows it owns into private
//! buffers — per-row dedupe through a shard-local `pos` scratch, rows
//! sorted by coarse neighbor id (the canonical form the [`mlgp_graph`]
//! builder also produces). **Pass 2**: shard buffer lengths are prefix-
//! summed into global offsets and every shard copies its rows into its
//! disjoint slice of the final arrays in parallel.
//!
//! Each coarse row is a pure function of `(g, cmap)` — no cross-shard
//! state — and rows are emitted sorted, so the output is bit-identical for
//! every shard count. `contract(...)` (auto threads) and
//! [`contract_threads`] with any explicit `threads` agree exactly.

use crate::matching::{resolve_shards, shard_bounds};
use mlgp_graph::{CsrGraph, Vid, Wgt};
use rayon::prelude::*;

/// Result of one contraction step.
#[derive(Clone, Debug)]
pub struct Contraction {
    /// The coarser graph.
    pub graph: CsrGraph,
    /// Per-coarse-vertex total weight of edges contracted inside it (input
    /// `cewgt` of both constituents plus the matched edge's weight).
    pub cewgt: Vec<Wgt>,
}

/// Telemetry from one run of the parallel contraction kernel.
#[derive(Clone, Debug, Default)]
pub struct ContractStats {
    /// Coarse-range shards the kernel fanned out to.
    pub shards: usize,
    /// Fine adjacency entries scanned, per shard.
    pub entries: Vec<u64>,
}

/// Contract `g` according to `cmap` (from [`crate::matching::Matching::to_cmap`]).
///
/// `cewgt` carries the contracted-edge weight of each fine vertex (zeros at
/// the finest level).
pub fn contract(g: &CsrGraph, cmap: &[Vid], ncoarse: usize, cewgt: &[Wgt]) -> Contraction {
    contract_threads(g, cmap, ncoarse, cewgt, 0).0
}

/// Per-shard pass-1 output: the CSR rows of one contiguous coarse range.
struct ShardRows {
    lo: usize,
    hi: usize,
    /// Row-end offsets relative to this shard's first entry (len `hi-lo`).
    xadj: Vec<u32>,
    adjncy: Vec<Vid>,
    adjwgt: Vec<Wgt>,
    cvwgt: Vec<Wgt>,
    ccewgt: Vec<Wgt>,
    entries: u64,
}

/// [`contract`] with an explicit thread count (`0` = the rayon fan-out) and
/// kernel telemetry. Output is bit-identical for every `threads` value.
pub fn contract_threads(
    g: &CsrGraph,
    cmap: &[Vid],
    ncoarse: usize,
    cewgt: &[Wgt],
    threads: usize,
) -> (Contraction, ContractStats) {
    let n = g.n();
    assert_eq!(cmap.len(), n);
    assert_eq!(cewgt.len(), n);
    // Constituents of each coarse vertex, in coarse order: counting sort.
    // O(n) and shared read-only by every shard.
    let mut ccount = vec![0u32; ncoarse + 1];
    for &c in cmap {
        ccount[c as usize + 1] += 1;
    }
    for i in 0..ncoarse {
        ccount[i + 1] += ccount[i];
    }
    let mut members = vec![0 as Vid; n];
    {
        let mut cursor = ccount[..ncoarse.max(1)].to_vec();
        for v in 0..n as Vid {
            let c = cmap[v as usize] as usize;
            members[cursor[c] as usize] = v;
            cursor[c] += 1;
        }
    }

    let nshards = resolve_shards(ncoarse, threads);
    // Pass 1: every shard builds its rows privately.
    let mut shards: Vec<ShardRows> = shard_bounds(ncoarse, nshards)
        .into_iter()
        .map(|(lo, hi)| ShardRows {
            lo,
            hi,
            xadj: Vec::with_capacity(hi - lo),
            adjncy: Vec::new(),
            adjwgt: Vec::new(),
            cvwgt: vec![0; hi - lo],
            ccewgt: vec![0; hi - lo],
            entries: 0,
        })
        .collect();
    shards
        .par_iter_mut()
        .enumerate()
        .with_min_len(1)
        .for_each(|(_, sh)| {
            // Scratch: position of coarse neighbor `u` in the row being built,
            // or u32::MAX. Reset incrementally after each row.
            let mut pos = vec![u32::MAX; ncoarse];
            let mut row: Vec<(Vid, Wgt)> = Vec::new();
            for c in sh.lo..sh.hi {
                row.clear();
                let mut internal = 0 as Wgt;
                for &v in &members[ccount[c] as usize..ccount[c + 1] as usize] {
                    sh.cvwgt[c - sh.lo] += g.vwgt()[v as usize];
                    sh.ccewgt[c - sh.lo] += cewgt[v as usize];
                    sh.entries += g.degree(v) as u64;
                    for (u, w) in g.adj(v) {
                        let cu = cmap[u as usize];
                        if cu as usize == c {
                            internal += w; // counted from both endpoints => 2w total
                            continue;
                        }
                        let p = pos[cu as usize];
                        if p == u32::MAX {
                            pos[cu as usize] = row.len() as u32;
                            row.push((cu, w));
                        } else {
                            row[p as usize].1 += w;
                        }
                    }
                }
                // Each internal edge was seen from both endpoints.
                debug_assert_eq!(internal % 2, 0);
                sh.ccewgt[c - sh.lo] += internal / 2;
                for &(u, _) in row.iter() {
                    pos[u as usize] = u32::MAX;
                }
                // Canonical (sorted) row order — shard-count independent.
                row.sort_unstable_by_key(|&(u, _)| u);
                sh.adjncy.extend(row.iter().map(|&(u, _)| u));
                sh.adjwgt.extend(row.iter().map(|&(_, w)| w));
                sh.xadj.push(sh.adjncy.len() as u32);
            }
        });

    // Pass 2: prefix-sum shard lengths, then copy every shard's rows into
    // its disjoint destination slice in parallel.
    let total: usize = shards.iter().map(|sh| sh.adjncy.len()).sum();
    let mut xadj = vec![0u32; ncoarse + 1];
    let mut adjncy = vec![0 as Vid; total];
    let mut adjwgt = vec![0 as Wgt; total];
    let mut cvwgt = vec![0 as Wgt; ncoarse];
    let mut ccewgt = vec![0 as Wgt; ncoarse];
    {
        /// One shard's disjoint destination slices in the final arrays.
        struct Dest<'a> {
            xadj: &'a mut [u32],
            adjncy: &'a mut [Vid],
            adjwgt: &'a mut [Wgt],
            cvwgt: &'a mut [Wgt],
            ccewgt: &'a mut [Wgt],
            base: u32,
            src: &'a ShardRows,
        }
        let mut dests: Vec<Dest<'_>> = Vec::with_capacity(shards.len());
        let (mut xr, mut ar, mut wr, mut vr, mut cr) = (
            &mut xadj[1..],
            &mut adjncy[..],
            &mut adjwgt[..],
            &mut cvwgt[..],
            &mut ccewgt[..],
        );
        let mut base = 0u32;
        for sh in &shards {
            let rows = sh.hi - sh.lo;
            let len = sh.adjncy.len();
            let (xd, xrest) = xr.split_at_mut(rows);
            let (ad, arest) = ar.split_at_mut(len);
            let (wd, wrest) = wr.split_at_mut(len);
            let (vd, vrest) = vr.split_at_mut(rows);
            let (cd, crest) = cr.split_at_mut(rows);
            dests.push(Dest {
                xadj: xd,
                adjncy: ad,
                adjwgt: wd,
                cvwgt: vd,
                ccewgt: cd,
                base,
                src: sh,
            });
            xr = xrest;
            ar = arest;
            wr = wrest;
            vr = vrest;
            cr = crest;
            base += len as u32;
        }
        dests
            .par_iter_mut()
            .enumerate()
            .with_min_len(1)
            .for_each(|(_, d)| {
                for (i, &end) in d.src.xadj.iter().enumerate() {
                    d.xadj[i] = d.base + end;
                }
                d.adjncy.copy_from_slice(&d.src.adjncy);
                d.adjwgt.copy_from_slice(&d.src.adjwgt);
                d.cvwgt.copy_from_slice(&d.src.cvwgt);
                d.ccewgt.copy_from_slice(&d.src.ccewgt);
            });
    }
    let stats = ContractStats {
        shards: nshards,
        entries: shards.iter().map(|sh| sh.entries).collect(),
    };
    (
        Contraction {
            graph: CsrGraph::from_parts_unchecked(xadj, adjncy, cvwgt, adjwgt),
            cewgt: ccewgt,
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MatchingScheme;
    use crate::matching::compute_matching;
    use mlgp_graph::generators::{grid2d, tri_mesh2d};
    use mlgp_graph::rng::seeded;
    use mlgp_graph::GraphBuilder;

    #[test]
    fn contract_square_pairwise() {
        // Square 0-1-2-3-0; match (0,1) and (2,3).
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1)
            .add_edge(1, 2)
            .add_edge(2, 3)
            .add_edge(3, 0);
        let g = b.build();
        let cmap = vec![0, 0, 1, 1];
        let c = contract(&g, &cmap, 2, &[0; 4]);
        assert_eq!(c.graph.n(), 2);
        assert_eq!(c.graph.m(), 1);
        // Two parallel fine edges (1-2 and 3-0) fold to weight 2.
        assert_eq!(c.graph.edge_weights(0), &[2]);
        assert_eq!(c.graph.vwgt(), &[2, 2]);
        // One unit edge contracted inside each multinode.
        assert_eq!(c.cewgt, vec![1, 1]);
        assert!(c.graph.validate().is_ok());
    }

    #[test]
    fn weight_conservation_identity() {
        // W(E_{i+1}) = W(E_i) − W(M_i) for any matching-based contraction.
        let g = tri_mesh2d(10, 8, 5);
        let cewgt = vec![0; g.n()];
        for scheme in MatchingScheme::all() {
            let m = compute_matching(&g, scheme, &cewgt, &mut seeded(3));
            let matched_weight: Wgt = (0..g.n() as Vid)
                .map(|v| {
                    let p = m.partner[v as usize];
                    if p > v {
                        g.adj(v).find(|&(u, _)| u == p).unwrap().1
                    } else {
                        0
                    }
                })
                .sum();
            let (cmap, nc) = m.to_cmap();
            let c = contract(&g, &cmap, nc, &cewgt);
            assert_eq!(
                c.graph.total_adjwgt(),
                g.total_adjwgt() - matched_weight,
                "{scheme:?}"
            );
            assert_eq!(c.graph.total_vwgt(), g.total_vwgt());
            assert!(c.graph.validate().is_ok());
            // cewgt sums to the total contracted weight.
            assert_eq!(c.cewgt.iter().sum::<Wgt>(), matched_weight);
        }
    }

    #[test]
    fn projected_cut_is_preserved() {
        // A coarse partition's cut equals the projected fine partition's cut.
        let g = grid2d(8, 6);
        let cewgt = vec![0; g.n()];
        let m = compute_matching(&g, MatchingScheme::HeavyEdge, &cewgt, &mut seeded(11));
        let (cmap, nc) = m.to_cmap();
        let c = contract(&g, &cmap, nc, &cewgt);
        // Arbitrary coarse bisection.
        let cpart: Vec<u8> = (0..nc).map(|i| (i % 2) as u8).collect();
        let fpart: Vec<u8> = (0..g.n()).map(|v| cpart[cmap[v] as usize]).collect();
        assert_eq!(
            crate::metrics::edge_cut_bisection(&c.graph, &cpart),
            crate::metrics::edge_cut_bisection(&g, &fpart)
        );
    }

    #[test]
    fn identity_contraction() {
        // Empty matching: coarse graph == fine graph.
        let g = grid2d(4, 4);
        let cmap: Vec<Vid> = (0..g.n() as Vid).collect();
        let c = contract(&g, &cmap, g.n(), &vec![0; g.n()]);
        assert_eq!(c.graph, g);
        assert_eq!(c.cewgt, vec![0; g.n()]);
    }

    #[test]
    fn shard_count_does_not_change_the_graph() {
        let g = tri_mesh2d(20, 16, 9);
        let cewgt = vec![0; g.n()];
        let m = compute_matching(&g, MatchingScheme::HeavyEdge, &cewgt, &mut seeded(7));
        let (cmap, nc) = m.to_cmap();
        let (reference, s1) = contract_threads(&g, &cmap, nc, &cewgt, 1);
        assert_eq!(s1.shards, 1);
        for threads in [2, 3, 8] {
            let (c, st) = contract_threads(&g, &cmap, nc, &cewgt, threads);
            assert_eq!(st.shards, threads);
            assert_eq!(c.graph, reference.graph, "{threads} threads");
            assert_eq!(c.cewgt, reference.cewgt);
        }
        // The parallel kernel scanned every fine adjacency entry exactly once.
        let (_, st) = contract_threads(&g, &cmap, nc, &cewgt, 4);
        assert_eq!(st.entries.iter().sum::<u64>(), g.nnz() as u64);
    }

    #[test]
    fn rows_are_sorted() {
        let g = tri_mesh2d(14, 11, 2);
        let cewgt = vec![0; g.n()];
        let m = compute_matching(&g, MatchingScheme::Random, &cewgt, &mut seeded(4));
        let (cmap, nc) = m.to_cmap();
        let c = contract(&g, &cmap, nc, &cewgt);
        for v in 0..c.graph.n() as Vid {
            let nb = c.graph.neighbors(v);
            assert!(nb.windows(2).all(|w| w[0] < w[1]), "row {v} not sorted");
        }
    }
}
