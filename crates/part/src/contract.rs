//! Graph contraction: build `G_{i+1}` from `G_i` and a matching.
//!
//! Multinode weights are the sums of their constituents' weights, parallel
//! edges fold by summing weights, and internal (contracted) edges disappear
//! from the structure but are accounted in `cewgt` so that HCM can measure
//! edge density at deeper levels. This maintains the key identity the paper
//! uses: `W(E_{i+1}) = W(E_i) − W(M_i)`, and makes the coarse edge-cut of a
//! partition equal the fine edge-cut of its projection.

use mlgp_graph::{CsrGraph, Vid, Wgt};

/// Result of one contraction step.
#[derive(Clone, Debug)]
pub struct Contraction {
    /// The coarser graph.
    pub graph: CsrGraph,
    /// Per-coarse-vertex total weight of edges contracted inside it (input
    /// `cewgt` of both constituents plus the matched edge's weight).
    pub cewgt: Vec<Wgt>,
}

/// Contract `g` according to `cmap` (from [`crate::matching::Matching::to_cmap`]).
///
/// `cewgt` carries the contracted-edge weight of each fine vertex (zeros at
/// the finest level).
pub fn contract(g: &CsrGraph, cmap: &[Vid], ncoarse: usize, cewgt: &[Wgt]) -> Contraction {
    let n = g.n();
    assert_eq!(cmap.len(), n);
    assert_eq!(cewgt.len(), n);
    // Constituents of each coarse vertex, in coarse order: counting sort.
    let mut ccount = vec![0u32; ncoarse + 1];
    for &c in cmap {
        ccount[c as usize + 1] += 1;
    }
    for i in 0..ncoarse {
        ccount[i + 1] += ccount[i];
    }
    let mut members = vec![0 as Vid; n];
    {
        let mut cursor = ccount[..ncoarse].to_vec();
        for v in 0..n as Vid {
            let c = cmap[v as usize] as usize;
            members[cursor[c] as usize] = v;
            cursor[c] += 1;
        }
    }
    let mut xadj = vec![0u32; ncoarse + 1];
    let mut adjncy: Vec<Vid> = Vec::with_capacity(g.nnz());
    let mut adjwgt: Vec<Wgt> = Vec::with_capacity(g.nnz());
    let mut cvwgt = vec![0 as Wgt; ncoarse];
    let mut ccewgt = vec![0 as Wgt; ncoarse];
    // Scratch: position of coarse neighbor `u` in the row being built, or
    // u32::MAX. Reset incrementally after each row.
    let mut pos = vec![u32::MAX; ncoarse];
    for c in 0..ncoarse {
        let row_start = adjncy.len();
        let mut internal = 0 as Wgt;
        for &v in &members[ccount[c] as usize..ccount[c + 1] as usize] {
            cvwgt[c] += g.vwgt()[v as usize];
            ccewgt[c] += cewgt[v as usize];
            for (u, w) in g.adj(v) {
                let cu = cmap[u as usize];
                if cu as usize == c {
                    internal += w; // counted from both endpoints => 2w total
                    continue;
                }
                let p = pos[cu as usize];
                if p == u32::MAX {
                    pos[cu as usize] = adjncy.len() as u32;
                    adjncy.push(cu);
                    adjwgt.push(w);
                } else {
                    adjwgt[p as usize] += w;
                }
            }
        }
        // Each internal edge was seen from both endpoints.
        debug_assert_eq!(internal % 2, 0);
        ccewgt[c] += internal / 2;
        for &u in &adjncy[row_start..] {
            pos[u as usize] = u32::MAX;
        }
        xadj[c + 1] = adjncy.len() as u32;
    }
    Contraction {
        graph: CsrGraph::from_parts_unchecked(xadj, adjncy, cvwgt, adjwgt),
        cewgt: ccewgt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MatchingScheme;
    use crate::matching::compute_matching;
    use mlgp_graph::generators::{grid2d, tri_mesh2d};
    use mlgp_graph::rng::seeded;
    use mlgp_graph::GraphBuilder;

    #[test]
    fn contract_square_pairwise() {
        // Square 0-1-2-3-0; match (0,1) and (2,3).
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1)
            .add_edge(1, 2)
            .add_edge(2, 3)
            .add_edge(3, 0);
        let g = b.build();
        let cmap = vec![0, 0, 1, 1];
        let c = contract(&g, &cmap, 2, &[0; 4]);
        assert_eq!(c.graph.n(), 2);
        assert_eq!(c.graph.m(), 1);
        // Two parallel fine edges (1-2 and 3-0) fold to weight 2.
        assert_eq!(c.graph.edge_weights(0), &[2]);
        assert_eq!(c.graph.vwgt(), &[2, 2]);
        // One unit edge contracted inside each multinode.
        assert_eq!(c.cewgt, vec![1, 1]);
        assert!(c.graph.validate().is_ok());
    }

    #[test]
    fn weight_conservation_identity() {
        // W(E_{i+1}) = W(E_i) − W(M_i) for any matching-based contraction.
        let g = tri_mesh2d(10, 8, 5);
        let cewgt = vec![0; g.n()];
        for scheme in MatchingScheme::all() {
            let m = compute_matching(&g, scheme, &cewgt, &mut seeded(3));
            let matched_weight: Wgt = (0..g.n() as Vid)
                .map(|v| {
                    let p = m.partner[v as usize];
                    if p > v {
                        g.adj(v).find(|&(u, _)| u == p).unwrap().1
                    } else {
                        0
                    }
                })
                .sum();
            let (cmap, nc) = m.to_cmap();
            let c = contract(&g, &cmap, nc, &cewgt);
            assert_eq!(
                c.graph.total_adjwgt(),
                g.total_adjwgt() - matched_weight,
                "{scheme:?}"
            );
            assert_eq!(c.graph.total_vwgt(), g.total_vwgt());
            assert!(c.graph.validate().is_ok());
            // cewgt sums to the total contracted weight.
            assert_eq!(c.cewgt.iter().sum::<Wgt>(), matched_weight);
        }
    }

    #[test]
    fn projected_cut_is_preserved() {
        // A coarse partition's cut equals the projected fine partition's cut.
        let g = grid2d(8, 6);
        let cewgt = vec![0; g.n()];
        let m = compute_matching(&g, MatchingScheme::HeavyEdge, &cewgt, &mut seeded(11));
        let (cmap, nc) = m.to_cmap();
        let c = contract(&g, &cmap, nc, &cewgt);
        // Arbitrary coarse bisection.
        let cpart: Vec<u8> = (0..nc).map(|i| (i % 2) as u8).collect();
        let fpart: Vec<u8> = (0..g.n()).map(|v| cpart[cmap[v] as usize]).collect();
        assert_eq!(
            crate::metrics::edge_cut_bisection(&c.graph, &cpart),
            crate::metrics::edge_cut_bisection(&g, &fpart)
        );
    }

    #[test]
    fn identity_contraction() {
        // Empty matching: coarse graph == fine graph.
        let g = grid2d(4, 4);
        let cmap: Vec<Vid> = (0..g.n() as Vid).collect();
        let c = contract(&g, &cmap, g.n(), &vec![0; g.n()]);
        assert_eq!(c.graph, g);
        assert_eq!(c.cewgt, vec![0; g.n()]);
    }
}
