//! Direct k-way refinement — the extension the paper's conclusion points
//! toward (and which became the k-way refinement of the authors' follow-up
//! work): instead of only refining each bisection in isolation, sweep the
//! *final* k-way partition, moving boundary vertices to whichever adjacent
//! part reduces the cut most, under the balance constraint.
//!
//! # Round-based parallel kernel (determinism contract)
//!
//! The sweep runs as synchronized *propose/commit rounds* over vertex-range
//! shards, mirroring the matching handshake of `matching.rs`:
//!
//! 1. **Propose** — every boundary vertex computes, in parallel, its best
//!    legal move against a *frozen* snapshot of the partition and part
//!    weights: maximal connectivity gain, ties toward the lighter part,
//!    destinations over the balance bound excluded.
//! 2. **Resolve** — a proposer commits only if it beats every proposing
//!    neighbor under the strict key `(gain, seeded rank)` (ranks come from
//!    a seeded random permutation, so the order is total). Winners form an
//!    independent set in the conflict graph, which means no winner's
//!    neighborhood changes this round — every committed gain is *exact*
//!    and the cut never increases.
//! 3. **Commit** — winners are bucketed by destination part in vertex
//!    order; each part accepts its candidates best-first while reserving
//!    vertex weight from its budget slot (`ub − pwgt`) with the same CAS
//!    pattern as the matching claim phase. Each budget slot is owned by
//!    exactly one bucket, so every reservation is conflict-free and the
//!    accepted set is schedule-independent. Rejected and losing vertices
//!    simply re-propose next round against the updated snapshot.
//!
//! The result is a pure function of `(graph, partition, k, options.seed)`:
//! any thread count produces the bit-identical refined partition. Each
//! round is `O(n + m)`; the globally maximal proposer always wins and
//! always fits its (snapshot-legal) budget, so every round with proposals
//! commits at least one move.

use crate::bisect::PhaseTimes;
use crate::config::MlConfig;
use crate::kway::{kway_partition_traced, KwayResult};
use crate::matching::{resolve_shards, shard_bounds};
use crate::metrics::{edge_cut_kway, part_weights};
use mlgp_graph::rng::{random_order, seeded};
use mlgp_graph::{CsrGraph, Vid, Wgt};
use mlgp_trace::{Event, Trace, SPAN_REFINE};
use rayon::prelude::*;
use std::sync::atomic::{AtomicI64, AtomicU32, Ordering};

/// Sentinel for "no proposal this round".
const NONE: u32 = u32::MAX;

/// Options for the round-based k-way sweep.
#[derive(Clone, Copy, Debug)]
pub struct KwayRefineOptions {
    /// Maximum propose/commit rounds.
    pub max_passes: usize,
    /// Per-part weight may not exceed `imbalance ×` the average.
    pub imbalance: f64,
    /// Seed for the rank permutation (the commit tie-breaker).
    pub seed: u64,
    /// Worker threads (`0` = the ambient rayon fan-out). The refined
    /// partition is bit-identical for every value.
    pub threads: usize,
}

impl Default for KwayRefineOptions {
    fn default() -> Self {
        Self {
            max_passes: 24,
            imbalance: 1.03,
            seed: 0x6b77,
            threads: 0,
        }
    }
}

/// Telemetry from one run of the round-based k-way refinement kernel.
#[derive(Clone, Copy, Debug, Default)]
pub struct KwayRefineStats {
    /// Propose/commit rounds executed.
    pub rounds: usize,
    /// Move proposals across all rounds.
    pub proposals: usize,
    /// Proposals dropped because an adjacent proposer had a higher
    /// `(gain, rank)` key.
    pub conflicts: usize,
    /// Round winners rejected because their destination's weight budget
    /// was exhausted.
    pub balance_rejects: usize,
    /// Moves committed.
    pub moves: usize,
}

/// Refine a k-way partition in place with the round-based kernel. Returns
/// the resulting edge-cut.
pub fn kway_refine_greedy(
    g: &CsrGraph,
    part: &mut [u32],
    k: usize,
    opts: &KwayRefineOptions,
) -> Wgt {
    kway_refine_greedy_traced(g, part, k, opts, &Trace::disabled())
}

/// [`kway_refine_greedy`] with telemetry: one `kway_round` event per round
/// plus a `kway_sweep` summary and workspace counters.
pub fn kway_refine_greedy_traced(
    g: &CsrGraph,
    part: &mut [u32],
    k: usize,
    opts: &KwayRefineOptions,
    trace: &Trace,
) -> Wgt {
    kway_refine_stats(g, part, k, opts, trace).0
}

/// Per-shard kernel state: the contiguous vertex range one worker owns,
/// with its connectivity scratch and per-round outputs.
struct RefineShard {
    lo: usize,
    hi: usize,
    /// Connectivity of the current vertex to each part, reset per vertex
    /// via `touched`.
    conn: Vec<Wgt>,
    touched: Vec<u32>,
    /// Proposals made this round by vertices of this shard.
    proposals: usize,
    /// Round winners of this shard, ascending by vertex id.
    winners: Vec<(Vid, Wgt)>,
}

/// [`kway_refine_greedy_traced`] returning the kernel telemetry alongside
/// the final cut (used by the scaling bench and the determinism suite).
pub fn kway_refine_stats(
    g: &CsrGraph,
    part: &mut [u32],
    k: usize,
    opts: &KwayRefineOptions,
    trace: &Trace,
) -> (Wgt, KwayRefineStats) {
    assert_eq!(part.len(), g.n());
    let n = g.n();
    let mut stats = KwayRefineStats::default();
    if k <= 1 || n == 0 {
        return (0, stats);
    }
    let cut_before = if trace.is_enabled() {
        edge_cut_kway(g, part)
    } else {
        0
    };
    // Seeded rank permutation: the strict tie-breaker that makes the
    // conflict order total (same role as the matching kernel's ranks).
    let mut rng = seeded(opts.seed);
    let order = random_order(&mut rng, n);
    let mut rank = vec![0u32; n];
    for (i, &v) in order.iter().enumerate() {
        rank[v as usize] = i as u32;
    }
    let mut pwgts = part_weights(g, part, k);
    let total: Wgt = pwgts.iter().sum();
    let avg = total as f64 / k as f64;
    let ub = (avg * opts.imbalance).ceil() as Wgt;

    let nshards = resolve_shards(n, opts.threads);
    let mut shards: Vec<RefineShard> = shard_bounds(n, nshards)
        .into_iter()
        .map(|(lo, hi)| RefineShard {
            lo,
            hi,
            conn: vec![0; k],
            touched: Vec::with_capacity(16),
            proposals: 0,
            winners: Vec::new(),
        })
        .collect();
    // Proposal slots, each written once per round by its owner shard.
    let prop_to: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(NONE)).collect();
    let prop_gain: Vec<AtomicI64> = (0..n).map(|_| AtomicI64::new(0)).collect();

    for round in 0..opts.max_passes.max(1) {
        // Propose: best legal move per boundary vertex against the frozen
        // (part, pwgts) snapshot.
        {
            let part_ro: &[u32] = part;
            let pwgts_ro: &[Wgt] = &pwgts;
            shards
                .par_iter_mut()
                .enumerate()
                .with_min_len(1)
                .for_each(|(_, sh)| {
                    sh.proposals = 0;
                    for v in sh.lo..sh.hi {
                        let home = part_ro[v] as usize;
                        sh.touched.clear();
                        let mut is_boundary = false;
                        for (u, w) in g.adj(v as Vid) {
                            let pu = part_ro[u as usize] as usize;
                            if sh.conn[pu] == 0 {
                                sh.touched.push(pu as u32);
                            }
                            sh.conn[pu] += w;
                            if pu != home {
                                is_boundary = true;
                            }
                        }
                        let mut best: Option<(Wgt, Wgt, usize)> = None; // (gain, -pwgt, part)
                        if is_boundary {
                            let vw = g.vwgt()[v];
                            let here = sh.conn[home];
                            for &t in &sh.touched {
                                let t = t as usize;
                                if t == home || pwgts_ro[t] + vw > ub {
                                    continue;
                                }
                                let gain = sh.conn[t] - here;
                                let key = (gain, -pwgts_ro[t]);
                                if (gain > 0 || (gain == 0 && pwgts_ro[t] + vw < pwgts_ro[home]))
                                    && best.is_none_or(|(bg, bw, _)| key > (bg, bw))
                                {
                                    best = Some((gain, -pwgts_ro[t], t));
                                }
                            }
                        }
                        for &t in &sh.touched {
                            sh.conn[t as usize] = 0;
                        }
                        // RELAXED: proposal slots are single-writer — only
                        // the shard owning `v` stores them this round — and
                        // readers run in the resolve phase, after the rayon
                        // fork/join barrier that publishes these stores.
                        match best {
                            Some((gain, _, to)) => {
                                prop_gain[v].store(gain, Ordering::Relaxed);
                                prop_to[v].store(to as u32, Ordering::Relaxed);
                                sh.proposals += 1;
                            }
                            None => prop_to[v].store(NONE, Ordering::Relaxed),
                        }
                    }
                });
        }
        let proposals: usize = shards.iter().map(|sh| sh.proposals).sum();
        if proposals == 0 {
            break;
        }
        // Resolve: a proposer wins iff it beats every proposing neighbor
        // under the strict `(gain, rank)` key, so winners are independent
        // and their snapshot gains are exact.
        shards
            .par_iter_mut()
            .enumerate()
            .with_min_len(1)
            .for_each(|(_, sh)| {
                // RELAXED: the proposal slots are frozen during resolve —
                // written in the propose phase, published by its fork/join
                // barrier, and only read here — so plain loads suffice.
                sh.winners.clear();
                for v in sh.lo..sh.hi {
                    if prop_to[v].load(Ordering::Relaxed) == NONE {
                        continue;
                    }
                    let gv = prop_gain[v].load(Ordering::Relaxed);
                    let kv = (gv, rank[v]);
                    let mut wins = true;
                    for &u in g.neighbors(v as Vid) {
                        if prop_to[u as usize].load(Ordering::Relaxed) == NONE {
                            continue;
                        }
                        if (
                            prop_gain[u as usize].load(Ordering::Relaxed),
                            rank[u as usize],
                        ) > kv
                        {
                            wins = false;
                            break;
                        }
                    }
                    if wins {
                        sh.winners.push((v as Vid, gv));
                    }
                }
            });
        // Commit: bucket winners by destination in vertex order, then each
        // part accepts best-first while CAS-reserving from its own budget
        // slot (single owner per slot → deterministic greedy acceptance).
        let mut buckets: Vec<Vec<(Vid, Wgt)>> = vec![Vec::new(); k];
        let mut winners_total = 0usize;
        for sh in &shards {
            // RELAXED: serial section between the resolve and commit
            // fan-outs; the barrier already ordered these stores.
            for &(v, gain) in &sh.winners {
                buckets[prop_to[v as usize].load(Ordering::Relaxed) as usize].push((v, gain));
                winners_total += 1;
            }
        }
        let budget: Vec<AtomicI64> = pwgts.iter().map(|&w| AtomicI64::new(ub - w)).collect();
        {
            let rank_ro: &[u32] = &rank;
            buckets
                .par_iter_mut()
                .enumerate()
                .with_min_len(1)
                .for_each(|(p, bucket)| {
                    bucket.sort_unstable_by(|&(va, ga), &(vb, gb)| {
                        (gb, rank_ro[vb as usize]).cmp(&(ga, rank_ro[va as usize]))
                    });
                    // RELAXED: `budget[p]` is a single-owner slot — the
                    // rayon task for bucket `p` is the only thread that
                    // ever touches it, so the CAS cannot be contended and
                    // carries no cross-thread edge; the accepted moves are
                    // applied serially after the commit barrier.
                    bucket.retain(|&(v, _)| {
                        let vw = g.vwgt()[v as usize];
                        loop {
                            let cur = budget[p].load(Ordering::Relaxed);
                            if cur < vw {
                                return false;
                            }
                            if budget[p]
                                .compare_exchange(
                                    cur,
                                    cur - vw,
                                    Ordering::Relaxed,
                                    Ordering::Relaxed,
                                )
                                .is_ok()
                            {
                                return true;
                            }
                        }
                    });
                });
        }
        // Apply the accepted moves (disjoint vertices; serial and cheap).
        let mut moves = 0usize;
        for (p, bucket) in buckets.iter().enumerate() {
            for &(v, _) in bucket {
                let vw = g.vwgt()[v as usize];
                pwgts[part[v as usize] as usize] -= vw;
                pwgts[p] += vw;
                part[v as usize] = p as u32;
                moves += 1;
            }
        }
        stats.rounds += 1;
        stats.proposals += proposals;
        stats.conflicts += proposals - winners_total;
        stats.balance_rejects += winners_total - moves;
        stats.moves += moves;
        trace.record(|| Event::KwayRound {
            round,
            proposals,
            conflicts: proposals - winners_total,
            balance_rejects: winners_total - moves,
            moves,
        });
        if moves == 0 {
            break;
        }
    }
    if trace.is_enabled() {
        trace.count("kwayref_rounds", stats.rounds as u64);
        trace.count("kwayref_proposals", stats.proposals as u64);
        trace.count("kwayref_conflicts", stats.conflicts as u64);
        trace.count("kwayref_balance_rejects", stats.balance_rejects as u64);
        trace.count("kwayref_moves", stats.moves as u64);
    }
    let cut_after = edge_cut_kway(g, part);
    trace.record(|| Event::KwaySweep {
        passes: stats.rounds,
        moves: stats.moves,
        cut_before,
        cut_after,
    });
    (cut_after, stats)
}

/// [`kway_partition`] followed by the round-based k-way sweep.
///
/// [`kway_partition`]: crate::kway::kway_partition
pub fn kway_partition_refined(g: &CsrGraph, k: usize, cfg: &MlConfig) -> KwayResult {
    kway_partition_refined_traced(g, k, cfg, &Trace::disabled())
}

/// [`kway_partition_refined`] with telemetry over both the recursive
/// bisections and the final k-way sweep.
pub fn kway_partition_refined_traced(
    g: &CsrGraph,
    k: usize,
    cfg: &MlConfig,
    trace: &Trace,
) -> KwayResult {
    let mut r = kway_partition_traced(g, k, cfg, trace);
    let opts = KwayRefineOptions {
        imbalance: cfg.imbalance,
        seed: cfg.seed ^ 0x5eed,
        threads: cfg.threads,
        ..KwayRefineOptions::default()
    };
    let t = mlgp_trace::Stopwatch::start();
    r.edge_cut = kway_refine_greedy_traced(g, &mut r.part, k, &opts, trace);
    let d = t.elapsed();
    trace.add_time(SPAN_REFINE, d);
    r.times = r.times.merge(&PhaseTimes {
        refine: d,
        ..PhaseTimes::default()
    });
    r
}

/// Number of boundary vertices of a k-way partition (convenience used by
/// the sweep's tests and benches).
pub fn kway_boundary(g: &CsrGraph, part: &[u32]) -> usize {
    (0..g.n() as Vid)
        .filter(|&v| {
            g.neighbors(v)
                .iter()
                .any(|&u| part[u as usize] != part[v as usize])
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kway::kway_partition;
    use crate::metrics::imbalance;
    use mlgp_graph::generators::{grid2d, tet_mesh3d, tri_mesh2d};

    #[test]
    fn sweep_improves_or_preserves_cut() {
        let g = tri_mesh2d(24, 24, 6);
        for k in [4, 8, 16] {
            let base = kway_partition(&g, k, &MlConfig::default());
            let before_imb = imbalance(&g, &base.part, k);
            let mut part = base.part.clone();
            let refined = kway_refine_greedy(&g, &mut part, k, &KwayRefineOptions::default());
            assert!(
                refined <= base.edge_cut,
                "k={k}: {refined} > {}",
                base.edge_cut
            );
            // The sweep never worsens balance beyond its bound or the input.
            let after_imb = imbalance(&g, &part, k);
            assert!(after_imb <= before_imb.max(1.05), "k={k}: {after_imb}");
        }
    }

    #[test]
    fn sweep_repairs_perturbed_partition() {
        // Take a good 4-way partition and scramble 15% of the labels: the
        // sweep must recover most of the damage.
        let g = grid2d(16, 16);
        let good = kway_partition(&g, 4, &MlConfig::default());
        let mut part = good.part.clone();
        let mut rng = mlgp_graph::rng::seeded(5);
        use rand::RngExt;
        for p in part.iter_mut() {
            if rng.random_range(0..100) < 15 {
                *p = rng.random_range(0..4u32);
            }
        }
        let damaged = edge_cut_kway(&g, &part);
        let repaired = kway_refine_greedy(
            &g,
            &mut part,
            4,
            &KwayRefineOptions {
                imbalance: 1.10,
                ..KwayRefineOptions::default()
            },
        );
        assert!(damaged > good.edge_cut, "perturbation did nothing");
        let recovered = (damaged - repaired) as f64 / (damaged - good.edge_cut) as f64;
        assert!(
            recovered > 0.5,
            "only recovered {recovered:.2} of the damage"
        );
    }

    #[test]
    fn refined_pipeline_beats_or_ties_plain() {
        let g = tet_mesh3d(12, 12, 12, 8);
        let plain = kway_partition(&g, 16, &MlConfig::default());
        let refined = kway_partition_refined(&g, 16, &MlConfig::default());
        assert!(refined.edge_cut <= plain.edge_cut);
        assert!(imbalance(&g, &refined.part, 16) <= 1.05);
    }

    #[test]
    fn never_pushes_a_part_over_its_bound() {
        let g = grid2d(20, 20);
        let base = kway_partition(&g, 5, &MlConfig::default()).part;
        let start_max = {
            let mut pw = [0i64; 5];
            for v in 0..g.n() {
                pw[base[v] as usize] += 1;
            }
            *pw.iter().max().unwrap()
        };
        let mut part = base;
        kway_refine_greedy(
            &g,
            &mut part,
            5,
            &KwayRefineOptions {
                imbalance: 1.01,
                ..KwayRefineOptions::default()
            },
        );
        let mut pw = vec![0i64; 5];
        for v in 0..g.n() {
            pw[part[v] as usize] += 1;
        }
        // No part may grow past max(bound, its starting weight): the sweep
        // only ever moves INTO parts below the bound.
        let ub = (80.0 * 1.01f64).ceil() as i64;
        assert!(pw.iter().all(|&w| w <= ub.max(start_max)), "{pw:?}");
    }

    #[test]
    fn trivial_cases() {
        let g = grid2d(4, 4);
        let mut part = vec![0u32; 16];
        assert_eq!(
            kway_refine_greedy(&g, &mut part, 1, &KwayRefineOptions::default()),
            0
        );
        let _ = kway_boundary(&g, &part);
    }

    #[test]
    fn deterministic() {
        let g = tri_mesh2d(15, 15, 2);
        let run = || {
            let mut part = kway_partition(&g, 8, &MlConfig::default()).part;
            kway_refine_greedy(&g, &mut part, 8, &KwayRefineOptions::default());
            part
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn thread_count_does_not_change_the_refinement() {
        let g = tri_mesh2d(26, 22, 3);
        let base = kway_partition(&g, 8, &MlConfig::default()).part;
        let run = |threads: usize| {
            let mut part = base.clone();
            let (cut, stats) = kway_refine_stats(
                &g,
                &mut part,
                8,
                &KwayRefineOptions {
                    threads,
                    ..KwayRefineOptions::default()
                },
                &Trace::disabled(),
            );
            (part, cut, stats.rounds, stats.moves)
        };
        let reference = run(1);
        for threads in [2, 3, 8] {
            assert_eq!(run(threads), reference, "diverged at {threads} threads");
        }
    }

    #[test]
    fn winners_are_exact_so_cut_drops_by_committed_gains() {
        // The independence of round winners makes every committed gain
        // exact: the cut after each round equals the cut before minus the
        // sum of committed gains. Verify via the per-round trace events.
        let g = tri_mesh2d(18, 18, 4);
        let mut part = kway_partition(&g, 6, &MlConfig::default()).part;
        // Perturb so the sweep has real work.
        for (i, p) in part.iter_mut().enumerate() {
            if i % 17 == 0 {
                *p = (i % 6) as u32;
            }
        }
        let trace = Trace::enabled();
        let before = edge_cut_kway(&g, &part);
        let after =
            kway_refine_greedy_traced(&g, &mut part, 6, &KwayRefineOptions::default(), &trace);
        assert!(after <= before);
        let events = trace.events();
        let rounds = events
            .iter()
            .filter(|e| matches!(e, Event::KwayRound { .. }))
            .count();
        assert!(rounds >= 1);
        let Some(Event::KwaySweep { passes, .. }) = events
            .iter()
            .rfind(|e| matches!(e, Event::KwaySweep { .. }))
        else {
            panic!("no sweep summary event");
        };
        assert_eq!(*passes, rounds);
    }
}
