//! Direct k-way greedy refinement — the extension the paper's conclusion
//! points toward (and which became the k-way refinement of the authors'
//! follow-up work): instead of only refining each bisection in isolation,
//! sweep the *final* k-way partition, moving boundary vertices to whichever
//! adjacent part reduces the cut most, under the balance constraint.
//!
//! Recursive bisection locks earlier cuts; a k-way sweep can trade edges
//! across sibling parts and typically shaves a few percent off the cut.

use crate::bisect::PhaseTimes;
use crate::config::MlConfig;
use crate::kway::{kway_partition_traced, KwayResult};
use crate::metrics::edge_cut_kway;
use mlgp_graph::rng::{random_order, seeded};
use mlgp_graph::{CsrGraph, Vid, Wgt};
use mlgp_trace::{Event, Trace, SPAN_REFINE};

/// Options for the k-way sweep.
#[derive(Clone, Copy, Debug)]
pub struct KwayRefineOptions {
    /// Maximum sweeps over the boundary.
    pub max_passes: usize,
    /// Per-part weight may not exceed `imbalance ×` the average.
    pub imbalance: f64,
    /// Seed for the sweep orders.
    pub seed: u64,
}

impl Default for KwayRefineOptions {
    fn default() -> Self {
        Self {
            max_passes: 8,
            imbalance: 1.03,
            seed: 0x6b77,
        }
    }
}

/// Greedily refine a k-way partition in place. Returns the resulting
/// edge-cut. Runs in `O(passes · (n + m))`.
pub fn kway_refine_greedy(
    g: &CsrGraph,
    part: &mut [u32],
    k: usize,
    opts: &KwayRefineOptions,
) -> Wgt {
    kway_refine_greedy_traced(g, part, k, opts, &Trace::disabled())
}

/// [`kway_refine_greedy`] with telemetry: records one `kway_sweep` event
/// summarizing the sweep (passes, moves, cut before/after).
pub fn kway_refine_greedy_traced(
    g: &CsrGraph,
    part: &mut [u32],
    k: usize,
    opts: &KwayRefineOptions,
    trace: &Trace,
) -> Wgt {
    assert_eq!(part.len(), g.n());
    let n = g.n();
    if k <= 1 || n == 0 {
        return 0;
    }
    let cut_before = if trace.is_enabled() {
        edge_cut_kway(g, part)
    } else {
        0
    };
    let mut total_moves = 0usize;
    let mut passes = 0usize;
    let mut pwgts = vec![0 as Wgt; k];
    for v in 0..n {
        pwgts[part[v] as usize] += g.vwgt()[v];
    }
    let total: Wgt = pwgts.iter().sum();
    let avg = total as f64 / k as f64;
    let ub = (avg * opts.imbalance).ceil() as Wgt;
    let mut rng = seeded(opts.seed);
    // Scratch: connectivity of the current vertex to each part, reset
    // per-vertex via the touched list.
    let mut conn = vec![0 as Wgt; k];
    let mut touched: Vec<u32> = Vec::with_capacity(16);
    for _pass in 0..opts.max_passes.max(1) {
        passes += 1;
        let order = random_order(&mut rng, n);
        let mut moves = 0usize;
        for &v in &order {
            let home = part[v as usize] as usize;
            // Compute connectivity to adjacent parts.
            touched.clear();
            let mut is_boundary = false;
            for (u, w) in g.adj(v) {
                let pu = part[u as usize] as usize;
                if conn[pu] == 0 {
                    touched.push(pu as u32);
                }
                conn[pu] += w;
                if pu != home {
                    is_boundary = true;
                }
            }
            if is_boundary {
                let vw = g.vwgt()[v as usize];
                let here = conn[home];
                // Best legal destination: maximal connectivity gain,
                // ties broken toward the lighter part.
                let mut best: Option<(Wgt, Wgt, usize)> = None; // (gain, -pwgt, part)
                for &t in &touched {
                    let t = t as usize;
                    if t == home || pwgts[t] + vw > ub {
                        continue;
                    }
                    let gain = conn[t] - here;
                    let key = (gain, -pwgts[t]);
                    if (gain > 0 || (gain == 0 && pwgts[t] + vw < pwgts[home]))
                        && best.is_none_or(|(bg, bw, _)| key > (bg, bw))
                    {
                        best = Some((gain, -pwgts[t], t));
                    }
                }
                if let Some((_, _, to)) = best {
                    pwgts[home] -= vw;
                    pwgts[to] += vw;
                    part[v as usize] = to as u32;
                    moves += 1;
                }
            }
            for &t in &touched {
                conn[t as usize] = 0;
            }
        }
        total_moves += moves;
        if moves == 0 {
            break;
        }
    }
    let cut_after = edge_cut_kway(g, part);
    trace.record(|| Event::KwaySweep {
        passes,
        moves: total_moves,
        cut_before,
        cut_after,
    });
    cut_after
}

/// [`kway_partition`] followed by the greedy k-way sweep.
pub fn kway_partition_refined(g: &CsrGraph, k: usize, cfg: &MlConfig) -> KwayResult {
    kway_partition_refined_traced(g, k, cfg, &Trace::disabled())
}

/// [`kway_partition_refined`] with telemetry over both the recursive
/// bisections and the final k-way sweep.
pub fn kway_partition_refined_traced(
    g: &CsrGraph,
    k: usize,
    cfg: &MlConfig,
    trace: &Trace,
) -> KwayResult {
    let mut r = kway_partition_traced(g, k, cfg, trace);
    let opts = KwayRefineOptions {
        imbalance: cfg.imbalance,
        seed: cfg.seed ^ 0x5eed,
        ..KwayRefineOptions::default()
    };
    let t = std::time::Instant::now();
    r.edge_cut = kway_refine_greedy_traced(g, &mut r.part, k, &opts, trace);
    let d = t.elapsed();
    trace.add_time(SPAN_REFINE, d);
    r.times = r.times.merge(&PhaseTimes {
        refine: d,
        ..PhaseTimes::default()
    });
    r
}

/// Number of boundary vertices of a k-way partition (convenience used by
/// the sweep's tests and benches).
pub fn kway_boundary(g: &CsrGraph, part: &[u32]) -> usize {
    (0..g.n() as Vid)
        .filter(|&v| {
            g.neighbors(v)
                .iter()
                .any(|&u| part[u as usize] != part[v as usize])
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kway::kway_partition;
    use crate::metrics::imbalance;
    use mlgp_graph::generators::{grid2d, tet_mesh3d, tri_mesh2d};

    #[test]
    fn sweep_improves_or_preserves_cut() {
        let g = tri_mesh2d(24, 24, 6);
        for k in [4, 8, 16] {
            let base = kway_partition(&g, k, &MlConfig::default());
            let before_imb = imbalance(&g, &base.part, k);
            let mut part = base.part.clone();
            let refined = kway_refine_greedy(&g, &mut part, k, &KwayRefineOptions::default());
            assert!(
                refined <= base.edge_cut,
                "k={k}: {refined} > {}",
                base.edge_cut
            );
            // The sweep never worsens balance beyond its bound or the input.
            let after_imb = imbalance(&g, &part, k);
            assert!(after_imb <= before_imb.max(1.05), "k={k}: {after_imb}");
        }
    }

    #[test]
    fn sweep_repairs_perturbed_partition() {
        // Take a good 4-way partition and scramble 15% of the labels: the
        // sweep must recover most of the damage.
        let g = grid2d(16, 16);
        let good = kway_partition(&g, 4, &MlConfig::default());
        let mut part = good.part.clone();
        let mut rng = mlgp_graph::rng::seeded(5);
        use rand::RngExt;
        for p in part.iter_mut() {
            if rng.random_range(0..100) < 15 {
                *p = rng.random_range(0..4u32);
            }
        }
        let damaged = edge_cut_kway(&g, &part);
        let repaired = kway_refine_greedy(
            &g,
            &mut part,
            4,
            &KwayRefineOptions {
                imbalance: 1.10,
                ..KwayRefineOptions::default()
            },
        );
        assert!(damaged > good.edge_cut, "perturbation did nothing");
        let recovered = (damaged - repaired) as f64 / (damaged - good.edge_cut) as f64;
        assert!(
            recovered > 0.5,
            "only recovered {recovered:.2} of the damage"
        );
    }

    #[test]
    fn refined_pipeline_beats_or_ties_plain() {
        let g = tet_mesh3d(12, 12, 12, 8);
        let plain = kway_partition(&g, 16, &MlConfig::default());
        let refined = kway_partition_refined(&g, 16, &MlConfig::default());
        assert!(refined.edge_cut <= plain.edge_cut);
        assert!(imbalance(&g, &refined.part, 16) <= 1.05);
    }

    #[test]
    fn never_pushes_a_part_over_its_bound() {
        let g = grid2d(20, 20);
        let base = kway_partition(&g, 5, &MlConfig::default()).part;
        let start_max = {
            let mut pw = [0i64; 5];
            for v in 0..g.n() {
                pw[base[v] as usize] += 1;
            }
            *pw.iter().max().unwrap()
        };
        let mut part = base;
        kway_refine_greedy(
            &g,
            &mut part,
            5,
            &KwayRefineOptions {
                imbalance: 1.01,
                ..KwayRefineOptions::default()
            },
        );
        let mut pw = vec![0i64; 5];
        for v in 0..g.n() {
            pw[part[v] as usize] += 1;
        }
        // No part may grow past max(bound, its starting weight): the sweep
        // only ever moves INTO parts below the bound.
        let ub = (80.0 * 1.01f64).ceil() as i64;
        assert!(pw.iter().all(|&w| w <= ub.max(start_max)), "{pw:?}");
    }

    #[test]
    fn trivial_cases() {
        let g = grid2d(4, 4);
        let mut part = vec![0u32; 16];
        assert_eq!(
            kway_refine_greedy(&g, &mut part, 1, &KwayRefineOptions::default()),
            0
        );
        let _ = kway_boundary(&g, &part);
    }

    #[test]
    fn deterministic() {
        let g = tri_mesh2d(15, 15, 2);
        let run = || {
            let mut part = kway_partition(&g, 8, &MlConfig::default()).part;
            kway_refine_greedy(&g, &mut part, 8, &KwayRefineOptions::default());
            part
        };
        assert_eq!(run(), run());
    }
}
