//! Tests for the generic recursive k-way driver.

use crate::bisect::bisect_targets;
use crate::config::MlConfig;
use crate::kway::{kway_partition, recursive_kway_with};
use crate::metrics::{edge_cut_kway, part_weights};
use mlgp_graph::generators::grid2d;

#[test]
fn generic_driver_matches_builtin_kway() {
    let g = grid2d(20, 20);
    let cfg = MlConfig::default();
    let generic = recursive_kway_with(&g, 4, &|sub: &mlgp_graph::CsrGraph, targets, salt| {
        bisect_targets(sub, &cfg.reseed(salt), targets).part
    });
    let builtin = kway_partition(&g, 4, &cfg);
    assert_eq!(generic, builtin.part);
}

#[test]
fn generic_driver_with_trivial_bisector_balances() {
    // A "first half / second half" bisector by weight still yields balanced
    // parts through the recursion.
    let g = grid2d(16, 16);
    let part = recursive_kway_with(&g, 8, &|sub: &mlgp_graph::CsrGraph, targets, _| {
        let mut out = vec![1u8; sub.n()];
        let mut w = 0;
        for (o, &vw) in out.iter_mut().zip(sub.vwgt()) {
            if w >= targets[0] {
                break;
            }
            *o = 0;
            w += vw;
        }
        out
    });
    let w = part_weights(&g, &part, 8);
    assert!(w.iter().all(|&x| x == 32), "{w:?}");
    assert!(edge_cut_kway(&g, &part) > 0);
}
