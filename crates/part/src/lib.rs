//! # mlgp-part
//!
//! The paper's primary contribution: multilevel graph bisection with
//! heavy-edge coarsening and boundary Kernighan-Lin refinement, plus k-way
//! partitioning by recursive bisection.
//!
//! The three phases are independently configurable through [`MlConfig`],
//! exactly spanning the design space the paper evaluates:
//!
//! * coarsening matchings: RM / HEM / LEM / HCM (§3.1);
//! * coarsest-graph partitioners: GGP / GGGP / spectral (§3.2);
//! * refinement policies: GR / KLR / BGR / BKLR / BKLGR (§3.3).
//!
//! ```
//! use mlgp_part::{bisect, kway_partition, MlConfig};
//! let g = mlgp_graph::generators::grid2d(32, 32);
//! let two = bisect(&g, &MlConfig::default());
//! assert!(two.cut <= 48);
//! let eight = kway_partition(&g, 8, &MlConfig::default());
//! assert_eq!(eight.part.iter().max(), Some(&7));
//! ```

pub mod bisect;
pub mod coarsen;
pub mod config;
pub mod contract;
pub mod initpart;
pub mod kway;
pub mod kwayrefine;
pub mod matching;
pub mod metrics;
pub mod refine;
pub mod report;

pub use bisect::{
    bisect, bisect_targets, bisect_targets_traced, bisect_traced, BisectionResult, PhaseTimes,
};
pub use coarsen::{coarsen, coarsen_traced, Hierarchy};
pub use config::{InitialPartitioning, MatchingScheme, MlConfig, RefinementPolicy};
pub use contract::{contract, contract_threads, ContractStats, Contraction};
pub use initpart::{initial_partition, initial_partition_traced};
pub use kway::{kway_partition, kway_partition_traced, KwayResult};
pub use kwayrefine::{
    kway_partition_refined, kway_partition_refined_traced, kway_refine_greedy,
    kway_refine_greedy_traced, kway_refine_stats, KwayRefineOptions, KwayRefineStats,
};
pub use matching::{compute_matching, compute_matching_threads, MatchStats, Matching};
pub use metrics::{
    boundary_count, communication_volume, edge_cut_bisection, edge_cut_kway, fragmentation,
    imbalance, part_weights,
};
pub use refine::{refine_level, refine_level_stats, BalanceTargets, BisectState, RefineStats};
pub use report::PartitionReport;

#[cfg(test)]
mod kway_extra_tests;
