//! Human-readable partition quality reports: the metrics bundle a user
//! checks after partitioning (edge-cut, balance, communication volume,
//! boundary size, per-part extremes).

use crate::metrics::{
    boundary_count, communication_volume, edge_cut_kway, fragmentation, imbalance, part_weights,
};
use mlgp_graph::{CsrGraph, Wgt};

/// Summary statistics of a k-way partition.
#[derive(Clone, Debug, PartialEq)]
pub struct PartitionReport {
    /// Number of parts.
    pub nparts: usize,
    /// Total edge-cut.
    pub edge_cut: Wgt,
    /// Total communication volume (distinct foreign parts over vertices).
    pub comm_volume: usize,
    /// Number of boundary vertices.
    pub boundary: usize,
    /// `max part weight / average part weight`.
    pub imbalance: f64,
    /// Lightest part weight.
    pub min_part: Wgt,
    /// Heaviest part weight.
    pub max_part: Wgt,
    /// Number of empty parts (0 unless `k > n` or the input was degenerate).
    pub empty_parts: usize,
    /// Extra connected fragments across parts (0 = every part connected).
    pub fragments: usize,
}

impl PartitionReport {
    /// Compute the report for `part` (labels in `0..nparts`).
    pub fn new(g: &CsrGraph, part: &[u32], nparts: usize) -> Self {
        let weights = part_weights(g, part, nparts);
        Self {
            nparts,
            edge_cut: edge_cut_kway(g, part),
            comm_volume: communication_volume(g, part),
            boundary: boundary_count(g, part),
            imbalance: imbalance(g, part, nparts),
            min_part: weights.iter().copied().min().unwrap_or(0),
            max_part: weights.iter().copied().max().unwrap_or(0),
            empty_parts: weights.iter().filter(|&&w| w == 0).count(),
            fragments: fragmentation(g, part, nparts),
        }
    }

    /// Serialize the report as a single JSON object (hand-rolled; the
    /// workspace carries no serde). Field names match the struct fields.
    pub fn to_json(&self) -> String {
        let mut o = mlgp_trace::json::JsonObj::new();
        o.field_usize("nparts", self.nparts);
        o.field_i64("edge_cut", self.edge_cut);
        o.field_usize("comm_volume", self.comm_volume);
        o.field_usize("boundary", self.boundary);
        o.field_f64("imbalance", self.imbalance);
        o.field_i64("min_part", self.min_part);
        o.field_i64("max_part", self.max_part);
        o.field_usize("empty_parts", self.empty_parts);
        o.field_usize("fragments", self.fragments);
        o.finish()
    }
}

impl std::fmt::Display for PartitionReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "parts:        {}", self.nparts)?;
        writeln!(f, "edge-cut:     {}", self.edge_cut)?;
        writeln!(f, "comm volume:  {}", self.comm_volume)?;
        writeln!(f, "boundary:     {}", self.boundary)?;
        writeln!(f, "imbalance:    {:.4}", self.imbalance)?;
        writeln!(f, "fragments:    {}", self.fragments)?;
        write!(
            f,
            "part weights: min {} / max {}{}",
            self.min_part,
            self.max_part,
            if self.empty_parts > 0 {
                format!(" ({} empty)", self.empty_parts)
            } else {
                String::new()
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MlConfig;
    use crate::kway::kway_partition;
    use mlgp_graph::generators::grid2d;

    #[test]
    fn report_on_clean_partition() {
        let g = grid2d(8, 8);
        let part: Vec<u32> = (0..64).map(|v| if v % 8 < 4 { 0 } else { 1 }).collect();
        let r = PartitionReport::new(&g, &part, 2);
        assert_eq!(r.edge_cut, 8);
        assert_eq!(r.comm_volume, 16);
        assert_eq!(r.boundary, 16);
        assert_eq!((r.min_part, r.max_part), (32, 32));
        assert_eq!(r.empty_parts, 0);
        assert_eq!(r.fragments, 0);
        assert!((r.imbalance - 1.0).abs() < 1e-12);
        let text = r.to_string();
        assert!(text.contains("edge-cut:     8"));
        assert!(!text.contains("empty"));
        // JSON form round-trips through the trace-layer parser.
        let v = mlgp_trace::json::parse(&r.to_json()).unwrap();
        assert_eq!(v.get("edge_cut").and_then(|x| x.as_f64()), Some(8.0));
        assert_eq!(v.get("nparts").and_then(|x| x.as_f64()), Some(2.0));
        assert_eq!(v.get("boundary").and_then(|x| x.as_f64()), Some(16.0));
    }

    #[test]
    fn report_flags_empty_parts() {
        let g = grid2d(3, 1);
        let r = PartitionReport::new(&g, &[0, 0, 1], 4);
        assert_eq!(r.empty_parts, 2);
        assert!(r.to_string().contains("(2 empty)"));
    }

    #[test]
    fn oversubscribed_k_does_not_panic() {
        // k > n: recursive bisection must terminate and label within range.
        let g = grid2d(3, 1);
        let res = kway_partition(&g, 8, &MlConfig::default());
        assert!(res.part.iter().all(|&p| p < 8));
        let r = PartitionReport::new(&g, &res.part, 8);
        assert!(r.empty_parts >= 5);
        assert_eq!(r.edge_cut, res.edge_cut);
    }
}
