//! The KL/FM refinement engine and the five refinement policies of §3.3.
//!
//! One *pass* repeatedly moves the highest-gain vertex from the overweight
//! side (single-vertex moves with immediate gain updates, as in
//! Fiduccia-Mattheyses), stops after `x` consecutive non-improving moves
//! (the paper uses `x = 50`), and rolls back to the best prefix. Policies
//! differ only in (a) whether the queues are seeded with *all* vertices
//! (GR/KLR) or just the boundary (BGR/BKLR), and (b) whether passes repeat
//! to convergence (KLR/BKLR) or run once (GR/BGR). BKLGR picks BKLR or BGR
//! per level from the boundary size.

use super::queue::GainQueue;
use super::state::BisectState;
use crate::config::{MlConfig, RefinementPolicy};
use mlgp_graph::{Vid, Wgt};

/// Balance targets for a (possibly uneven) bisection.
#[derive(Clone, Copy, Debug)]
pub struct BalanceTargets {
    /// Ideal weight per side.
    pub target: [Wgt; 2],
    /// Hard upper bound per side (`⌈imbalance × target⌉`, at least
    /// `target + 1` so unit-weight graphs always have slack).
    pub ub: [Wgt; 2],
}

impl BalanceTargets {
    /// Build targets from ideal weights and a relative imbalance factor.
    pub fn new(target: [Wgt; 2], imbalance: f64) -> Self {
        let ub = [
            ((target[0] as f64 * imbalance).ceil() as Wgt).max(target[0] + 1),
            ((target[1] as f64 * imbalance).ceil() as Wgt).max(target[1] + 1),
        ];
        Self { target, ub }
    }

    /// Even split of `total` with the given imbalance.
    pub fn even(total: Wgt, imbalance: f64) -> Self {
        let half = total / 2;
        Self::new([half, total - half], imbalance)
    }

    /// Whether the given side weights satisfy both upper bounds.
    #[inline]
    pub fn balanced(&self, pwgts: [Wgt; 2]) -> bool {
        pwgts[0] <= self.ub[0] && pwgts[1] <= self.ub[1]
    }
}

/// Statistics of a single KL/FM pass (see [`fm_pass_stats`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct PassStats {
    /// Whether the pass improved the cut or repaired the balance.
    pub improved: bool,
    /// Moves kept after rolling back to the best prefix.
    pub moves: usize,
    /// Moves undone by the rollback.
    pub rollbacks: usize,
    /// Whether the pass ended via the `early_exit_moves` counter (as
    /// opposed to exhausting all movable vertices).
    pub early_exit: bool,
}

/// Aggregated refinement statistics for one uncoarsening level (summed
/// over the passes [`refine_level_stats`] executes).
#[derive(Clone, Copy, Debug, Default)]
pub struct RefineStats {
    /// KL/FM passes executed.
    pub passes: usize,
    /// Total committed moves.
    pub moves: usize,
    /// Total rolled-back moves.
    pub rollbacks: usize,
    /// Passes that ended through the early-exit counter. Reported in
    /// traces as the `early_exit_triggers` counter (the canonical name —
    /// see `MlConfig::early_exit_moves`).
    pub early_exit_triggers: usize,
}

impl RefineStats {
    fn absorb(&mut self, p: PassStats) {
        self.passes += 1;
        self.moves += p.moves;
        self.rollbacks += p.rollbacks;
        self.early_exit_triggers += p.early_exit as usize;
    }
}

/// One KL/FM pass. Returns `true` if the pass improved the cut or repaired
/// the balance.
pub fn fm_pass(
    state: &mut BisectState<'_>,
    bt: &BalanceTargets,
    boundary_only: bool,
    early_exit_moves: usize,
) -> bool {
    fm_pass_stats(state, bt, boundary_only, early_exit_moves).improved
}

/// [`fm_pass`] with full per-pass statistics.
pub fn fm_pass_stats(
    state: &mut BisectState<'_>,
    bt: &BalanceTargets,
    boundary_only: bool,
    early_exit_moves: usize,
) -> PassStats {
    let g = state.graph();
    let n = g.n();
    let start_cut = state.cut;
    let start_balanced = bt.balanced(state.pwgts);
    // `locked` marks vertices that may no longer move in this pass: already
    // moved, or rejected for balance.
    let mut locked = vec![false; n];
    let mut queues = [GainQueue::with_capacity(64), GainQueue::with_capacity(64)];
    // The eligible set comes from the parallel boundary scan; it preserves
    // ascending vertex order, so the queues fill exactly as the serial
    // `0..n` filter would.
    for v in state.movable_vertices(boundary_only) {
        queues[state.part[v as usize] as usize].push(v, state.gain(v));
    }
    let mut log: Vec<Vid> = Vec::new();
    let mut best = (start_balanced, start_cut);
    let mut best_len = 0usize;
    let mut bad = 0usize;
    let mut exited_early = false;
    loop {
        // Prefer to drain the side with the larger excess over its target.
        let excess0 = state.pwgts[0] - bt.target[0];
        let excess1 = state.pwgts[1] - bt.target[1];
        let order = if excess0 >= excess1 {
            [0usize, 1]
        } else {
            [1, 0]
        };
        let mut picked: Option<Vid> = None;
        'pick: for &side in &order {
            loop {
                let popped = queues[side].pop_valid(|v, gain| {
                    !locked[v as usize]
                        && state.part[v as usize] == side as u8
                        && state.gain(v) == gain
                });
                let Some((v, _)) = popped else { break };
                let to = 1 - side;
                let vw = g.vwgt()[v as usize];
                // A move is legal if the destination stays under its bound,
                // or if the source is itself overweight (balance repair).
                if state.pwgts[to] + vw <= bt.ub[to] || state.pwgts[side] > bt.ub[side] {
                    picked = Some(v);
                    break 'pick;
                }
                locked[v as usize] = true;
            }
        }
        let Some(v) = picked else { break };
        locked[v as usize] = true;
        state.move_vertex(v);
        log.push(v);
        for (u, _) in g.adj(v) {
            if !locked[u as usize] && (!boundary_only || state.is_boundary(u)) {
                queues[state.part[u as usize] as usize].push(u, state.gain(u));
            }
        }
        let now_balanced = bt.balanced(state.pwgts);
        let better = (now_balanced && !best.0) || (now_balanced == best.0 && state.cut < best.1);
        if better {
            best = (now_balanced, state.cut);
            best_len = log.len();
            bad = 0;
        } else {
            bad += 1;
            if bad >= early_exit_moves {
                exited_early = true;
                break;
            }
        }
    }
    // Roll back to the best prefix.
    for &v in log[best_len..].iter().rev() {
        state.move_vertex(v);
    }
    debug_assert_eq!(state.cut, best.1);
    PassStats {
        improved: best.1 < start_cut || (best.0 && !start_balanced),
        moves: best_len,
        rollbacks: log.len() - best_len,
        early_exit: exited_early,
    }
}

/// Cap on KLR/BKLR passes; convergence almost always happens far sooner,
/// this only guards against pathological oscillation.
const MAX_PASSES: usize = 16;

/// Apply a refinement policy to the current level.
///
/// `orig_n` is the vertex count of the *original* (finest) graph, used by
/// the BKLGR switch (paper: BKLR while the boundary is under 2% of the
/// original size, BGR otherwise).
pub fn refine_level(
    state: &mut BisectState<'_>,
    bt: &BalanceTargets,
    policy: RefinementPolicy,
    cfg: &MlConfig,
    orig_n: usize,
) {
    refine_level_stats(state, bt, policy, cfg, orig_n);
}

/// [`refine_level`] with aggregated pass statistics for telemetry.
pub fn refine_level_stats(
    state: &mut BisectState<'_>,
    bt: &BalanceTargets,
    policy: RefinementPolicy,
    cfg: &MlConfig,
    orig_n: usize,
) -> RefineStats {
    fn once(
        state: &mut BisectState<'_>,
        bt: &BalanceTargets,
        stats: &mut RefineStats,
        boundary: bool,
        x: usize,
    ) -> bool {
        let p = fm_pass_stats(state, bt, boundary, x);
        stats.absorb(p);
        p.improved
    }
    fn converge(
        state: &mut BisectState<'_>,
        bt: &BalanceTargets,
        stats: &mut RefineStats,
        boundary: bool,
        x: usize,
    ) {
        for _ in 0..MAX_PASSES {
            if !once(state, bt, stats, boundary, x) {
                break;
            }
        }
    }
    let x = cfg.early_exit_moves.max(1);
    let mut stats = RefineStats::default();
    match policy {
        RefinementPolicy::None => {}
        RefinementPolicy::Greedy => {
            once(state, bt, &mut stats, false, x);
        }
        RefinementPolicy::KernighanLin => converge(state, bt, &mut stats, false, x),
        RefinementPolicy::BoundaryGreedy => {
            once(state, bt, &mut stats, true, x);
        }
        RefinementPolicy::BoundaryKernighanLin => converge(state, bt, &mut stats, true, x),
        RefinementPolicy::BoundaryKlGreedyHybrid => {
            let threshold = (cfg.hybrid_boundary_frac * orig_n as f64) as usize;
            if state.boundary_count() < threshold.max(1) {
                converge(state, bt, &mut stats, true, x);
            } else {
                once(state, bt, &mut stats, true, x);
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlgp_graph::generators::{grid2d, tri_mesh2d};
    use mlgp_graph::rng::seeded;
    use rand::RngExt;

    fn random_partition(n: usize, seed: u64) -> Vec<u8> {
        let mut rng = seeded(seed);
        // Balanced random split.
        let mut part = vec![0u8; n];
        for p in part.iter_mut().skip(n / 2) {
            *p = 1;
        }
        for i in (1..n).rev() {
            let j = rng.random_range(0..=i);
            part.swap(i, j);
        }
        part
    }

    #[test]
    fn pass_improves_random_partition_on_grid() {
        let g = grid2d(16, 16);
        let part = random_partition(g.n(), 3);
        let mut s = BisectState::new(&g, part);
        let before = s.cut;
        let bt = BalanceTargets::even(g.total_vwgt(), 1.03);
        let improved = fm_pass(&mut s, &bt, false, 50);
        assert!(improved);
        assert!(s.cut < before, "{} -> {}", before, s.cut);
        assert!(s.consistent());
        assert!(bt.balanced(s.pwgts));
    }

    #[test]
    fn boundary_pass_improves_too() {
        let g = tri_mesh2d(14, 14, 9);
        let part = random_partition(g.n(), 5);
        let mut s = BisectState::new(&g, part);
        let before = s.cut;
        let bt = BalanceTargets::even(g.total_vwgt(), 1.03);
        fm_pass(&mut s, &bt, true, 50);
        assert!(s.cut < before);
        assert!(s.consistent());
    }

    #[test]
    fn klr_converges_to_good_cut_on_grid() {
        // An 8x8 grid has an optimal bisection of 8; KLR from random should
        // land near it (allow slack, KL is a local method).
        let g = grid2d(8, 8);
        let mut s = BisectState::new(&g, random_partition(64, 7));
        let bt = BalanceTargets::even(64, 1.03);
        let cfg = MlConfig::default();
        refine_level(&mut s, &bt, RefinementPolicy::KernighanLin, &cfg, 64);
        // KL from a random start is a local method (the paper's motivation
        // for going multilevel): accept anything within ~3x of optimal.
        assert!(s.cut <= 24, "cut {}", s.cut);
        assert!(bt.balanced(s.pwgts));
        assert!(s.consistent());
    }

    #[test]
    fn repairs_imbalance() {
        // Start with everything on side 0: refinement must rebalance.
        let g = grid2d(10, 10);
        let mut s = BisectState::new(&g, vec![0; 100]);
        let bt = BalanceTargets::even(100, 1.03);
        let cfg = MlConfig::default();
        refine_level(&mut s, &bt, RefinementPolicy::KernighanLin, &cfg, 100);
        assert!(bt.balanced(s.pwgts), "pwgts {:?}", s.pwgts);
        assert!(s.consistent());
    }

    #[test]
    fn rollback_restores_consistency() {
        // With early_exit = 1 the pass aborts quickly and must roll back to
        // a consistent best prefix.
        let g = grid2d(9, 9);
        let mut s = BisectState::new(&g, random_partition(81, 11));
        let bt = BalanceTargets::even(81, 1.05);
        let cut_before = s.cut;
        fm_pass(&mut s, &bt, false, 1);
        assert!(s.consistent());
        assert!(s.cut <= cut_before);
    }

    #[test]
    fn perfect_partition_is_stable() {
        // Optimal vertical split of a grid: no policy should worsen it.
        let g = grid2d(12, 6);
        let part: Vec<u8> = (0..72).map(|i| if i % 12 < 6 { 0 } else { 1 }).collect();
        let bt = BalanceTargets::even(72, 1.03);
        let cfg = MlConfig::default();
        for policy in RefinementPolicy::evaluated() {
            let mut s = BisectState::new(&g, part.clone());
            refine_level(&mut s, &bt, policy, &cfg, 72);
            assert!(s.cut <= 6, "{policy:?} worsened cut to {}", s.cut);
            assert!(bt.balanced(s.pwgts), "{policy:?}");
        }
    }

    #[test]
    fn none_policy_is_identity() {
        let g = grid2d(6, 6);
        let part = random_partition(36, 2);
        let mut s = BisectState::new(&g, part.clone());
        let cfg = MlConfig::default();
        let bt = BalanceTargets::even(36, 1.03);
        refine_level(&mut s, &bt, RefinementPolicy::None, &cfg, 36);
        assert_eq!(s.part, part);
    }

    #[test]
    fn respects_hard_balance_bound() {
        let g = grid2d(10, 4);
        let mut s = BisectState::new(&g, random_partition(40, 13));
        let bt = BalanceTargets::even(40, 1.03);
        let cfg = MlConfig::default();
        for policy in RefinementPolicy::evaluated() {
            refine_level(&mut s, &bt, policy, &cfg, 40);
            assert!(
                bt.balanced(s.pwgts),
                "{policy:?} violated balance: {:?}",
                s.pwgts
            );
        }
    }
}
