//! Incremental bisection state: partition labels, part weights, and the
//! internal/external degree of every vertex.
//!
//! `ed[v]` (external degree) is the total weight of `v`'s edges crossing the
//! cut; `id[v]` (internal degree) the weight staying inside `v`'s part. The
//! KL gain of moving `v` is `ed[v] − id[v]`, and `cut = Σ ed / 2`. All
//! refinement algorithms operate on this state through `move_vertex`, which
//! maintains every quantity in `O(deg v)`.

use crate::matching::{resolve_shards, shard_bounds, MIN_PARALLEL_N};
use mlgp_graph::{CsrGraph, Vid, Wgt};
use rayon::prelude::*;

/// Mutable state of a 2-way partition under refinement.
#[derive(Debug)]
pub struct BisectState<'g> {
    g: &'g CsrGraph,
    /// Side (0/1) of each vertex.
    pub part: Vec<u8>,
    /// Total vertex weight per side.
    pub pwgts: [Wgt; 2],
    /// External (cut) degree per vertex.
    pub ed: Vec<Wgt>,
    /// Internal degree per vertex.
    pub id: Vec<Wgt>,
    /// Current edge-cut.
    pub cut: Wgt,
}

impl<'g> BisectState<'g> {
    /// Build the state for an existing partition in `O(n + m)` work,
    /// auto-threaded over the ambient rayon fan-out.
    pub fn new(g: &'g CsrGraph, part: Vec<u8>) -> Self {
        Self::with_threads(g, part, 0)
    }

    /// [`BisectState::new`] with an explicit worker-thread request (`0` =
    /// ambient). The construction shards the vertex range; every per-vertex
    /// quantity is computed independently and the shard partials (part
    /// weights, cut) are combined in shard order, so the state is
    /// bit-identical for every thread count.
    pub fn with_threads(g: &'g CsrGraph, part: Vec<u8>, threads: usize) -> Self {
        assert_eq!(part.len(), g.n());
        let n = g.n();
        let nshards = resolve_shards(n, threads);
        if nshards <= 1 {
            return Self::build_serial(g, part);
        }
        struct Shard {
            lo: usize,
            hi: usize,
            ed: Vec<Wgt>,
            id: Vec<Wgt>,
            pwgts: [Wgt; 2],
            cut: Wgt,
        }
        let part_ro: &[u8] = &part;
        let mut shards: Vec<Shard> = shard_bounds(n, nshards)
            .into_iter()
            .map(|(lo, hi)| Shard {
                lo,
                hi,
                ed: Vec::with_capacity(hi - lo),
                id: Vec::with_capacity(hi - lo),
                pwgts: [0, 0],
                cut: 0,
            })
            .collect();
        shards
            .par_iter_mut()
            .enumerate()
            .with_min_len(1)
            .for_each(|(_, sh)| {
                for v in sh.lo..sh.hi {
                    let pv = part_ro[v];
                    debug_assert!(pv <= 1);
                    sh.pwgts[pv as usize] += g.vwgt()[v];
                    let (mut ed_v, mut id_v) = (0, 0);
                    for (u, w) in g.adj(v as Vid) {
                        if part_ro[u as usize] == pv {
                            id_v += w;
                        } else {
                            ed_v += w;
                            if u as usize > v {
                                sh.cut += w;
                            }
                        }
                    }
                    sh.ed.push(ed_v);
                    sh.id.push(id_v);
                }
            });
        let mut ed = Vec::with_capacity(n);
        let mut id = Vec::with_capacity(n);
        let mut pwgts = [0, 0];
        let mut cut = 0;
        for sh in &mut shards {
            ed.append(&mut sh.ed);
            id.append(&mut sh.id);
            pwgts[0] += sh.pwgts[0];
            pwgts[1] += sh.pwgts[1];
            cut += sh.cut;
        }
        Self {
            g,
            part,
            pwgts,
            ed,
            id,
            cut,
        }
    }

    /// Serial construction (the single-shard fast path).
    fn build_serial(g: &'g CsrGraph, part: Vec<u8>) -> Self {
        let n = g.n();
        let mut pwgts = [0, 0];
        let mut ed = vec![0; n];
        let mut id = vec![0; n];
        let mut cut = 0;
        for v in 0..n {
            let pv = part[v];
            debug_assert!(pv <= 1);
            pwgts[pv as usize] += g.vwgt()[v];
            for (u, w) in g.adj(v as Vid) {
                if part[u as usize] == pv {
                    id[v] += w;
                } else {
                    ed[v] += w;
                    if u as usize > v {
                        cut += w;
                    }
                }
            }
        }
        Self {
            g,
            part,
            pwgts,
            ed,
            id,
            cut,
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g CsrGraph {
        self.g
    }

    /// KL gain of moving `v` to the other side.
    #[inline]
    pub fn gain(&self, v: Vid) -> Wgt {
        self.ed[v as usize] - self.id[v as usize]
    }

    /// A vertex is on the boundary iff it has cut edges (isolated vertices
    /// also count so they stay movable for balancing).
    #[inline]
    pub fn is_boundary(&self, v: Vid) -> bool {
        self.ed[v as usize] > 0 || self.g.degree(v) == 0
    }

    /// Number of boundary vertices (parallel chunk-ordered sum).
    pub fn boundary_count(&self) -> usize {
        (0..self.g.n())
            .into_par_iter()
            .with_min_len(MIN_PARALLEL_N)
            .map(|v| self.is_boundary(v as Vid) as usize)
            .sum()
    }

    /// Vertices eligible for refinement seeding — all of them, or only the
    /// boundary — in ascending vertex order. The scan runs as a parallel
    /// fold whose chunk results are concatenated in chunk order, so the
    /// list is identical to the serial `0..n` filter at any thread count.
    pub fn movable_vertices(&self, boundary_only: bool) -> Vec<Vid> {
        (0..self.g.n())
            .into_par_iter()
            .with_min_len(MIN_PARALLEL_N)
            .fold(Vec::new, |mut acc: Vec<Vid>, v| {
                if !boundary_only || self.is_boundary(v as Vid) {
                    acc.push(v as Vid);
                }
                acc
            })
            .reduce(Vec::new, |mut a, mut b| {
                a.append(&mut b);
                a
            })
    }

    /// Move `v` to the other side, updating partition, weights, degrees and
    /// cut in `O(deg v)`. Also used to *undo* a move (it is an involution).
    pub fn move_vertex(&mut self, v: Vid) {
        let from = self.part[v as usize];
        let to = 1 - from;
        let vw = self.g.vwgt()[v as usize];
        self.cut -= self.gain(v);
        self.part[v as usize] = to;
        self.pwgts[from as usize] -= vw;
        self.pwgts[to as usize] += vw;
        let (ed_v, id_v) = (self.ed[v as usize], self.id[v as usize]);
        self.ed[v as usize] = id_v;
        self.id[v as usize] = ed_v;
        for (u, w) in self.g.adj(v) {
            if self.part[u as usize] == to {
                // u is now on v's side: the edge stopped being cut.
                self.id[u as usize] += w;
                self.ed[u as usize] -= w;
            } else {
                self.ed[u as usize] += w;
                self.id[u as usize] -= w;
            }
        }
    }

    /// Recompute everything from scratch and compare (debug aid; used by
    /// tests and property checks).
    pub fn consistent(&self) -> bool {
        let fresh = BisectState::new(self.g, self.part.clone());
        fresh.cut == self.cut
            && fresh.pwgts == self.pwgts
            && fresh.ed == self.ed
            && fresh.id == self.id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlgp_graph::generators::grid2d;
    use mlgp_graph::GraphBuilder;

    #[test]
    fn initial_state_of_square() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1)
            .add_edge(1, 2)
            .add_edge(2, 3)
            .add_edge(3, 0);
        let g = b.build();
        let s = BisectState::new(&g, vec![0, 0, 1, 1]);
        assert_eq!(s.cut, 2);
        assert_eq!(s.pwgts, [2, 2]);
        assert_eq!(s.ed, vec![1, 1, 1, 1]);
        assert_eq!(s.id, vec![1, 1, 1, 1]);
        assert_eq!(s.gain(0), 0);
        assert!(s.is_boundary(0));
        assert_eq!(s.boundary_count(), 4);
    }

    #[test]
    fn move_updates_everything() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1)
            .add_edge(1, 2)
            .add_edge(2, 3)
            .add_edge(3, 0);
        let g = b.build();
        let mut s = BisectState::new(&g, vec![0, 0, 1, 1]);
        s.move_vertex(1);
        assert_eq!(s.part, vec![0, 1, 1, 1]);
        assert_eq!(s.cut, 2);
        assert_eq!(s.pwgts, [1, 3]);
        assert!(s.consistent());
    }

    #[test]
    fn move_is_involution() {
        let g = grid2d(6, 6);
        let part: Vec<u8> = (0..36).map(|i| ((i / 6) % 2) as u8).collect();
        let mut s = BisectState::new(&g, part.clone());
        let cut0 = s.cut;
        s.move_vertex(14);
        s.move_vertex(14);
        assert_eq!(s.part, part);
        assert_eq!(s.cut, cut0);
        assert!(s.consistent());
    }

    #[test]
    fn gain_predicts_cut_change() {
        let g = grid2d(5, 5);
        let part: Vec<u8> = (0..25).map(|i| if i % 5 < 2 { 0 } else { 1 }).collect();
        let mut s = BisectState::new(&g, part);
        for v in [0u32, 7, 12, 24] {
            let before = s.cut;
            let gain = s.gain(v);
            s.move_vertex(v);
            assert_eq!(s.cut, before - gain, "vertex {v}");
            assert!(s.consistent());
        }
    }

    #[test]
    fn sequence_of_moves_stays_consistent() {
        let g = grid2d(7, 4);
        let part: Vec<u8> = (0..28).map(|i| (i % 2) as u8).collect();
        let mut s = BisectState::new(&g, part);
        for v in [3u32, 9, 9, 20, 5, 3, 27, 0] {
            s.move_vertex(v);
        }
        assert!(s.consistent());
    }
}
