//! Lazy max-gain priority queue.
//!
//! The paper stores gains in a hash table with O(1) max extraction; we use a
//! binary heap with lazy invalidation: every gain update pushes a fresh
//! entry, and stale entries (vertex moved, or gain changed since the push)
//! are discarded at pop time. Amortized `O(log n)` per operation with the
//! same refinement semantics.

use mlgp_graph::{Vid, Wgt};
use std::collections::BinaryHeap;

/// Max-heap of `(gain, vertex)` entries with lazy staleness checks.
#[derive(Debug, Default)]
pub struct GainQueue {
    heap: BinaryHeap<(Wgt, Vid)>,
}

impl GainQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty queue with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(cap),
        }
    }

    /// Record (vertex, gain). Older entries for the same vertex become
    /// stale automatically.
    #[inline]
    pub fn push(&mut self, v: Vid, gain: Wgt) {
        self.heap.push((gain, v));
    }

    /// Pop the highest-gain entry for which `valid(v, gain)` holds,
    /// discarding stale entries along the way.
    pub fn pop_valid<F: FnMut(Vid, Wgt) -> bool>(&mut self, mut valid: F) -> Option<(Vid, Wgt)> {
        while let Some((gain, v)) = self.heap.pop() {
            if valid(v, gain) {
                return Some((v, gain));
            }
        }
        None
    }

    /// Whether no entries remain (stale or not).
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop all entries.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Number of stored entries, including stale ones.
    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_gain_order() {
        let mut q = GainQueue::new();
        q.push(1, 5);
        q.push(2, 9);
        q.push(3, -2);
        assert_eq!(q.pop_valid(|_, _| true), Some((2, 9)));
        assert_eq!(q.pop_valid(|_, _| true), Some((1, 5)));
        assert_eq!(q.pop_valid(|_, _| true), Some((3, -2)));
        assert_eq!(q.pop_valid(|_, _| true), None);
    }

    #[test]
    fn skips_stale_entries() {
        let mut q = GainQueue::new();
        q.push(7, 10); // stale: gain changed to 3 below
        q.push(7, 3);
        let current = 3;
        let got = q.pop_valid(|v, g| v == 7 && g == current);
        assert_eq!(got, Some((7, 3)));
    }

    #[test]
    fn filters_moved_vertices() {
        let mut q = GainQueue::new();
        q.push(1, 4);
        q.push(2, 2);
        let moved = [false, true, false];
        assert_eq!(q.pop_valid(|v, _| !moved[v as usize]), Some((2, 2)));
    }

    #[test]
    fn clear_and_len() {
        let mut q = GainQueue::with_capacity(4);
        assert!(q.is_empty());
        q.push(0, 1);
        q.push(0, 2);
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
    }
}
