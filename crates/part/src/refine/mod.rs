//! Uncoarsening-phase partition refinement (§3.3 of the paper): the KL/FM
//! move engine, gain queues, and the GR / KLR / BGR / BKLR / BKLGR policies.

pub mod fm;
pub mod queue;
pub mod state;

pub use fm::{
    fm_pass, fm_pass_stats, refine_level, refine_level_stats, BalanceTargets, PassStats,
    RefineStats,
};
pub use queue::GainQueue;
pub use state::BisectState;
