//! k-way partitioning by recursive bisection (§2 of the paper).
//!
//! The graph is bisected, the two induced subgraphs are partitioned
//! recursively (in parallel — the subproblems are independent, which is the
//! parallelism the paper's §5 exploits on the Cray T3D), and labels are
//! composed. Non-power-of-two `k` is handled by splitting weight targets
//! proportionally (`⌈k/2⌉ : ⌊k/2⌋`).

use crate::bisect::{bisect_targets_branch, BisectionResult, PhaseTimes};
use crate::config::MlConfig;
use crate::metrics::edge_cut_kway;
use mlgp_graph::{split_by_part, CsrGraph, Wgt};
use mlgp_trace::Trace;

/// Result of a k-way partitioning.
#[derive(Clone, Debug)]
pub struct KwayResult {
    /// Part label (`0..k`) per vertex.
    pub part: Vec<u32>,
    /// Total edge-cut.
    pub edge_cut: Wgt,
    /// Number of parts requested.
    pub nparts: usize,
    /// Phase times accumulated over every bisection in the recursion tree.
    pub times: PhaseTimes,
}

/// Subproblems smaller than this are recursed sequentially; larger ones
/// fork with rayon.
const PARALLEL_THRESHOLD: usize = 4096;

/// Partition `g` into `k` parts of near-equal vertex weight.
pub fn kway_partition(g: &CsrGraph, k: usize, cfg: &MlConfig) -> KwayResult {
    kway_partition_traced(g, k, cfg, &Trace::disabled())
}

/// [`kway_partition`] with telemetry: every bisection in the recursion tree
/// records its phase spans and per-level events, salted with its recursion
/// path (the `branch` field) so the levels of different subproblems remain
/// separable. The trace handle crosses the rayon forks.
pub fn kway_partition_traced(g: &CsrGraph, k: usize, cfg: &MlConfig, trace: &Trace) -> KwayResult {
    assert!(k >= 1, "k must be at least 1");
    let mut part = vec![0u32; g.n()];
    let times = rec(g, k, cfg, 1, &mut part, trace);
    let edge_cut = edge_cut_kway(g, &part);
    KwayResult {
        part,
        edge_cut,
        nparts: k,
        times,
    }
}

/// Recursive worker: writes labels `0..k` into `part` (parallel to `g`'s
/// vertices). `salt` identifies the recursion path for deterministic
/// re-seeding.
fn rec(
    g: &CsrGraph,
    k: usize,
    cfg: &MlConfig,
    salt: u64,
    part: &mut [u32],
    trace: &Trace,
) -> PhaseTimes {
    if k <= 1 || g.n() == 0 {
        for p in part.iter_mut() {
            *p = 0;
        }
        return PhaseTimes::default();
    }
    let k0 = k.div_ceil(2);
    let k1 = k - k0;
    let total = g.total_vwgt();
    // Proportional target: side 0 receives k0/k of the weight.
    let t0 = ((total as i128 * k0 as i128) / k as i128) as Wgt;
    let r: BisectionResult =
        bisect_targets_branch(g, &cfg.reseed(salt), [t0, total - t0], trace, salt);
    if k == 2 {
        for (p, &side) in part.iter_mut().zip(&r.part) {
            *p = side as u32;
        }
        return r.times;
    }
    let bpart: Vec<u32> = r.part.iter().map(|&s| s as u32).collect();
    let subs = split_by_part(g, &bpart, 2);
    let (s0, s1) = (&subs[0], &subs[1]);
    let mut part0 = vec![0u32; s0.graph.n()];
    let mut part1 = vec![0u32; s1.graph.n()];
    let (times0, times1) = if g.n() >= PARALLEL_THRESHOLD {
        rayon::join(
            || rec(&s0.graph, k0, cfg, salt * 2, &mut part0, trace),
            || rec(&s1.graph, k1, cfg, salt * 2 + 1, &mut part1, trace),
        )
    } else {
        (
            rec(&s0.graph, k0, cfg, salt * 2, &mut part0, trace),
            rec(&s1.graph, k1, cfg, salt * 2 + 1, &mut part1, trace),
        )
    };
    for (i, &orig) in s0.orig.iter().enumerate() {
        part[orig as usize] = part0[i];
    }
    for (i, &orig) in s1.orig.iter().enumerate() {
        part[orig as usize] = k0 as u32 + part1[i];
    }
    r.times.merge(&times0).merge(&times1)
}

/// Recursive k-way driver over an arbitrary bisector — used to lift the
/// spectral baselines (MSB, MSB-KL, Chaco-ML) to k-way exactly the way the
/// paper does (recursive bisection).
///
/// The bisector receives the subgraph, the `[side0, side1]` weight targets
/// and a deterministic salt, and returns 0/1 labels.
pub fn recursive_kway_with<F>(g: &CsrGraph, k: usize, bisector: &F) -> Vec<u32>
where
    F: Fn(&CsrGraph, [Wgt; 2], u64) -> Vec<u8> + Sync,
{
    let mut part = vec![0u32; g.n()];
    rec_with(g, k, bisector, 1, &mut part);
    part
}

fn rec_with<F>(g: &CsrGraph, k: usize, bisector: &F, salt: u64, part: &mut [u32])
where
    F: Fn(&CsrGraph, [Wgt; 2], u64) -> Vec<u8> + Sync,
{
    if k <= 1 || g.n() == 0 {
        for p in part.iter_mut() {
            *p = 0;
        }
        return;
    }
    let k0 = k.div_ceil(2);
    let k1 = k - k0;
    let total = g.total_vwgt();
    let t0 = ((total as i128 * k0 as i128) / k as i128) as Wgt;
    let bpart8 = bisector(g, [t0, total - t0], salt);
    if k == 2 {
        for (p, &side) in part.iter_mut().zip(&bpart8) {
            *p = side as u32;
        }
        return;
    }
    let bpart: Vec<u32> = bpart8.iter().map(|&s| s as u32).collect();
    let subs = split_by_part(g, &bpart, 2);
    let (s0, s1) = (&subs[0], &subs[1]);
    let mut part0 = vec![0u32; s0.graph.n()];
    let mut part1 = vec![0u32; s1.graph.n()];
    if g.n() >= PARALLEL_THRESHOLD {
        rayon::join(
            || rec_with(&s0.graph, k0, bisector, salt * 2, &mut part0),
            || rec_with(&s1.graph, k1, bisector, salt * 2 + 1, &mut part1),
        );
    } else {
        rec_with(&s0.graph, k0, bisector, salt * 2, &mut part0);
        rec_with(&s1.graph, k1, bisector, salt * 2 + 1, &mut part1);
    }
    for (i, &orig) in s0.orig.iter().enumerate() {
        part[orig as usize] = part0[i];
    }
    for (i, &orig) in s1.orig.iter().enumerate() {
        part[orig as usize] = k0 as u32 + part1[i];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{imbalance, part_weights};
    use mlgp_graph::generators::{grid2d, tet_mesh3d, tri_mesh2d};

    #[test]
    fn four_way_grid() {
        let g = grid2d(24, 24);
        let r = kway_partition(&g, 4, &MlConfig::default());
        assert_eq!(r.nparts, 4);
        // Every part non-empty and labels within range.
        let w = part_weights(&g, &r.part, 4);
        assert!(w.iter().all(|&x| x > 0), "{w:?}");
        assert!(
            imbalance(&g, &r.part, 4) < 1.10,
            "{}",
            imbalance(&g, &r.part, 4)
        );
        // Optimal 4-way of a 24x24 grid is 48; stay in range.
        assert!(r.edge_cut >= 48 && r.edge_cut <= 96, "cut {}", r.edge_cut);
    }

    #[test]
    fn k_equals_one_is_trivial() {
        let g = grid2d(5, 5);
        let r = kway_partition(&g, 1, &MlConfig::default());
        assert_eq!(r.edge_cut, 0);
        assert!(r.part.iter().all(|&p| p == 0));
    }

    #[test]
    fn non_power_of_two_parts() {
        let g = tri_mesh2d(30, 30, 3);
        for k in [3, 5, 6, 7] {
            let r = kway_partition(&g, k, &MlConfig::default());
            let w = part_weights(&g, &r.part, k);
            assert!(w.iter().all(|&x| x > 0), "k={k}: {w:?}");
            let imb = imbalance(&g, &r.part, k);
            assert!(imb < 1.15, "k={k}: imbalance {imb}");
            assert_eq!(r.part.iter().map(|&p| p as usize).max().unwrap(), k - 1);
        }
    }

    #[test]
    fn larger_k_cuts_more() {
        let g = grid2d(32, 32);
        let cfg = MlConfig::default();
        let c2 = kway_partition(&g, 2, &cfg).edge_cut;
        let c8 = kway_partition(&g, 8, &cfg).edge_cut;
        let c32 = kway_partition(&g, 32, &cfg).edge_cut;
        assert!(c2 < c8 && c8 < c32, "{c2} {c8} {c32}");
    }

    #[test]
    fn deterministic() {
        let g = tet_mesh3d(8, 8, 8, 4);
        let a = kway_partition(&g, 8, &MlConfig::default());
        let b = kway_partition(&g, 8, &MlConfig::default());
        assert_eq!(a.part, b.part);
        assert_eq!(a.edge_cut, b.edge_cut);
    }

    #[test]
    fn times_accumulate_over_recursion() {
        let g = grid2d(40, 40);
        let r = kway_partition(&g, 8, &MlConfig::default());
        assert!(r.times.coarsen > std::time::Duration::ZERO);
    }
}
