//! The coarsening phase: iterate matching + contraction until the graph is
//! small (§3.1).

use crate::config::MlConfig;
use crate::contract::contract_threads;
use crate::matching::{compute_matching_threads, MIN_PARALLEL_N};
use mlgp_graph::{CsrGraph, Vid};
use mlgp_trace::Trace;
use rand::Rng;
use rayon::prelude::*;

/// The multilevel hierarchy `G_0 ⊐ G_1 ⊐ … ⊐ G_m`.
///
/// `graphs[0]` is the input; `cmaps[i]` maps vertices of `graphs[i]` to
/// vertices of `graphs[i + 1]` (so `cmaps.len() == graphs.len() - 1`).
#[derive(Clone, Debug)]
pub struct Hierarchy {
    /// The graphs, finest first.
    pub graphs: Vec<CsrGraph>,
    /// Level-to-level coarse maps.
    pub cmaps: Vec<Vec<Vid>>,
}

impl Hierarchy {
    /// Number of levels (≥ 1).
    pub fn levels(&self) -> usize {
        self.graphs.len()
    }

    /// The coarsest graph.
    pub fn coarsest(&self) -> &CsrGraph {
        // LINT: allow(panic, hierarchy invariant — graphs always holds at least the input level)
        self.graphs.last().unwrap()
    }

    /// Project a partition of level `i + 1` onto level `i`. Each fine
    /// vertex reads exactly one coarse label, so the parallel scatter is
    /// trivially deterministic; small levels stay on one chunk.
    pub fn project(&self, level: usize, coarse_part: &[u8]) -> Vec<u8> {
        let cmap = &self.cmaps[level];
        assert_eq!(coarse_part.len(), self.graphs[level + 1].n());
        let mut fine = vec![0u8; cmap.len()];
        fine.par_iter_mut()
            .enumerate()
            .with_min_len(MIN_PARALLEL_N)
            .for_each(|(v, slot)| *slot = coarse_part[cmap[v] as usize]);
        fine
    }
}

/// Coarsen `g` according to `cfg` (matching scheme, size target, stagnation
/// guard). The RNG drives the random vertex visit orders.
pub fn coarsen<R: Rng>(g: &CsrGraph, cfg: &MlConfig, rng: &mut R) -> Hierarchy {
    coarsen_traced(g, cfg, rng, &Trace::disabled())
}

/// [`coarsen`] with kernel telemetry: records per-level parallel-kernel
/// counters (`par_matching_rounds`, `par_matching_fallbacks`, per-shard
/// edge-scan work) into `trace` when it is enabled. The hierarchy itself
/// is identical to [`coarsen`]'s — tracing never perturbs the result.
pub fn coarsen_traced<R: Rng>(
    g: &CsrGraph,
    cfg: &MlConfig,
    rng: &mut R,
    trace: &Trace,
) -> Hierarchy {
    let mut graphs = vec![g.clone()];
    let mut cmaps: Vec<Vec<Vid>> = Vec::new();
    let mut cewgt = vec![0; g.n()];
    loop {
        // LINT: allow(panic, graphs is seeded with the input level and only grows)
        let cur = graphs.last().unwrap();
        let n = cur.n();
        if n <= cfg.coarsen_to.max(2) || cur.m() == 0 {
            break;
        }
        let (m, mstats) = compute_matching_threads(cur, cfg.matching, &cewgt, rng, cfg.threads);
        let (cmap, nc) = m.to_cmap();
        if nc as f64 > cfg.min_coarsen_shrink * n as f64 {
            // Matching stagnated (e.g. star graphs); stop coarsening.
            break;
        }
        let (c, cstats) = contract_threads(cur, &cmap, nc, &cewgt, cfg.threads);
        if trace.is_enabled() {
            trace.count("par_matching_rounds", mstats.rounds as u64);
            trace.count("par_matching_fallbacks", mstats.fallback as u64);
            trace.count("par_match_shards", mstats.shards as u64);
            trace.count("par_contract_shards", cstats.shards as u64);
            for (i, &e) in mstats.edges_scanned.iter().enumerate() {
                trace.count(&format!("par_match_shard{i}_edges"), e);
            }
            for (i, &e) in cstats.entries.iter().enumerate() {
                trace.count(&format!("par_contract_shard{i}_entries"), e);
            }
        }
        cewgt = c.cewgt;
        graphs.push(c.graph);
        cmaps.push(cmap);
    }
    Hierarchy { graphs, cmaps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MatchingScheme;
    use mlgp_graph::generators::{grid2d, powerlaw, tri_mesh2d};
    use mlgp_graph::rng::seeded;
    use mlgp_graph::GraphBuilder;

    fn cfg_with(matching: MatchingScheme, coarsen_to: usize) -> MlConfig {
        MlConfig {
            matching,
            coarsen_to,
            ..MlConfig::default()
        }
    }

    #[test]
    fn coarsens_grid_below_threshold() {
        let g = grid2d(32, 32);
        for scheme in MatchingScheme::all() {
            let h = coarsen(&g, &cfg_with(scheme, 100), &mut seeded(1));
            assert!(h.coarsest().n() <= 100 || h.levels() == 1, "{scheme:?}");
            assert!(h.levels() >= 3, "{scheme:?} produced too few levels");
            // Vertex weight is conserved at every level.
            for lvl in &h.graphs {
                assert_eq!(lvl.total_vwgt(), g.total_vwgt());
            }
            // Sizes strictly decrease.
            for w in h.graphs.windows(2) {
                assert!(w[1].n() < w[0].n());
            }
        }
    }

    #[test]
    fn projection_round_trip() {
        let g = tri_mesh2d(16, 16, 2);
        let h = coarsen(&g, &cfg_with(MatchingScheme::HeavyEdge, 60), &mut seeded(2));
        // All-zeros and alternating partitions project consistently.
        let nc = h.coarsest().n();
        let cpart: Vec<u8> = (0..nc).map(|i| (i % 2) as u8).collect();
        let mut part = cpart;
        for level in (0..h.levels() - 1).rev() {
            let fine = h.project(level, &part);
            assert_eq!(fine.len(), h.graphs[level].n());
            // Projected cut equals coarse cut (contraction preserves cuts).
            assert_eq!(
                crate::metrics::edge_cut_bisection(&h.graphs[level], &fine),
                crate::metrics::edge_cut_bisection(&h.graphs[level + 1], &part),
            );
            part = fine;
        }
    }

    #[test]
    fn stagnation_guard_stops_on_star() {
        // A star can only shrink by one vertex per level via matching; the
        // shrink guard must terminate coarsening.
        let mut b = GraphBuilder::new(101);
        for i in 1..101 {
            b.add_edge(0, i);
        }
        let g = b.build();
        let h = coarsen(&g, &cfg_with(MatchingScheme::Random, 10), &mut seeded(3));
        assert!(h.levels() < 20, "guard failed: {} levels", h.levels());
    }

    #[test]
    fn small_graph_is_left_alone() {
        let g = grid2d(5, 5);
        let h = coarsen(
            &g,
            &cfg_with(MatchingScheme::HeavyEdge, 100),
            &mut seeded(4),
        );
        assert_eq!(h.levels(), 1);
        assert!(h.cmaps.is_empty());
    }

    #[test]
    fn powerlaw_graph_coarsens() {
        let g = powerlaw(3000, 3, 7);
        let h = coarsen(
            &g,
            &cfg_with(MatchingScheme::HeavyEdge, 100),
            &mut seeded(5),
        );
        assert!(h.coarsest().n() < 3000);
        for lvl in &h.graphs {
            assert!(lvl.validate().is_ok());
        }
    }

    #[test]
    fn hem_reduces_edge_weight_fast() {
        // HEM removes at least as much edge weight per level as LEM on a
        // weighted graph (fixed seed).
        let g0 = grid2d(24, 24);
        let mut b = GraphBuilder::new(g0.n());
        for v in 0..g0.n() as Vid {
            for (u, _) in g0.adj(v) {
                if u > v {
                    b.add_weighted_edge(v, u, 1 + ((v + 3 * u) % 7) as i64);
                }
            }
        }
        let g = b.build();
        let hem = coarsen(&g, &cfg_with(MatchingScheme::HeavyEdge, 50), &mut seeded(6));
        let lem = coarsen(&g, &cfg_with(MatchingScheme::LightEdge, 50), &mut seeded(6));
        assert!(
            hem.graphs[1].total_adjwgt() < lem.graphs[1].total_adjwgt(),
            "HEM {} vs LEM {}",
            hem.graphs[1].total_adjwgt(),
            lem.graphs[1].total_adjwgt()
        );
    }
}
