//! Partitioning the coarsest graph (§3.2 of the paper).
//!
//! Three algorithms: GGP (breadth-first graph growing), GGGP (greedy graph
//! growing, picking the frontier vertex that increases the cut least), and
//! spectral bisection. GGP/GGGP run several trials from random seeds and
//! keep the best cut; the paper found GGGP with 5 trials consistently best.
//!
//! ## Trial fan-out
//!
//! Trials are embarrassingly parallel and run concurrently. Each trial `t`
//! owns an independent RNG stream seeded by a SplitMix64 mix of `(base,
//! t)`, where `base` is a **single** `next_u64` draw from the caller's RNG
//! — so the shared RNG advances by exactly one draw regardless of the
//! trial count, and trial `t` produces the same start vertex no matter how
//! many siblings run or in what order they finish. The winner is selected
//! by the strict total order *(balanced first, then lower cut, then lower
//! trial index)*, which makes the reduction independent of evaluation
//! order and therefore of the thread count.

use crate::config::InitialPartitioning;
use crate::metrics::edge_cut_bisection;
use crate::refine::fm::BalanceTargets;
use crate::refine::GainQueue;
use mlgp_graph::rng::seeded;
use mlgp_graph::{CsrGraph, Vid, Wgt};
use mlgp_trace::Trace;
use rand::{Rng, RngExt};
use std::collections::VecDeque;

/// Compute an initial bisection of the (coarse) graph.
///
/// Part 0 is grown to roughly `bt.target[0]` vertex weight. Returns the 0/1
/// partition vector.
pub fn initial_partition<R: Rng>(
    g: &CsrGraph,
    bt: &BalanceTargets,
    scheme: InitialPartitioning,
    trials: usize,
    rng: &mut R,
) -> Vec<u8> {
    initial_partition_traced(g, bt, scheme, trials, rng, 0, &Trace::disabled())
}

/// [`initial_partition`] with a worker-thread knob (`0` = ambient rayon
/// fan-out; purely a speed knob, results are bit-identical at every value)
/// and telemetry: each growing trial bumps the `init_trial` counter and
/// the spectral scheme records an `eigen` event per Fiedler solve.
pub fn initial_partition_traced<R: Rng>(
    g: &CsrGraph,
    bt: &BalanceTargets,
    scheme: InitialPartitioning,
    trials: usize,
    rng: &mut R,
    threads: usize,
    trace: &Trace,
) -> Vec<u8> {
    let n = g.n();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![0];
    }
    // One draw, whatever the trial count: downstream consumers of `rng`
    // see the same stream whether we run 1 trial or 100 (and the spectral
    // scheme burns the draw too, so switching schemes is also neutral).
    let base = rng.next_u64();
    match scheme {
        InitialPartitioning::GraphGrowing => best_of(g, bt, trials, base, threads, trace, grow_bfs),
        InitialPartitioning::GreedyGraphGrowing => {
            best_of(g, bt, trials, base, threads, trace, grow_greedy)
        }
        InitialPartitioning::Spectral => spectral_split(g, bt, threads, trace),
    }
}

/// Independent RNG stream for trial `t`: SplitMix64 mix of `(base, t)`,
/// the same decorrelation step as `MlConfig::reseed`.
fn trial_seed(base: u64, t: u64) -> u64 {
    let mut z = base.wrapping_add((t.wrapping_add(1)).wrapping_mul(0x9E3779B97F4A7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// One evaluated trial: the strict winner key `(balanced, cut, index)`
/// plus the grown partition.
struct Trial {
    balanced: bool,
    cut: Wgt,
    index: usize,
    part: Vec<u8>,
}

impl Trial {
    /// Ascending winner key: balanced sorts first (`!balanced` = false),
    /// then lower cut, then lower trial index.
    fn key(&self) -> (bool, Wgt, usize) {
        (!self.balanced, self.cut, self.index)
    }

    /// Strict total order — total ⇒ the parallel reduction commutes.
    fn beats(&self, other: &Trial) -> bool {
        self.key() < other.key()
    }
}

/// Run `grow` from `trials` independent random starts (concurrently when
/// the fan-out allows), keep the winner under the strict
/// (balanced, cut, index) key.
fn best_of(
    g: &CsrGraph,
    bt: &BalanceTargets,
    trials: usize,
    base: u64,
    threads: usize,
    trace: &Trace,
    grow: fn(&CsrGraph, &BalanceTargets, Vid) -> Vec<u8>,
) -> Vec<u8> {
    let n = g.n();
    let trials = trials.max(1);
    trace.count("init_trial", trials as u64);
    let run_trial = |t: usize| -> Trial {
        let mut rng = seeded(trial_seed(base, t as u64));
        let start = rng.random_range(0..n) as Vid;
        let part = grow(g, bt, start);
        let cut = edge_cut_bisection(g, &part);
        let balanced = bt.balanced(part_weights(g, &part));
        Trial {
            balanced,
            cut,
            index: t,
            part,
        }
    };
    let pick = |a: Option<Trial>, b: Option<Trial>| -> Option<Trial> {
        match (a, b) {
            (Some(x), Some(y)) => Some(if y.beats(&x) { y } else { x }),
            (x, None) | (None, x) => x,
        }
    };
    let best = mlgp_linalg::with_fanout(threads, || {
        use rayon::prelude::*;
        (0..trials)
            .into_par_iter()
            .with_min_len(1)
            .map(|t| Some(run_trial(t)))
            .reduce(|| None, pick)
    });
    // LINT: allow(panic, trials is clamped to max(1) above, so the reduction always yields Some)
    best.expect("at least one trial ran").part
}

fn part_weights(g: &CsrGraph, part: &[u8]) -> [Wgt; 2] {
    let mut pw = [0, 0];
    for v in 0..g.n() {
        pw[part[v] as usize] += g.vwgt()[v];
    }
    pw
}

/// GGP: grow part 0 breadth-first from `start` until it reaches its target
/// weight. Disconnected graphs continue from the lowest unvisited vertex.
fn grow_bfs(g: &CsrGraph, bt: &BalanceTargets, start: Vid) -> Vec<u8> {
    let n = g.n();
    let mut part = vec![1u8; n];
    let mut w0 = 0 as Wgt;
    let mut queue = VecDeque::new();
    let mut seen = vec![false; n];
    let mut next_seed = 0 as Vid;
    queue.push_back(start);
    seen[start as usize] = true;
    while w0 < bt.target[0] {
        let v = match queue.pop_front() {
            Some(v) => v,
            None => {
                // Component exhausted; restart from an unvisited vertex.
                while (next_seed as usize) < n && seen[next_seed as usize] {
                    next_seed += 1;
                }
                if next_seed as usize >= n {
                    break;
                }
                seen[next_seed as usize] = true;
                next_seed
            }
        };
        // Do not overshoot the bound by a large vertex unless nothing was
        // added yet.
        if w0 > 0 && w0 + g.vwgt()[v as usize] > bt.ub[0] {
            continue;
        }
        part[v as usize] = 0;
        w0 += g.vwgt()[v as usize];
        for &u in g.neighbors(v) {
            if !seen[u as usize] {
                seen[u as usize] = true;
                queue.push_back(u);
            }
        }
    }
    part
}

/// GGGP: grow part 0 from `start`, always absorbing the frontier vertex
/// whose inclusion increases the cut least (equivalently, maximizes
/// `2·conn(u) − wdeg(u)` where `conn` is the weight of edges into the grown
/// region).
fn grow_greedy(g: &CsrGraph, bt: &BalanceTargets, start: Vid) -> Vec<u8> {
    let n = g.n();
    let mut part = vec![1u8; n];
    let mut conn = vec![0 as Wgt; n];
    let mut queue = GainQueue::with_capacity(64);
    let mut w0 = 0 as Wgt;
    let mut next_seed = 0 as Vid;
    // Vertices rejected because they would overshoot the weight bound; they
    // must not be offered again (prevents a reseed livelock).
    let mut banned = vec![false; n];
    let key = |g: &CsrGraph, conn: &[Wgt], u: Vid| 2 * conn[u as usize] - g.weighted_degree(u);
    let absorb =
        |v: Vid, part: &mut Vec<u8>, conn: &mut Vec<Wgt>, queue: &mut GainQueue, w0: &mut Wgt| {
            part[v as usize] = 0;
            *w0 += g.vwgt()[v as usize];
            for (u, w) in g.adj(v) {
                if part[u as usize] == 1 {
                    conn[u as usize] += w;
                    queue.push(u, key(g, conn, u));
                }
            }
        };
    absorb(start, &mut part, &mut conn, &mut queue, &mut w0);
    while w0 < bt.target[0] {
        let popped = queue.pop_valid(|u, k| {
            part[u as usize] == 1 && !banned[u as usize] && key(g, &conn, u) == k
        });
        let v = match popped {
            Some((v, _)) => v,
            None => {
                // Frontier empty (component exhausted): reseed.
                while (next_seed as usize) < n
                    && (part[next_seed as usize] == 0 || banned[next_seed as usize])
                {
                    next_seed += 1;
                }
                if next_seed as usize >= n {
                    break;
                }
                next_seed
            }
        };
        if w0 > 0 && w0 + g.vwgt()[v as usize] > bt.ub[0] {
            banned[v as usize] = true;
            continue;
        }
        absorb(v, &mut part, &mut conn, &mut queue, &mut w0);
    }
    part
}

/// Spectral bisection: split at the weighted median of the Fiedler vector.
fn spectral_split(g: &CsrGraph, bt: &BalanceTargets, threads: usize, trace: &Trace) -> Vec<u8> {
    let (_, fiedler) = mlgp_linalg::fiedler_vector_threads_traced(g, 0x5bec, threads, trace);
    split_by_values(g, &fiedler, bt)
}

/// Assign the vertices with smallest `values` to part 0 until its target
/// weight is met. Shared by spectral initial partitioning and the spectral
/// baselines in `mlgp-spectral`.
pub fn split_by_values(g: &CsrGraph, values: &[f64], bt: &BalanceTargets) -> Vec<u8> {
    let n = g.n();
    assert_eq!(values.len(), n);
    let mut order: Vec<Vid> = (0..n as Vid).collect();
    order.sort_by(|&a, &b| {
        values[a as usize]
            .partial_cmp(&values[b as usize])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut part = vec![1u8; n];
    let mut w0 = 0;
    for &v in &order {
        if w0 >= bt.target[0] {
            break;
        }
        part[v as usize] = 0;
        w0 += g.vwgt()[v as usize];
    }
    part
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::imbalance;
    use mlgp_graph::generators::{grid2d, tri_mesh2d};
    use mlgp_graph::rng::seeded;

    fn check_scheme(g: &CsrGraph, scheme: InitialPartitioning) -> (Wgt, [Wgt; 2]) {
        let bt = BalanceTargets::even(g.total_vwgt(), 1.05);
        let mut rng = seeded(42);
        let part = initial_partition(g, &bt, scheme, scheme.default_trials(), &mut rng);
        let cut = edge_cut_bisection(g, &part);
        let pw = part_weights(g, &part);
        assert!(cut > 0, "{scheme:?}: zero cut on connected graph");
        assert!(bt.balanced(pw), "{scheme:?}: imbalanced {pw:?}");
        (cut, pw)
    }

    #[test]
    fn all_schemes_balanced_on_grid() {
        let g = grid2d(12, 12);
        for scheme in InitialPartitioning::all() {
            check_scheme(&g, scheme);
        }
    }

    #[test]
    fn all_schemes_balanced_on_mesh() {
        let g = tri_mesh2d(13, 11, 4);
        for scheme in InitialPartitioning::all() {
            check_scheme(&g, scheme);
        }
    }

    #[test]
    fn gggp_beats_or_matches_ggp_on_average() {
        // Accumulate cuts over seeds: GGGP should not lose to plain BFS
        // growing in aggregate (the paper's observation).
        let g = grid2d(16, 16);
        let bt = BalanceTargets::even(g.total_vwgt(), 1.05);
        let mut total = [0 as Wgt; 2];
        for seed in 0..8 {
            let mut rng = seeded(seed);
            let ggp = initial_partition(&g, &bt, InitialPartitioning::GraphGrowing, 10, &mut rng);
            let mut rng = seeded(seed);
            let gggp = initial_partition(
                &g,
                &bt,
                InitialPartitioning::GreedyGraphGrowing,
                5,
                &mut rng,
            );
            total[0] += edge_cut_bisection(&g, &ggp);
            total[1] += edge_cut_bisection(&g, &gggp);
        }
        assert!(
            total[1] <= total[0],
            "GGGP {} vs GGP {}",
            total[1],
            total[0]
        );
    }

    #[test]
    fn spectral_finds_natural_split() {
        // Grid 20x10: spectral should cut close to the short dimension (10).
        let g = grid2d(20, 10);
        let bt = BalanceTargets::even(g.total_vwgt(), 1.03);
        let part = spectral_split(&g, &bt, 0, &Trace::disabled());
        let cut = edge_cut_bisection(&g, &part);
        assert!(cut <= 14, "spectral cut {cut}");
    }

    #[test]
    fn respects_uneven_targets() {
        let g = grid2d(10, 10);
        let bt = BalanceTargets::new([25, 75], 1.05);
        let mut rng = seeded(7);
        for scheme in InitialPartitioning::all() {
            let part = initial_partition(&g, &bt, scheme, scheme.default_trials(), &mut rng);
            let pw = part_weights(&g, &part);
            assert!(
                (25..=27).contains(&pw[0]),
                "{scheme:?}: part0 weight {} target 25",
                pw[0]
            );
        }
    }

    #[test]
    fn downstream_rng_state_independent_of_trial_count() {
        // The shared RNG must advance by exactly one draw no matter how
        // many trials run (or which scheme runs): the next draw after the
        // call must be identical across trial counts.
        let g = grid2d(12, 12);
        let bt = BalanceTargets::even(g.total_vwgt(), 1.05);
        let mut draws = Vec::new();
        for (scheme, trials) in [
            (InitialPartitioning::GraphGrowing, 1),
            (InitialPartitioning::GraphGrowing, 5),
            (InitialPartitioning::GraphGrowing, 17),
            (InitialPartitioning::GreedyGraphGrowing, 1),
            (InitialPartitioning::GreedyGraphGrowing, 9),
            (InitialPartitioning::Spectral, 1),
        ] {
            let mut rng = seeded(0xfeed);
            let _ = initial_partition(&g, &bt, scheme, trials, &mut rng);
            draws.push(rng.next_u64());
        }
        assert!(
            draws.windows(2).all(|w| w[0] == w[1]),
            "downstream draws differ across trial counts/schemes: {draws:?}"
        );
    }

    #[test]
    fn trial_fanout_thread_invariant() {
        // The winner must be bit-identical at every fan-out.
        let g = tri_mesh2d(14, 14, 6);
        let bt = BalanceTargets::even(g.total_vwgt(), 1.05);
        for scheme in [
            InitialPartitioning::GraphGrowing,
            InitialPartitioning::GreedyGraphGrowing,
        ] {
            let run = |threads: usize| {
                let mut rng = seeded(0xabcd);
                initial_partition_traced(&g, &bt, scheme, 7, &mut rng, threads, &Trace::disabled())
            };
            let reference = run(1);
            for threads in [2usize, 3, 8] {
                assert_eq!(run(threads), reference, "{scheme:?} at {threads} threads");
            }
        }
    }

    #[test]
    fn trial_results_independent_of_sibling_count() {
        // Trial t draws from its own stream: the trial-0 result must be
        // the same whether it runs alone or alongside 9 siblings. With a
        // single trial the winner IS trial 0; with 10 trials the winner
        // can only improve (strict key).
        let g = grid2d(14, 14);
        let bt = BalanceTargets::even(g.total_vwgt(), 1.05);
        let cut_of = |trials: usize| {
            let mut rng = seeded(99);
            let p = initial_partition(
                &g,
                &bt,
                InitialPartitioning::GreedyGraphGrowing,
                trials,
                &mut rng,
            );
            edge_cut_bisection(&g, &p)
        };
        assert!(cut_of(10) <= cut_of(1), "more trials must not hurt");
    }

    #[test]
    fn tiny_graphs() {
        let g = grid2d(2, 1);
        let bt = BalanceTargets::even(2, 1.0);
        let mut rng = seeded(1);
        for scheme in InitialPartitioning::all() {
            let part = initial_partition(&g, &bt, scheme, 1, &mut rng);
            assert_eq!(part.len(), 2);
            let pw = part_weights(&g, &part);
            assert_eq!(pw, [1, 1], "{scheme:?}");
        }
        let _ = imbalance(&g, &[0, 1], 2);
    }
}
