//! Partitioning the coarsest graph (§3.2 of the paper).
//!
//! Three algorithms: GGP (breadth-first graph growing), GGGP (greedy graph
//! growing, picking the frontier vertex that increases the cut least), and
//! spectral bisection. GGP/GGGP run several trials from random seeds and
//! keep the best cut; the paper found GGGP with 5 trials consistently best.

use crate::config::InitialPartitioning;
use crate::metrics::edge_cut_bisection;
use crate::refine::fm::BalanceTargets;
use crate::refine::GainQueue;
use mlgp_graph::{CsrGraph, Vid, Wgt};
use mlgp_trace::Trace;
use rand::{Rng, RngExt};
use std::collections::VecDeque;

/// Compute an initial bisection of the (coarse) graph.
///
/// Part 0 is grown to roughly `bt.target[0]` vertex weight. Returns the 0/1
/// partition vector.
pub fn initial_partition<R: Rng>(
    g: &CsrGraph,
    bt: &BalanceTargets,
    scheme: InitialPartitioning,
    trials: usize,
    rng: &mut R,
) -> Vec<u8> {
    initial_partition_traced(g, bt, scheme, trials, rng, &Trace::disabled())
}

/// [`initial_partition`] with telemetry: the spectral scheme records an
/// `eigen` event per Fiedler solve.
pub fn initial_partition_traced<R: Rng>(
    g: &CsrGraph,
    bt: &BalanceTargets,
    scheme: InitialPartitioning,
    trials: usize,
    rng: &mut R,
    trace: &Trace,
) -> Vec<u8> {
    let n = g.n();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![0];
    }
    match scheme {
        InitialPartitioning::GraphGrowing => best_of(g, bt, trials, rng, grow_bfs),
        InitialPartitioning::GreedyGraphGrowing => best_of(g, bt, trials, rng, grow_greedy),
        InitialPartitioning::Spectral => spectral_split(g, bt, trace),
    }
}

/// Run `grow` from `trials` random seeds, keep the (balanced-first) best.
fn best_of<R: Rng>(
    g: &CsrGraph,
    bt: &BalanceTargets,
    trials: usize,
    rng: &mut R,
    grow: fn(&CsrGraph, &BalanceTargets, Vid) -> Vec<u8>,
) -> Vec<u8> {
    let n = g.n();
    let mut best: Option<(bool, Wgt, Vec<u8>)> = None;
    for _ in 0..trials.max(1) {
        let start = rng.random_range(0..n) as Vid;
        let part = grow(g, bt, start);
        let cut = edge_cut_bisection(g, &part);
        let pw = part_weights(g, &part);
        let balanced = bt.balanced(pw);
        let better = match &best {
            None => true,
            Some((bb, bc, _)) => (balanced && !bb) || (balanced == *bb && cut < *bc),
        };
        if better {
            best = Some((balanced, cut, part));
        }
    }
    best.unwrap().2
}

fn part_weights(g: &CsrGraph, part: &[u8]) -> [Wgt; 2] {
    let mut pw = [0, 0];
    for v in 0..g.n() {
        pw[part[v] as usize] += g.vwgt()[v];
    }
    pw
}

/// GGP: grow part 0 breadth-first from `start` until it reaches its target
/// weight. Disconnected graphs continue from the lowest unvisited vertex.
fn grow_bfs(g: &CsrGraph, bt: &BalanceTargets, start: Vid) -> Vec<u8> {
    let n = g.n();
    let mut part = vec![1u8; n];
    let mut w0 = 0 as Wgt;
    let mut queue = VecDeque::new();
    let mut seen = vec![false; n];
    let mut next_seed = 0 as Vid;
    queue.push_back(start);
    seen[start as usize] = true;
    while w0 < bt.target[0] {
        let v = match queue.pop_front() {
            Some(v) => v,
            None => {
                // Component exhausted; restart from an unvisited vertex.
                while (next_seed as usize) < n && seen[next_seed as usize] {
                    next_seed += 1;
                }
                if next_seed as usize >= n {
                    break;
                }
                seen[next_seed as usize] = true;
                next_seed
            }
        };
        // Do not overshoot the bound by a large vertex unless nothing was
        // added yet.
        if w0 > 0 && w0 + g.vwgt()[v as usize] > bt.ub[0] {
            continue;
        }
        part[v as usize] = 0;
        w0 += g.vwgt()[v as usize];
        for &u in g.neighbors(v) {
            if !seen[u as usize] {
                seen[u as usize] = true;
                queue.push_back(u);
            }
        }
    }
    part
}

/// GGGP: grow part 0 from `start`, always absorbing the frontier vertex
/// whose inclusion increases the cut least (equivalently, maximizes
/// `2·conn(u) − wdeg(u)` where `conn` is the weight of edges into the grown
/// region).
fn grow_greedy(g: &CsrGraph, bt: &BalanceTargets, start: Vid) -> Vec<u8> {
    let n = g.n();
    let mut part = vec![1u8; n];
    let mut conn = vec![0 as Wgt; n];
    let mut queue = GainQueue::with_capacity(64);
    let mut w0 = 0 as Wgt;
    let mut next_seed = 0 as Vid;
    // Vertices rejected because they would overshoot the weight bound; they
    // must not be offered again (prevents a reseed livelock).
    let mut banned = vec![false; n];
    let key = |g: &CsrGraph, conn: &[Wgt], u: Vid| 2 * conn[u as usize] - g.weighted_degree(u);
    let absorb =
        |v: Vid, part: &mut Vec<u8>, conn: &mut Vec<Wgt>, queue: &mut GainQueue, w0: &mut Wgt| {
            part[v as usize] = 0;
            *w0 += g.vwgt()[v as usize];
            for (u, w) in g.adj(v) {
                if part[u as usize] == 1 {
                    conn[u as usize] += w;
                    queue.push(u, key(g, conn, u));
                }
            }
        };
    absorb(start, &mut part, &mut conn, &mut queue, &mut w0);
    while w0 < bt.target[0] {
        let popped = queue.pop_valid(|u, k| {
            part[u as usize] == 1 && !banned[u as usize] && key(g, &conn, u) == k
        });
        let v = match popped {
            Some((v, _)) => v,
            None => {
                // Frontier empty (component exhausted): reseed.
                while (next_seed as usize) < n
                    && (part[next_seed as usize] == 0 || banned[next_seed as usize])
                {
                    next_seed += 1;
                }
                if next_seed as usize >= n {
                    break;
                }
                next_seed
            }
        };
        if w0 > 0 && w0 + g.vwgt()[v as usize] > bt.ub[0] {
            banned[v as usize] = true;
            continue;
        }
        absorb(v, &mut part, &mut conn, &mut queue, &mut w0);
    }
    part
}

/// Spectral bisection: split at the weighted median of the Fiedler vector.
fn spectral_split(g: &CsrGraph, bt: &BalanceTargets, trace: &Trace) -> Vec<u8> {
    let (_, fiedler) = mlgp_linalg::fiedler_vector_traced(g, 0x5bec, trace);
    split_by_values(g, &fiedler, bt)
}

/// Assign the vertices with smallest `values` to part 0 until its target
/// weight is met. Shared by spectral initial partitioning and the spectral
/// baselines in `mlgp-spectral`.
pub fn split_by_values(g: &CsrGraph, values: &[f64], bt: &BalanceTargets) -> Vec<u8> {
    let n = g.n();
    assert_eq!(values.len(), n);
    let mut order: Vec<Vid> = (0..n as Vid).collect();
    order.sort_by(|&a, &b| {
        values[a as usize]
            .partial_cmp(&values[b as usize])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut part = vec![1u8; n];
    let mut w0 = 0;
    for &v in &order {
        if w0 >= bt.target[0] {
            break;
        }
        part[v as usize] = 0;
        w0 += g.vwgt()[v as usize];
    }
    part
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::imbalance;
    use mlgp_graph::generators::{grid2d, tri_mesh2d};
    use mlgp_graph::rng::seeded;

    fn check_scheme(g: &CsrGraph, scheme: InitialPartitioning) -> (Wgt, [Wgt; 2]) {
        let bt = BalanceTargets::even(g.total_vwgt(), 1.05);
        let mut rng = seeded(42);
        let part = initial_partition(g, &bt, scheme, scheme.default_trials(), &mut rng);
        let cut = edge_cut_bisection(g, &part);
        let pw = part_weights(g, &part);
        assert!(cut > 0, "{scheme:?}: zero cut on connected graph");
        assert!(bt.balanced(pw), "{scheme:?}: imbalanced {pw:?}");
        (cut, pw)
    }

    #[test]
    fn all_schemes_balanced_on_grid() {
        let g = grid2d(12, 12);
        for scheme in InitialPartitioning::all() {
            check_scheme(&g, scheme);
        }
    }

    #[test]
    fn all_schemes_balanced_on_mesh() {
        let g = tri_mesh2d(13, 11, 4);
        for scheme in InitialPartitioning::all() {
            check_scheme(&g, scheme);
        }
    }

    #[test]
    fn gggp_beats_or_matches_ggp_on_average() {
        // Accumulate cuts over seeds: GGGP should not lose to plain BFS
        // growing in aggregate (the paper's observation).
        let g = grid2d(16, 16);
        let bt = BalanceTargets::even(g.total_vwgt(), 1.05);
        let mut total = [0 as Wgt; 2];
        for seed in 0..8 {
            let mut rng = seeded(seed);
            let ggp = initial_partition(&g, &bt, InitialPartitioning::GraphGrowing, 10, &mut rng);
            let mut rng = seeded(seed);
            let gggp = initial_partition(
                &g,
                &bt,
                InitialPartitioning::GreedyGraphGrowing,
                5,
                &mut rng,
            );
            total[0] += edge_cut_bisection(&g, &ggp);
            total[1] += edge_cut_bisection(&g, &gggp);
        }
        assert!(
            total[1] <= total[0],
            "GGGP {} vs GGP {}",
            total[1],
            total[0]
        );
    }

    #[test]
    fn spectral_finds_natural_split() {
        // Grid 20x10: spectral should cut close to the short dimension (10).
        let g = grid2d(20, 10);
        let bt = BalanceTargets::even(g.total_vwgt(), 1.03);
        let part = spectral_split(&g, &bt, &Trace::disabled());
        let cut = edge_cut_bisection(&g, &part);
        assert!(cut <= 14, "spectral cut {cut}");
    }

    #[test]
    fn respects_uneven_targets() {
        let g = grid2d(10, 10);
        let bt = BalanceTargets::new([25, 75], 1.05);
        let mut rng = seeded(7);
        for scheme in InitialPartitioning::all() {
            let part = initial_partition(&g, &bt, scheme, scheme.default_trials(), &mut rng);
            let pw = part_weights(&g, &part);
            assert!(
                (25..=27).contains(&pw[0]),
                "{scheme:?}: part0 weight {} target 25",
                pw[0]
            );
        }
    }

    #[test]
    fn tiny_graphs() {
        let g = grid2d(2, 1);
        let bt = BalanceTargets::even(2, 1.0);
        let mut rng = seeded(1);
        for scheme in InitialPartitioning::all() {
            let part = initial_partition(&g, &bt, scheme, 1, &mut rng);
            assert_eq!(part.len(), 2);
            let pw = part_weights(&g, &part);
            assert_eq!(pw, [1, 1], "{scheme:?}");
        }
        let _ = imbalance(&g, &[0, 1], 2);
    }
}
