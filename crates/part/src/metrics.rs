//! Partition quality metrics: edge-cut, balance, boundary size.
//!
//! The hot metrics (`edge_cut_*`, [`part_weights`], [`boundary_count`])
//! reduce in parallel over contiguous vertex ranges. Every reduction sums
//! integers — an associative, commutative fold — and the shim combines
//! chunk partials in chunk order, so the results are exact and identical
//! for any thread count. Signatures are unchanged from the sequential
//! versions; parallelism is an internal detail governed by the ambient
//! rayon thread cap (`ThreadPool::install`).

use mlgp_graph::{CsrGraph, Vid, Wgt};
use rayon::prelude::*;

/// Below this vertex count the metrics stay sequential — the graphs at the
/// coarse end of a hierarchy are far too small to amortize a spawn.
const MIN_PARALLEL_N: usize = 8192;

/// Edge-cut of a 2-way partition given as 0/1 labels.
pub fn edge_cut_bisection(g: &CsrGraph, part: &[u8]) -> Wgt {
    assert_eq!(part.len(), g.n());
    let cut_from = |v: Vid| -> Wgt {
        g.adj(v)
            .filter(|&(u, _)| u > v && part[u as usize] != part[v as usize])
            .map(|(_, w)| w)
            .sum()
    };
    (0..g.n())
        .into_par_iter()
        .with_min_len(MIN_PARALLEL_N)
        .map(|v| cut_from(v as Vid))
        .sum()
}

/// Edge-cut of a k-way partition given as arbitrary labels.
pub fn edge_cut_kway(g: &CsrGraph, part: &[u32]) -> Wgt {
    assert_eq!(part.len(), g.n());
    let cut_from = |v: Vid| -> Wgt {
        g.adj(v)
            .filter(|&(u, _)| u > v && part[u as usize] != part[v as usize])
            .map(|(_, w)| w)
            .sum()
    };
    (0..g.n())
        .into_par_iter()
        .with_min_len(MIN_PARALLEL_N)
        .map(|v| cut_from(v as Vid))
        .sum()
}

/// Per-part vertex weights of a k-way partition.
pub fn part_weights(g: &CsrGraph, part: &[u32], nparts: usize) -> Vec<Wgt> {
    assert_eq!(part.len(), g.n());
    (0..g.n())
        .into_par_iter()
        .with_min_len(MIN_PARALLEL_N)
        .fold(
            || vec![0 as Wgt; nparts],
            |mut acc, v| {
                acc[part[v] as usize] += g.vwgt()[v];
                acc
            },
        )
        .reduce(
            || vec![0 as Wgt; nparts],
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
                a
            },
        )
}

/// Load imbalance of a k-way partition: `max_i w_i / (W/k)`; 1.0 is perfect.
pub fn imbalance(g: &CsrGraph, part: &[u32], nparts: usize) -> f64 {
    let w = part_weights(g, part, nparts);
    let total: Wgt = w.iter().sum();
    if total == 0 {
        return 1.0;
    }
    let avg = total as f64 / nparts as f64;
    w.iter().map(|&x| x as f64 / avg).fold(0.0, f64::max)
}

/// Number of boundary vertices (vertices with at least one cut edge).
pub fn boundary_count(g: &CsrGraph, part: &[u32]) -> usize {
    (0..g.n())
        .into_par_iter()
        .with_min_len(MIN_PARALLEL_N)
        .map(|v| {
            g.neighbors(v as Vid)
                .iter()
                .any(|&u| part[u as usize] != part[v]) as usize
        })
        .sum()
}

/// Total communication volume of a k-way partition: for each vertex, the
/// number of distinct foreign parts among its neighbors (the quantity a
/// parallel SpMV actually communicates).
pub fn communication_volume(g: &CsrGraph, part: &[u32]) -> usize {
    let mut vol = 0usize;
    let mut seen: Vec<u32> = Vec::new();
    for v in 0..g.n() as Vid {
        seen.clear();
        let pv = part[v as usize];
        for &u in g.neighbors(v) {
            let pu = part[u as usize];
            if pu != pv && !seen.contains(&pu) {
                seen.push(pu);
            }
        }
        vol += seen.len();
    }
    vol
}

/// Number of connected fragments summed over all parts, minus the part
/// count: 0 means every part is internally connected (desirable for the
/// subdomain solvers the paper's applications run per part).
pub fn fragmentation(g: &CsrGraph, part: &[u32], nparts: usize) -> usize {
    assert_eq!(part.len(), g.n());
    let n = g.n();
    let mut comp = vec![false; n]; // visited
    let mut fragments = 0usize;
    let mut stack: Vec<Vid> = Vec::new();
    let mut nonempty = vec![false; nparts];
    for s in 0..n as Vid {
        if comp[s as usize] {
            continue;
        }
        let p = part[s as usize];
        nonempty[p as usize] = true;
        fragments += 1;
        comp[s as usize] = true;
        stack.push(s);
        while let Some(v) = stack.pop() {
            for &u in g.neighbors(v) {
                if !comp[u as usize] && part[u as usize] == p {
                    comp[u as usize] = true;
                    stack.push(u);
                }
            }
        }
    }
    fragments - nonempty.iter().filter(|&&x| x).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlgp_graph::GraphBuilder;

    fn square() -> CsrGraph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1)
            .add_edge(1, 2)
            .add_edge(2, 3)
            .add_edge(3, 0);
        b.build()
    }

    #[test]
    fn cut_of_square_halves() {
        let g = square();
        assert_eq!(edge_cut_bisection(&g, &[0, 0, 1, 1]), 2);
        assert_eq!(edge_cut_bisection(&g, &[0, 1, 0, 1]), 4);
        assert_eq!(edge_cut_bisection(&g, &[0, 0, 0, 0]), 0);
    }

    #[test]
    fn kway_cut_matches_bisection() {
        let g = square();
        assert_eq!(edge_cut_kway(&g, &[0, 0, 1, 1]), 2);
        assert_eq!(edge_cut_kway(&g, &[0, 1, 2, 3]), 4);
    }

    #[test]
    fn weighted_cut() {
        let mut b = GraphBuilder::new(2);
        b.add_weighted_edge(0, 1, 7);
        let g = b.build();
        assert_eq!(edge_cut_bisection(&g, &[0, 1]), 7);
    }

    #[test]
    fn balance_metrics() {
        let g = square();
        assert_eq!(part_weights(&g, &[0, 0, 1, 1], 2), vec![2, 2]);
        assert!((imbalance(&g, &[0, 0, 1, 1], 2) - 1.0).abs() < 1e-12);
        assert!((imbalance(&g, &[0, 0, 0, 1], 2) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn fragmentation_counts_disconnected_parts() {
        let g = square();
        // Opposite corners in the same part: both parts split in two.
        assert_eq!(fragmentation(&g, &[0, 1, 0, 1], 2), 2);
        // Contiguous halves: fully connected parts.
        assert_eq!(fragmentation(&g, &[0, 0, 1, 1], 2), 0);
        // Everything in one part: connected.
        assert_eq!(fragmentation(&g, &[0, 0, 0, 0], 1), 0);
    }

    #[test]
    fn boundary_and_volume() {
        let g = square();
        let part = [0u32, 0, 1, 1];
        assert_eq!(boundary_count(&g, &part), 4);
        assert_eq!(communication_volume(&g, &part), 4);
        let one = [0u32, 0, 0, 0];
        assert_eq!(boundary_count(&g, &one), 0);
        assert_eq!(communication_volume(&g, &one), 0);
    }
}
