//! Configuration of the multilevel algorithm: one knob per phase, matching
//! the design space explored in §3 of the paper.

/// Matching scheme used during coarsening (§3.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MatchingScheme {
    /// RM — random maximal matching.
    Random,
    /// HEM — heavy-edge matching (the paper's new heuristic).
    HeavyEdge,
    /// LEM — light-edge matching (contrast scheme).
    LightEdge,
    /// HCM — heavy-clique matching (edge-density driven).
    HeavyClique,
}

impl MatchingScheme {
    /// Paper abbreviation.
    pub fn abbrev(self) -> &'static str {
        match self {
            MatchingScheme::Random => "RM",
            MatchingScheme::HeavyEdge => "HEM",
            MatchingScheme::LightEdge => "LEM",
            MatchingScheme::HeavyClique => "HCM",
        }
    }

    /// All schemes, in the order of the paper's Table 2.
    pub fn all() -> [MatchingScheme; 4] {
        [
            MatchingScheme::Random,
            MatchingScheme::HeavyEdge,
            MatchingScheme::LightEdge,
            MatchingScheme::HeavyClique,
        ]
    }
}

/// Algorithm for partitioning the coarsest graph (§3.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InitialPartitioning {
    /// GGP — breadth-first graph growing.
    GraphGrowing,
    /// GGGP — greedy (gain-driven) graph growing. The paper's choice.
    GreedyGraphGrowing,
    /// SBP — spectral bisection of the coarse graph.
    Spectral,
}

impl InitialPartitioning {
    /// Paper abbreviation.
    pub fn abbrev(self) -> &'static str {
        match self {
            InitialPartitioning::GraphGrowing => "GGP",
            InitialPartitioning::GreedyGraphGrowing => "GGGP",
            InitialPartitioning::Spectral => "SBP",
        }
    }

    /// All schemes.
    pub fn all() -> [InitialPartitioning; 3] {
        [
            InitialPartitioning::GraphGrowing,
            InitialPartitioning::GreedyGraphGrowing,
            InitialPartitioning::Spectral,
        ]
    }

    /// Number of random starting vertices the paper uses per scheme
    /// (§3.2: 10 for GGP, 5 for GGGP).
    pub fn default_trials(self) -> usize {
        match self {
            InitialPartitioning::GraphGrowing => 10,
            InitialPartitioning::GreedyGraphGrowing => 5,
            InitialPartitioning::Spectral => 1,
        }
    }
}

/// Refinement policy applied during uncoarsening (§3.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RefinementPolicy {
    /// GR — a single greedy (one-pass KL) iteration.
    Greedy,
    /// KLR — Kernighan-Lin iterated to a local minimum.
    KernighanLin,
    /// BGR — boundary greedy: one pass seeded with boundary vertices only.
    BoundaryGreedy,
    /// BKLR — boundary Kernighan-Lin iterated to convergence.
    BoundaryKernighanLin,
    /// BKLGR — BKLR while the boundary is small, BGR once it grows past the
    /// switch threshold. The paper's recommended policy.
    BoundaryKlGreedyHybrid,
    /// No refinement at all (used by Table 3).
    None,
}

impl RefinementPolicy {
    /// Paper abbreviation.
    pub fn abbrev(self) -> &'static str {
        match self {
            RefinementPolicy::Greedy => "GR",
            RefinementPolicy::KernighanLin => "KLR",
            RefinementPolicy::BoundaryGreedy => "BGR",
            RefinementPolicy::BoundaryKernighanLin => "BKLR",
            RefinementPolicy::BoundaryKlGreedyHybrid => "BKLGR",
            RefinementPolicy::None => "NONE",
        }
    }

    /// The five policies evaluated in Table 4, in column order.
    pub fn evaluated() -> [RefinementPolicy; 5] {
        [
            RefinementPolicy::Greedy,
            RefinementPolicy::KernighanLin,
            RefinementPolicy::BoundaryGreedy,
            RefinementPolicy::BoundaryKernighanLin,
            RefinementPolicy::BoundaryKlGreedyHybrid,
        ]
    }
}

/// Full multilevel configuration. `Default` reproduces the paper's
/// recommended combination: HEM + GGGP + BKLGR.
#[derive(Clone, Copy, Debug)]
pub struct MlConfig {
    /// Coarsening matching scheme.
    pub matching: MatchingScheme,
    /// Coarsest-graph partitioner.
    pub initial: InitialPartitioning,
    /// Uncoarsening refinement policy.
    pub refinement: RefinementPolicy,
    /// Stop coarsening when the graph has at most this many vertices
    /// (paper: "a few hundred", |Vm| < 100).
    pub coarsen_to: usize,
    /// Stop coarsening when a level shrinks the graph by less than this
    /// factor (guards against matching collapse on star-like graphs).
    pub min_coarsen_shrink: f64,
    /// KL early-exit parameter `x`: abort a pass after this many
    /// consecutive non-improving moves (paper: 50).
    ///
    /// This is the canonical name for the knob. Historically the FM code
    /// referred to it variously as `early_exit` and the "bad move" counter;
    /// all telemetry now reports pass aborts caused by it under the single
    /// counter name `early_exit_triggers` (see `RefineStats` and the
    /// `refine_level` trace events).
    pub early_exit_moves: usize,
    /// Allowed imbalance: each side may weigh up to `imbalance ×` its
    /// target.
    pub imbalance: f64,
    /// Number of initial-partition trials; 0 means the scheme's paper
    /// default (10 for GGP, 5 for GGGP).
    pub init_trials: usize,
    /// BKLGR switch: use BKLR while boundary size < this fraction of the
    /// *original* vertex count, BGR otherwise (paper: 2%).
    pub hybrid_boundary_frac: f64,
    /// RNG seed (the paper fixes its seed for all experiments).
    pub seed: u64,
    /// Worker threads for the parallel coarsening, uncoarsening
    /// (projection, refinement-state, k-way sweep) and metric kernels: `0`
    /// follows the ambient rayon fan-out (`ThreadPool::install` caps it),
    /// any other value forces exactly that many shards. Results are
    /// bit-identical for every value — the kernels are deterministic by
    /// construction (see `matching.rs`) — so this is purely a speed knob.
    pub threads: usize,
}

impl Default for MlConfig {
    fn default() -> Self {
        Self {
            matching: MatchingScheme::HeavyEdge,
            initial: InitialPartitioning::GreedyGraphGrowing,
            refinement: RefinementPolicy::BoundaryKlGreedyHybrid,
            coarsen_to: 100,
            min_coarsen_shrink: 0.9,
            early_exit_moves: 50,
            imbalance: 1.03,
            init_trials: 0,
            hybrid_boundary_frac: 0.02,
            seed: 4242,
            threads: 0,
        }
    }
}

impl MlConfig {
    /// Effective number of initial-partition trials.
    pub fn trials(&self) -> usize {
        if self.init_trials > 0 {
            self.init_trials
        } else {
            self.initial.default_trials()
        }
    }

    /// Derive a decorrelated configuration for a sub-problem (recursive
    /// bisection re-seeds each recursion branch deterministically).
    pub fn reseed(&self, salt: u64) -> Self {
        let mut c = *self;
        // SplitMix64 step keeps the derived streams independent.
        let mut z = self
            .seed
            .wrapping_add(salt.wrapping_mul(0x9E3779B97F4A7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        c.seed = z ^ (z >> 31);
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_recommendation() {
        let c = MlConfig::default();
        assert_eq!(c.matching, MatchingScheme::HeavyEdge);
        assert_eq!(c.initial, InitialPartitioning::GreedyGraphGrowing);
        assert_eq!(c.refinement, RefinementPolicy::BoundaryKlGreedyHybrid);
        assert_eq!(c.early_exit_moves, 50);
        assert_eq!(c.trials(), 5);
    }

    #[test]
    fn trials_follow_scheme_defaults() {
        let mut c = MlConfig {
            initial: InitialPartitioning::GraphGrowing,
            ..MlConfig::default()
        };
        assert_eq!(c.trials(), 10);
        c.init_trials = 3;
        assert_eq!(c.trials(), 3);
    }

    #[test]
    fn reseed_is_deterministic_and_decorrelated() {
        let c = MlConfig::default();
        assert_eq!(c.reseed(1).seed, c.reseed(1).seed);
        assert_ne!(c.reseed(1).seed, c.reseed(2).seed);
        assert_ne!(c.reseed(1).seed, c.seed);
    }

    #[test]
    fn abbreviations() {
        assert_eq!(MatchingScheme::HeavyEdge.abbrev(), "HEM");
        assert_eq!(InitialPartitioning::GreedyGraphGrowing.abbrev(), "GGGP");
        assert_eq!(RefinementPolicy::BoundaryKlGreedyHybrid.abbrev(), "BKLGR");
    }
}
