//! The multilevel bisection driver (§3): coarsen, partition the coarsest
//! graph, uncoarsen with refinement. Phase timings are recorded in the
//! paper's vocabulary (CTime; UTime = ITime + RTime + PTime).

use crate::coarsen::coarsen;
use crate::config::MlConfig;
use crate::initpart::initial_partition;
use crate::refine::fm::BalanceTargets;
use crate::refine::{refine_level, BisectState};
use mlgp_graph::rng::seeded;
use mlgp_graph::{CsrGraph, Wgt};
use std::time::{Duration, Instant};

/// Wall-clock time spent in each phase of a multilevel run (accumulated
/// across all bisections for recursive k-way).
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimes {
    /// Coarsening (matching + contraction) — the paper's CTime.
    pub coarsen: Duration,
    /// Partitioning the coarsest graph — ITime.
    pub init: Duration,
    /// Refinement during uncoarsening — RTime.
    pub refine: Duration,
    /// Projecting partitions and rebuilding per-level state — PTime.
    pub project: Duration,
}

impl PhaseTimes {
    /// UTime = ITime + RTime + PTime (paper §4.1).
    pub fn uncoarsen(&self) -> Duration {
        self.init + self.refine + self.project
    }

    /// Total across all phases.
    pub fn total(&self) -> Duration {
        self.coarsen + self.uncoarsen()
    }

    /// Component-wise sum.
    pub fn merge(&self, other: &PhaseTimes) -> PhaseTimes {
        PhaseTimes {
            coarsen: self.coarsen + other.coarsen,
            init: self.init + other.init,
            refine: self.refine + other.refine,
            project: self.project + other.project,
        }
    }
}

/// Output of a multilevel bisection.
#[derive(Clone, Debug)]
pub struct BisectionResult {
    /// Side (0/1) per vertex.
    pub part: Vec<u8>,
    /// Edge-cut of the final partition.
    pub cut: Wgt,
    /// Vertex weight per side.
    pub pwgts: [Wgt; 2],
    /// Number of levels in the hierarchy (1 = no coarsening happened).
    pub levels: usize,
    /// Phase timings.
    pub times: PhaseTimes,
}

/// Bisect into two halves of (near-)equal vertex weight.
pub fn bisect(g: &CsrGraph, cfg: &MlConfig) -> BisectionResult {
    let total = g.total_vwgt();
    let half = total / 2;
    bisect_targets(g, cfg, [half, total - half])
}

/// Bisect with explicit per-side weight targets (used by recursive k-way
/// for non-power-of-two part counts).
pub fn bisect_targets(g: &CsrGraph, cfg: &MlConfig, target: [Wgt; 2]) -> BisectionResult {
    assert_eq!(
        target[0] + target[1],
        g.total_vwgt(),
        "targets must sum to the total vertex weight"
    );
    let n = g.n();
    if n == 0 {
        return BisectionResult {
            part: Vec::new(),
            cut: 0,
            pwgts: [0, 0],
            levels: 0,
            times: PhaseTimes::default(),
        };
    }
    let mut rng = seeded(cfg.seed);
    let bt = BalanceTargets::new(target, cfg.imbalance);
    let mut times = PhaseTimes::default();

    // Coarsening phase.
    let t = Instant::now();
    let h = coarsen(g, cfg, &mut rng);
    times.coarsen = t.elapsed();

    // Initial partitioning of the coarsest graph.
    let t = Instant::now();
    let coarse_part = initial_partition(h.coarsest(), &bt, cfg.initial, cfg.trials(), &mut rng);
    times.init = t.elapsed();

    // Refine the coarsest-level partition, then uncoarsen level by level.
    let t = Instant::now();
    let mut state = BisectState::new(h.coarsest(), coarse_part);
    refine_level(&mut state, &bt, cfg.refinement, cfg, n);
    times.refine += t.elapsed();
    let mut part = std::mem::take(&mut state.part);
    drop(state);
    for level in (0..h.levels() - 1).rev() {
        let t = Instant::now();
        let fine_part = h.project(level, &part);
        let mut state = BisectState::new(&h.graphs[level], fine_part);
        times.project += t.elapsed();
        let t = Instant::now();
        refine_level(&mut state, &bt, cfg.refinement, cfg, n);
        times.refine += t.elapsed();
        part = std::mem::take(&mut state.part);
    }
    let final_state = BisectState::new(g, part);
    BisectionResult {
        cut: final_state.cut,
        pwgts: final_state.pwgts,
        part: final_state.part,
        levels: h.levels(),
        times,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{InitialPartitioning, MatchingScheme, RefinementPolicy};
    use crate::metrics::edge_cut_bisection;
    use mlgp_graph::generators::{grid2d, lshape, powerlaw, tri_mesh2d};

    #[test]
    fn grid_bisection_near_optimal() {
        // 32x32 grid: optimal bisection cut = 32. The multilevel default
        // should come close.
        let g = grid2d(32, 32);
        let r = bisect(&g, &MlConfig::default());
        assert_eq!(r.cut, edge_cut_bisection(&g, &r.part));
        assert!(r.cut <= 48, "cut {}", r.cut);
        let bt = BalanceTargets::even(g.total_vwgt(), 1.03);
        assert!(bt.balanced(r.pwgts), "{:?}", r.pwgts);
        assert!(r.levels > 1);
    }

    #[test]
    fn all_scheme_combinations_produce_valid_bisections() {
        let g = tri_mesh2d(20, 20, 6);
        let bt = BalanceTargets::even(g.total_vwgt(), 1.03);
        for matching in MatchingScheme::all() {
            for initial in InitialPartitioning::all() {
                for refinement in RefinementPolicy::evaluated() {
                    let cfg = MlConfig {
                        matching,
                        initial,
                        refinement,
                        ..MlConfig::default()
                    };
                    let r = bisect(&g, &cfg);
                    assert_eq!(r.cut, edge_cut_bisection(&g, &r.part));
                    assert!(
                        bt.balanced(r.pwgts),
                        "{matching:?}/{initial:?}/{refinement:?}: {:?}",
                        r.pwgts
                    );
                    assert!(r.cut > 0 && r.cut < g.total_adjwgt() / 4);
                }
            }
        }
    }

    #[test]
    fn uneven_targets_respected() {
        let g = grid2d(20, 20);
        let total = g.total_vwgt();
        let t0 = total / 4;
        let cfg = MlConfig::default();
        let r = bisect_targets(&g, &cfg, [t0, total - t0]);
        let bt = BalanceTargets::new([t0, total - t0], cfg.imbalance);
        assert!(bt.balanced(r.pwgts), "{:?} target {t0}", r.pwgts);
    }

    #[test]
    fn refinement_improves_over_none() {
        let g = lshape(40);
        let none = bisect(
            &g,
            &MlConfig {
                refinement: RefinementPolicy::None,
                ..MlConfig::default()
            },
        );
        let refined = bisect(&g, &MlConfig::default());
        assert!(
            refined.cut <= none.cut,
            "refined {} vs unrefined {}",
            refined.cut,
            none.cut
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let g = tri_mesh2d(15, 15, 8);
        let a = bisect(&g, &MlConfig::default());
        let b = bisect(&g, &MlConfig::default());
        assert_eq!(a.part, b.part);
        assert_eq!(a.cut, b.cut);
    }

    #[test]
    fn small_graph_skips_coarsening() {
        let g = grid2d(6, 6);
        let r = bisect(&g, &MlConfig::default());
        assert_eq!(r.levels, 1);
        assert!(r.cut >= 6); // optimal is 6
        assert!(r.cut <= 10);
    }

    #[test]
    fn handles_powerlaw_graphs() {
        let g = powerlaw(4000, 2, 5);
        let r = bisect(&g, &MlConfig::default());
        let bt = BalanceTargets::even(g.total_vwgt(), 1.03);
        assert!(bt.balanced(r.pwgts));
        assert_eq!(r.cut, edge_cut_bisection(&g, &r.part));
    }

    #[test]
    fn times_are_recorded() {
        let g = grid2d(40, 40);
        let r = bisect(&g, &MlConfig::default());
        assert!(r.times.coarsen > Duration::ZERO);
        assert!(r.times.uncoarsen() > Duration::ZERO);
        assert_eq!(
            r.times.total(),
            r.times.coarsen + r.times.init + r.times.refine + r.times.project
        );
    }
}
