//! The multilevel bisection driver (§3): coarsen, partition the coarsest
//! graph, uncoarsen with refinement. Phase timings are recorded in the
//! paper's vocabulary (CTime; UTime = ITime + RTime + PTime).

use crate::coarsen::{coarsen_traced, Hierarchy};
use crate::config::MlConfig;
use crate::initpart::initial_partition_traced;
use crate::refine::fm::BalanceTargets;
use crate::refine::{refine_level_stats, BisectState};
use mlgp_graph::rng::seeded;
use mlgp_graph::{CsrGraph, Wgt};
use mlgp_trace::{Event, Stopwatch, Trace, SPAN_COARSEN, SPAN_INIT, SPAN_PROJECT, SPAN_REFINE};
use std::time::Duration;

/// Wall-clock time spent in each phase of a multilevel run (accumulated
/// across all bisections for recursive k-way).
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimes {
    /// Coarsening (matching + contraction) — the paper's CTime.
    pub coarsen: Duration,
    /// Partitioning the coarsest graph — ITime.
    pub init: Duration,
    /// Refinement during uncoarsening — RTime.
    pub refine: Duration,
    /// Projecting partitions and rebuilding per-level state — PTime.
    pub project: Duration,
}

impl PhaseTimes {
    /// UTime = ITime + RTime + PTime (paper §4.1).
    pub fn uncoarsen(&self) -> Duration {
        self.init + self.refine + self.project
    }

    /// Total across all phases.
    pub fn total(&self) -> Duration {
        self.coarsen + self.uncoarsen()
    }

    /// Component-wise sum.
    pub fn merge(&self, other: &PhaseTimes) -> PhaseTimes {
        PhaseTimes {
            coarsen: self.coarsen + other.coarsen,
            init: self.init + other.init,
            refine: self.refine + other.refine,
            project: self.project + other.project,
        }
    }
}

/// Output of a multilevel bisection.
#[derive(Clone, Debug)]
pub struct BisectionResult {
    /// Side (0/1) per vertex.
    pub part: Vec<u8>,
    /// Edge-cut of the final partition.
    pub cut: Wgt,
    /// Vertex weight per side.
    pub pwgts: [Wgt; 2],
    /// Number of levels in the hierarchy (1 = no coarsening happened).
    pub levels: usize,
    /// Phase timings.
    pub times: PhaseTimes,
}

/// Bisect into two halves of (near-)equal vertex weight.
pub fn bisect(g: &CsrGraph, cfg: &MlConfig) -> BisectionResult {
    bisect_traced(g, cfg, &Trace::disabled())
}

/// [`bisect`] with telemetry: phase spans (same measured durations as the
/// returned [`PhaseTimes`]), one `coarsen_level` event per hierarchy level
/// and one `refine_level` event per uncoarsening level.
pub fn bisect_traced(g: &CsrGraph, cfg: &MlConfig, trace: &Trace) -> BisectionResult {
    let total = g.total_vwgt();
    let half = total / 2;
    bisect_targets_traced(g, cfg, [half, total - half], trace)
}

/// Bisect with explicit per-side weight targets (used by recursive k-way
/// for non-power-of-two part counts).
pub fn bisect_targets(g: &CsrGraph, cfg: &MlConfig, target: [Wgt; 2]) -> BisectionResult {
    bisect_targets_traced(g, cfg, target, &Trace::disabled())
}

/// [`bisect_targets`] with telemetry.
pub fn bisect_targets_traced(
    g: &CsrGraph,
    cfg: &MlConfig,
    target: [Wgt; 2],
    trace: &Trace,
) -> BisectionResult {
    bisect_targets_branch(g, cfg, target, trace, 1)
}

/// Record one `coarsen_level` event per level of `h` under recursion
/// branch `branch`.
fn record_coarsen_levels(h: &Hierarchy, cfg: &MlConfig, trace: &Trace, branch: u64) {
    if !trace.is_enabled() {
        return;
    }
    // W(E_{i+1}) = W(E_i) − W(M_i): the contracted weight is the edge
    // weight the hierarchy has absorbed into multinodes so far.
    let w0 = h.graphs[0].total_adjwgt();
    for (i, lvl) in h.graphs.iter().enumerate() {
        let edge_wgt = lvl.total_adjwgt();
        // Every coarse vertex of level i+1 merges either a matched pair or
        // a single unmatched vertex, so pairs = n_i − n_{i+1}.
        let matched_fraction = if i + 1 < h.levels() && lvl.n() > 0 {
            let pairs = lvl.n() - h.graphs[i + 1].n();
            (2 * pairs) as f64 / lvl.n() as f64
        } else {
            0.0
        };
        trace.record(|| Event::CoarsenLevel {
            branch,
            level: i,
            vertices: lvl.n(),
            edges: lvl.m(),
            total_vwgt: lvl.total_vwgt(),
            edge_wgt,
            contracted_wgt: w0 - edge_wgt,
            matched_fraction,
            scheme: cfg.matching.abbrev(),
        });
    }
}

/// Run refinement on one level and record its `refine_level` event plus the
/// workspace-wide FM counters.
fn refine_level_recorded(
    state: &mut BisectState<'_>,
    bt: &BalanceTargets,
    cfg: &MlConfig,
    orig_n: usize,
    trace: &Trace,
    branch: u64,
    level: usize,
) {
    let cut_before = state.cut;
    let stats = refine_level_stats(state, bt, cfg.refinement, cfg, orig_n);
    if trace.is_enabled() {
        trace.count("fm_passes", stats.passes as u64);
        trace.count("fm_moves", stats.moves as u64);
        trace.count("fm_rollbacks", stats.rollbacks as u64);
        trace.count("early_exit_triggers", stats.early_exit_triggers as u64);
        trace.record(|| Event::RefineLevel {
            branch,
            level,
            vertices: state.graph().n(),
            boundary: state.boundary_count(),
            passes: stats.passes,
            moves: stats.moves,
            rollbacks: stats.rollbacks,
            early_exit_triggers: stats.early_exit_triggers,
            cut_before,
            cut_after: state.cut,
            policy: cfg.refinement.abbrev(),
        });
    }
}

/// The traced bisection worker. `branch` identifies the recursion path when
/// called from k-way (1 for a stand-alone bisection); it salts the emitted
/// events so per-level records from different subproblems stay separable.
pub(crate) fn bisect_targets_branch(
    g: &CsrGraph,
    cfg: &MlConfig,
    target: [Wgt; 2],
    trace: &Trace,
    branch: u64,
) -> BisectionResult {
    assert_eq!(
        target[0] + target[1],
        g.total_vwgt(),
        "targets must sum to the total vertex weight"
    );
    let n = g.n();
    if n == 0 {
        return BisectionResult {
            part: Vec::new(),
            cut: 0,
            pwgts: [0, 0],
            levels: 0,
            times: PhaseTimes::default(),
        };
    }
    let mut rng = seeded(cfg.seed);
    let bt = BalanceTargets::new(target, cfg.imbalance);
    let mut times = PhaseTimes::default();

    // Coarsening phase. The span durations fed to the trace are the very
    // same measurements stored in `PhaseTimes`, so the `--stats` tree and
    // the returned CTime/UTime split agree exactly.
    let t = Stopwatch::start();
    let h = coarsen_traced(g, cfg, &mut rng, trace);
    times.coarsen = t.elapsed();
    trace.add_time(SPAN_COARSEN, times.coarsen);
    record_coarsen_levels(&h, cfg, trace, branch);

    // Initial partitioning of the coarsest graph.
    let t = Stopwatch::start();
    let coarse_part = initial_partition_traced(
        h.coarsest(),
        &bt,
        cfg.initial,
        cfg.trials(),
        &mut rng,
        cfg.threads,
        trace,
    );
    times.init = t.elapsed();
    trace.add_time(SPAN_INIT, times.init);

    // Refine the coarsest-level partition, then uncoarsen level by level.
    let t = Stopwatch::start();
    let mut state = BisectState::with_threads(h.coarsest(), coarse_part, cfg.threads);
    refine_level_recorded(&mut state, &bt, cfg, n, trace, branch, h.levels() - 1);
    let d = t.elapsed();
    times.refine += d;
    trace.add_time(SPAN_REFINE, d);
    let mut part = std::mem::take(&mut state.part);
    drop(state);
    for level in (0..h.levels() - 1).rev() {
        let t = Stopwatch::start();
        let fine_part = h.project(level, &part);
        let mut state = BisectState::with_threads(&h.graphs[level], fine_part, cfg.threads);
        let d = t.elapsed();
        times.project += d;
        trace.add_time(SPAN_PROJECT, d);
        let t = Stopwatch::start();
        refine_level_recorded(&mut state, &bt, cfg, n, trace, branch, level);
        let d = t.elapsed();
        times.refine += d;
        trace.add_time(SPAN_REFINE, d);
        part = std::mem::take(&mut state.part);
    }
    let final_state = BisectState::with_threads(g, part, cfg.threads);
    BisectionResult {
        cut: final_state.cut,
        pwgts: final_state.pwgts,
        part: final_state.part,
        levels: h.levels(),
        times,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{InitialPartitioning, MatchingScheme, RefinementPolicy};
    use crate::metrics::edge_cut_bisection;
    use mlgp_graph::generators::{grid2d, lshape, powerlaw, tri_mesh2d};

    #[test]
    fn grid_bisection_near_optimal() {
        // 32x32 grid: optimal bisection cut = 32. The multilevel default
        // should come close.
        let g = grid2d(32, 32);
        let r = bisect(&g, &MlConfig::default());
        assert_eq!(r.cut, edge_cut_bisection(&g, &r.part));
        assert!(r.cut <= 48, "cut {}", r.cut);
        let bt = BalanceTargets::even(g.total_vwgt(), 1.03);
        assert!(bt.balanced(r.pwgts), "{:?}", r.pwgts);
        assert!(r.levels > 1);
    }

    #[test]
    fn all_scheme_combinations_produce_valid_bisections() {
        let g = tri_mesh2d(20, 20, 6);
        let bt = BalanceTargets::even(g.total_vwgt(), 1.03);
        for matching in MatchingScheme::all() {
            for initial in InitialPartitioning::all() {
                for refinement in RefinementPolicy::evaluated() {
                    let cfg = MlConfig {
                        matching,
                        initial,
                        refinement,
                        ..MlConfig::default()
                    };
                    let r = bisect(&g, &cfg);
                    assert_eq!(r.cut, edge_cut_bisection(&g, &r.part));
                    assert!(
                        bt.balanced(r.pwgts),
                        "{matching:?}/{initial:?}/{refinement:?}: {:?}",
                        r.pwgts
                    );
                    assert!(r.cut > 0 && r.cut < g.total_adjwgt() / 4);
                }
            }
        }
    }

    #[test]
    fn uneven_targets_respected() {
        let g = grid2d(20, 20);
        let total = g.total_vwgt();
        let t0 = total / 4;
        let cfg = MlConfig::default();
        let r = bisect_targets(&g, &cfg, [t0, total - t0]);
        let bt = BalanceTargets::new([t0, total - t0], cfg.imbalance);
        assert!(bt.balanced(r.pwgts), "{:?} target {t0}", r.pwgts);
    }

    #[test]
    fn refinement_improves_over_none() {
        let g = lshape(40);
        let none = bisect(
            &g,
            &MlConfig {
                refinement: RefinementPolicy::None,
                ..MlConfig::default()
            },
        );
        let refined = bisect(&g, &MlConfig::default());
        assert!(
            refined.cut <= none.cut,
            "refined {} vs unrefined {}",
            refined.cut,
            none.cut
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let g = tri_mesh2d(15, 15, 8);
        let a = bisect(&g, &MlConfig::default());
        let b = bisect(&g, &MlConfig::default());
        assert_eq!(a.part, b.part);
        assert_eq!(a.cut, b.cut);
    }

    #[test]
    fn small_graph_skips_coarsening() {
        let g = grid2d(6, 6);
        let r = bisect(&g, &MlConfig::default());
        assert_eq!(r.levels, 1);
        assert!(r.cut >= 6); // optimal is 6
        assert!(r.cut <= 10);
    }

    #[test]
    fn handles_powerlaw_graphs() {
        let g = powerlaw(4000, 2, 5);
        let r = bisect(&g, &MlConfig::default());
        let bt = BalanceTargets::even(g.total_vwgt(), 1.03);
        assert!(bt.balanced(r.pwgts));
        assert_eq!(r.cut, edge_cut_bisection(&g, &r.part));
    }

    #[test]
    fn times_are_recorded() {
        let g = grid2d(40, 40);
        let r = bisect(&g, &MlConfig::default());
        assert!(r.times.coarsen > Duration::ZERO);
        assert!(r.times.uncoarsen() > Duration::ZERO);
        assert_eq!(
            r.times.total(),
            r.times.coarsen + r.times.init + r.times.refine + r.times.project
        );
    }

    #[test]
    fn trace_spans_match_phase_times_exactly() {
        // The spans are fed the very same `Duration`s stored in
        // `PhaseTimes`, so the CTime/UTime split must agree to the nanosecond.
        let g = grid2d(40, 40);
        let trace = Trace::enabled();
        let r = bisect_traced(&g, &MlConfig::default(), &trace);
        assert_eq!(trace.span_total(SPAN_COARSEN), Some(r.times.coarsen));
        assert_eq!(trace.span_total(SPAN_INIT), Some(r.times.init));
        assert_eq!(trace.span_total(SPAN_REFINE), Some(r.times.refine));
        assert_eq!(trace.span_total(SPAN_PROJECT), Some(r.times.project));
    }

    #[test]
    fn trace_records_one_event_per_hierarchy_level() {
        let g = grid2d(40, 40);
        let trace = Trace::enabled();
        let r = bisect_traced(&g, &MlConfig::default(), &trace);
        let events = trace.events();
        let coarsen: Vec<_> = events
            .iter()
            .filter(|e| matches!(e, Event::CoarsenLevel { .. }))
            .collect();
        let refine: Vec<_> = events
            .iter()
            .filter(|e| matches!(e, Event::RefineLevel { .. }))
            .collect();
        assert_eq!(coarsen.len(), r.levels);
        assert_eq!(refine.len(), r.levels);
        // Level 0 describes the input graph; matched fractions are sane.
        for e in &coarsen {
            let Event::CoarsenLevel {
                level,
                vertices,
                matched_fraction,
                ..
            } = e
            else {
                unreachable!()
            };
            if *level == 0 {
                assert_eq!(*vertices, g.n());
            }
            assert!((0.0..=1.0).contains(matched_fraction));
        }
        // Refinement never worsens the cut at any level.
        for e in &refine {
            let Event::RefineLevel {
                cut_before,
                cut_after,
                ..
            } = e
            else {
                unreachable!()
            };
            assert!(cut_after <= cut_before);
        }
        // The finest level's cut-after equals the returned cut.
        let Some(Event::RefineLevel {
            level: 0,
            cut_after,
            ..
        }) = events
            .iter()
            .rfind(|e| matches!(e, Event::RefineLevel { level: 0, .. }))
        else {
            panic!("no finest-level refine event");
        };
        assert_eq!(*cut_after, r.cut as i64);
    }
}
