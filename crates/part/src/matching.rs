//! Maximal matchings for coarsening (§3.1 of the paper).
//!
//! All four schemes visit the vertices in random order and match each
//! still-unmatched vertex with one of its unmatched neighbors:
//!
//! * **RM** picks a random unmatched neighbor;
//! * **HEM** picks the neighbor across the heaviest edge (maximizing the
//!   matched weight `W(M)` and hence, since `W(E_{i+1}) = W(E_i) − W(M_i)`,
//!   minimizing the coarse graph's edge weight);
//! * **LEM** picks the lightest edge (the contrast scheme);
//! * **HCM** picks the neighbor maximizing the *edge density* of the merged
//!   multinode, `(cewgt(u) + cewgt(v) + w(u,v)) / (s(s−1)/2)` with
//!   `s = vwgt(u) + vwgt(v)`, approximating the clique-finding coarseners.
//!
//! All run in `O(|E|)`.

use crate::config::MatchingScheme;
use mlgp_graph::rng::random_order;
use mlgp_graph::{CsrGraph, Vid, Wgt};
use rand::{Rng, RngExt};

/// A matching: `partner[v] == v` iff `v` is unmatched.
#[derive(Clone, Debug)]
pub struct Matching {
    /// Matched partner of each vertex (self if unmatched).
    pub partner: Vec<Vid>,
    /// Number of matched pairs.
    pub pairs: usize,
}

impl Matching {
    /// Validate matching invariants: symmetry and no double-matching.
    pub fn validate(&self, g: &CsrGraph) -> Result<(), String> {
        if self.partner.len() != g.n() {
            return Err("partner length mismatch".into());
        }
        let mut pairs = 0;
        for v in 0..g.n() as Vid {
            let p = self.partner[v as usize];
            if p as usize >= g.n() {
                return Err(format!("partner of {v} out of range"));
            }
            if self.partner[p as usize] != v {
                return Err(format!("matching not symmetric at {v}"));
            }
            if p != v {
                if !g.neighbors(v).contains(&p) {
                    return Err(format!("matched pair ({v},{p}) is not an edge"));
                }
                if p > v {
                    pairs += 1;
                }
            }
        }
        if pairs != self.pairs {
            return Err(format!("pair count {} != recorded {}", pairs, self.pairs));
        }
        Ok(())
    }

    /// Check maximality: no edge with both endpoints unmatched.
    pub fn is_maximal(&self, g: &CsrGraph) -> bool {
        for v in 0..g.n() as Vid {
            if self.partner[v as usize] == v {
                for &u in g.neighbors(v) {
                    if self.partner[u as usize] == u {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Derive the coarse-vertex map: `(cmap, ncoarse)` where matched pairs
    /// share a coarse id. Coarse ids are assigned in fine-vertex order.
    pub fn to_cmap(&self) -> (Vec<Vid>, usize) {
        let n = self.partner.len();
        let mut cmap = vec![Vid::MAX; n];
        let mut next = 0 as Vid;
        for v in 0..n as Vid {
            if cmap[v as usize] == Vid::MAX {
                cmap[v as usize] = next;
                let p = self.partner[v as usize];
                if p != v {
                    cmap[p as usize] = next;
                }
                next += 1;
            }
        }
        (cmap, next as usize)
    }
}

/// Compute a maximal matching with the given scheme.
///
/// `cewgt[v]` is the total weight of edges already contracted inside
/// multinode `v` (zeros at the finest level); only HCM consults it.
pub fn compute_matching<R: Rng>(
    g: &CsrGraph,
    scheme: MatchingScheme,
    cewgt: &[Wgt],
    rng: &mut R,
) -> Matching {
    let n = g.n();
    assert_eq!(cewgt.len(), n);
    let mut partner: Vec<Vid> = (0..n as Vid).collect();
    let mut pairs = 0;
    let order = random_order(rng, n);
    for &v in &order {
        if partner[v as usize] != v {
            continue; // already matched
        }
        let chosen = match scheme {
            MatchingScheme::Random => pick_random(g, v, &partner, rng),
            MatchingScheme::HeavyEdge => pick_extreme_edge(g, v, &partner, true),
            MatchingScheme::LightEdge => pick_extreme_edge(g, v, &partner, false),
            MatchingScheme::HeavyClique => pick_densest(g, v, &partner, cewgt),
        };
        if let Some(u) = chosen {
            partner[v as usize] = u;
            partner[u as usize] = v;
            pairs += 1;
        }
    }
    Matching { partner, pairs }
}

/// RM: uniformly random unmatched neighbor (reservoir sampling over the
/// adjacency list, equivalent to scanning a randomly permuted list).
fn pick_random<R: Rng>(g: &CsrGraph, v: Vid, partner: &[Vid], rng: &mut R) -> Option<Vid> {
    let mut chosen = None;
    let mut count = 0u32;
    for &u in g.neighbors(v) {
        if partner[u as usize] == u {
            count += 1;
            if rng.random_range(0..count) == 0 {
                chosen = Some(u);
            }
        }
    }
    chosen
}

/// HEM (`heaviest = true`) / LEM (`false`): extreme-weight unmatched edge.
fn pick_extreme_edge(g: &CsrGraph, v: Vid, partner: &[Vid], heaviest: bool) -> Option<Vid> {
    let mut best: Option<(Wgt, Vid)> = None;
    for (u, w) in g.adj(v) {
        if partner[u as usize] != u {
            continue;
        }
        let better = match best {
            None => true,
            Some((bw, _)) => {
                if heaviest {
                    w > bw
                } else {
                    w < bw
                }
            }
        };
        if better {
            best = Some((w, u));
        }
    }
    best.map(|(_, u)| u)
}

/// HCM: unmatched neighbor maximizing the edge density of the merged node.
fn pick_densest(g: &CsrGraph, v: Vid, partner: &[Vid], cewgt: &[Wgt]) -> Option<Vid> {
    let mut best: Option<(f64, Vid)> = None;
    let vw = g.vwgt()[v as usize];
    let cv = cewgt[v as usize];
    for (u, w) in g.adj(v) {
        if partner[u as usize] != u {
            continue;
        }
        let s = (vw + g.vwgt()[u as usize]) as f64;
        let max_internal = s * (s - 1.0) / 2.0;
        let internal = (cv + cewgt[u as usize] + w) as f64;
        let density = if max_internal > 0.0 {
            internal / max_internal
        } else {
            0.0
        };
        if best.is_none_or(|(bd, _)| density > bd) {
            best = Some((density, u));
        }
    }
    best.map(|(_, u)| u)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlgp_graph::generators::{grid2d, tri_mesh2d};
    use mlgp_graph::rng::seeded;
    use mlgp_graph::GraphBuilder;

    fn check_all_schemes(g: &CsrGraph) {
        let cewgt = vec![0; g.n()];
        for scheme in MatchingScheme::all() {
            let mut rng = seeded(17);
            let m = compute_matching(g, scheme, &cewgt, &mut rng);
            m.validate(g).unwrap_or_else(|e| panic!("{scheme:?}: {e}"));
            assert!(m.is_maximal(g), "{scheme:?} not maximal");
        }
    }

    #[test]
    fn valid_and_maximal_on_grid() {
        check_all_schemes(&grid2d(9, 7));
    }

    #[test]
    fn valid_and_maximal_on_mesh() {
        check_all_schemes(&tri_mesh2d(12, 9, 3));
    }

    #[test]
    fn hem_prefers_heavy_edges() {
        // Star: center 0 with edges of weight 1,1,10 to 1,2,3. HEM from 0
        // must take the weight-10 edge.
        let mut b = GraphBuilder::new(4);
        b.add_weighted_edge(0, 1, 1)
            .add_weighted_edge(0, 2, 1)
            .add_weighted_edge(0, 3, 10);
        let g = b.build();
        let u = pick_extreme_edge(&g, 0, &[0, 1, 2, 3], true);
        assert_eq!(u, Some(3));
        let u = pick_extreme_edge(&g, 0, &[0, 1, 2, 3], false);
        assert!(u == Some(1) || u == Some(2));
    }

    #[test]
    fn matched_weight_hem_ge_lem() {
        // On a weighted mesh, HEM's matched weight should (statistically)
        // dominate LEM's; with a fixed seed this is deterministic.
        let mut b = GraphBuilder::new(36);
        let g0 = grid2d(6, 6);
        for v in 0..36u32 {
            for (u, _) in g0.adj(v) {
                if u > v {
                    b.add_weighted_edge(v, u, 1 + ((v * 7 + u * 13) % 9) as i64);
                }
            }
        }
        let g = b.build();
        let cewgt = vec![0; g.n()];
        let weight_of = |m: &Matching| -> Wgt {
            (0..g.n() as Vid)
                .map(|v| {
                    let p = m.partner[v as usize];
                    if p > v {
                        g.adj(v).find(|&(u, _)| u == p).map(|(_, w)| w).unwrap_or(0)
                    } else {
                        0
                    }
                })
                .sum()
        };
        let hem = compute_matching(&g, MatchingScheme::HeavyEdge, &cewgt, &mut seeded(5));
        let lem = compute_matching(&g, MatchingScheme::LightEdge, &cewgt, &mut seeded(5));
        assert!(weight_of(&hem) > weight_of(&lem));
    }

    #[test]
    fn cmap_assigns_shared_ids() {
        let m = Matching {
            partner: vec![1, 0, 2, 4, 3],
            pairs: 2,
        };
        let (cmap, nc) = m.to_cmap();
        assert_eq!(nc, 3);
        assert_eq!(cmap[0], cmap[1]);
        assert_eq!(cmap[3], cmap[4]);
        assert_ne!(cmap[0], cmap[2]);
        assert!(cmap.iter().all(|&c| (c as usize) < nc));
    }

    #[test]
    fn empty_and_single_vertex() {
        let g = GraphBuilder::new(1).build();
        let m = compute_matching(&g, MatchingScheme::HeavyEdge, &[0], &mut seeded(1));
        assert_eq!(m.pairs, 0);
        let (cmap, nc) = m.to_cmap();
        assert_eq!((cmap, nc), (vec![0], 1));
    }

    #[test]
    fn deterministic_given_seed() {
        let g = grid2d(8, 8);
        let cewgt = vec![0; g.n()];
        let a = compute_matching(&g, MatchingScheme::Random, &cewgt, &mut seeded(9));
        let b = compute_matching(&g, MatchingScheme::Random, &cewgt, &mut seeded(9));
        assert_eq!(a.partner, b.partner);
    }
}
