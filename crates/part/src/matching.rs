//! Maximal matchings for coarsening (§3.1 of the paper), computed by a
//! **deterministic parallel kernel**.
//!
//! All four schemes pick, for each vertex, the unmatched neighbor that
//! maximizes a scheme-specific edge score:
//!
//! * **RM** scores edges by a seeded hash (a random maximal matching);
//! * **HEM** scores by edge weight (maximizing the matched weight `W(M)`
//!   and hence, since `W(E_{i+1}) = W(E_i) − W(M_i)`, minimizing the coarse
//!   graph's edge weight);
//! * **LEM** scores by negated weight (the contrast scheme);
//! * **HCM** scores by the *edge density* of the merged multinode,
//!   `(cewgt(u) + cewgt(v) + w(u,v)) / (s(s−1)/2)` with
//!   `s = vwgt(u) + vwgt(v)`, approximating the clique-finding coarseners.
//!
//! # The claim protocol (determinism contract)
//!
//! The kernel runs *handshake rounds* over vertex-range shards:
//!
//! 1. **Propose** — every unmatched vertex computes, in parallel, its best
//!    unmatched neighbor under the total order `(score, rmin, rmax)`, where
//!    `rmin`/`rmax` are the smaller/larger of the two endpoints' ranks in a
//!    seeded random permutation. The key is *symmetric* (both endpoints
//!    compute the same key for the same edge) and *strict* (ranks are
//!    distinct), so the relation "u is v's best" admits no score cycles.
//! 2. **Claim** — mutual proposals (`proposal[v] == u && proposal[u] == v`)
//!    commit the pair: the lower-id endpoint claims both match slots with
//!    compare-and-swap. Every slot is claimed at most once per round (the
//!    mutual partner is unique), so each CAS succeeds exactly once and the
//!    resulting `partner` array is independent of thread scheduling.
//!
//! Because the globally maximal available edge is always mutual, every
//! round matches at least one pair; the loop ends when no unmatched vertex
//! has an unmatched neighbor, i.e. the matching is **maximal**. A bounded
//! round count guards pathological inputs (monotone weight chains); past
//! the bound a sequential rank-order sweep — itself thread-independent —
//! finishes the matching. The result is therefore a pure function of
//! `(graph, scheme, seed)`: same seed + any thread count → same matching.
//!
//! All schemes run in `O(|E|)` per round; on meshes the active set decays
//! geometrically, giving `O(|E| log |V|)` worst-case but ≈ 2–3 passes of
//! total edge-scan work in practice.

use crate::config::MatchingScheme;
use mlgp_graph::rng::random_order;
use mlgp_graph::{CsrGraph, Vid, Wgt};
use rand::Rng;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

/// A matching: `partner[v] == v` iff `v` is unmatched.
#[derive(Clone, Debug)]
pub struct Matching {
    /// Matched partner of each vertex (self if unmatched).
    pub partner: Vec<Vid>,
    /// Number of matched pairs.
    pub pairs: usize,
}

/// Telemetry from one run of the parallel matching kernel.
#[derive(Clone, Debug, Default)]
pub struct MatchStats {
    /// Handshake rounds executed (0 for the empty graph).
    pub rounds: usize,
    /// Vertex-range shards the kernel fanned out to.
    pub shards: usize,
    /// Whether the bounded-round sequential sweep had to finish the job.
    pub fallback: bool,
    /// Adjacency entries scanned, per shard (cumulative over rounds).
    pub edges_scanned: Vec<u64>,
}

impl Matching {
    /// Validate matching invariants: symmetry and no double-matching.
    pub fn validate(&self, g: &CsrGraph) -> Result<(), String> {
        if self.partner.len() != g.n() {
            return Err("partner length mismatch".into());
        }
        let mut pairs = 0;
        for v in 0..g.n() as Vid {
            let p = self.partner[v as usize];
            if p as usize >= g.n() {
                return Err(format!("partner of {v} out of range"));
            }
            if self.partner[p as usize] != v {
                return Err(format!("matching not symmetric at {v}"));
            }
            if p != v {
                if !g.neighbors(v).contains(&p) {
                    return Err(format!("matched pair ({v},{p}) is not an edge"));
                }
                if p > v {
                    pairs += 1;
                }
            }
        }
        if pairs != self.pairs {
            return Err(format!("pair count {} != recorded {}", pairs, self.pairs));
        }
        Ok(())
    }

    /// Check maximality: no edge with both endpoints unmatched.
    pub fn is_maximal(&self, g: &CsrGraph) -> bool {
        for v in 0..g.n() as Vid {
            if self.partner[v as usize] == v {
                for &u in g.neighbors(v) {
                    if self.partner[u as usize] == u {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Derive the coarse-vertex map: `(cmap, ncoarse)` where matched pairs
    /// share a coarse id. Coarse ids are assigned in fine-vertex order.
    pub fn to_cmap(&self) -> (Vec<Vid>, usize) {
        let n = self.partner.len();
        let mut cmap = vec![Vid::MAX; n];
        let mut next = 0 as Vid;
        for v in 0..n as Vid {
            if cmap[v as usize] == Vid::MAX {
                cmap[v as usize] = next;
                let p = self.partner[v as usize];
                if p != v {
                    cmap[p as usize] = next;
                }
                next += 1;
            }
        }
        (cmap, next as usize)
    }
}

/// Sentinel for "no proposal".
const NONE: u32 = u32::MAX;

/// Below this vertex count the auto-threaded kernel stays on one shard
/// (spawn overhead would dominate). Explicit thread requests are honored
/// exactly, whatever the size — the result is identical either way.
pub(crate) const MIN_PARALLEL_N: usize = 8192;

/// Hard bound on handshake rounds before the sequential sweep takes over.
fn max_rounds(n: usize) -> usize {
    2 * usize::BITS.saturating_sub(n.leading_zeros()) as usize + 8
}

/// Compute a maximal matching with the given scheme (auto thread count).
///
/// `cewgt[v]` is the total weight of edges already contracted inside
/// multinode `v` (zeros at the finest level); only HCM consults it.
pub fn compute_matching<R: Rng>(
    g: &CsrGraph,
    scheme: MatchingScheme,
    cewgt: &[Wgt],
    rng: &mut R,
) -> Matching {
    compute_matching_threads(g, scheme, cewgt, rng, 0).0
}

/// [`compute_matching`] with an explicit thread count (`0` = the rayon
/// fan-out) and kernel telemetry. The matching is bit-identical for every
/// `threads` value — parallelism only changes who computes it.
pub fn compute_matching_threads<R: Rng>(
    g: &CsrGraph,
    scheme: MatchingScheme,
    cewgt: &[Wgt],
    rng: &mut R,
    threads: usize,
) -> (Matching, MatchStats) {
    let n = g.n();
    assert_eq!(cewgt.len(), n);
    // Seeded inputs, drawn identically whatever the thread count: a rank
    // permutation (tie-breaking) and a salt (RM's edge hashing).
    let order = random_order(rng, n);
    let salt = rng.next_u64();
    let mut rank = vec![0u32; n];
    for (i, &v) in order.iter().enumerate() {
        rank[v as usize] = i as u32;
    }
    let nshards = resolve_shards(n, threads);
    let score = Scorer {
        scheme,
        salt,
        g,
        cewgt,
    };

    let partner: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();
    let proposal: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(NONE)).collect();
    let mut shards: Vec<Shard> = shard_bounds(n, nshards)
        .into_iter()
        .map(|(lo, hi)| Shard {
            active: (lo as u32..hi as u32).collect(),
            pairs: 0,
            edges: 0,
        })
        .collect();

    let mut stats = MatchStats {
        rounds: 0,
        shards: nshards,
        fallback: false,
        edges_scanned: Vec::new(),
    };
    let bound = max_rounds(n);
    loop {
        // Propose: each shard refreshes proposals for its still-active
        // vertices; vertices with no unmatched neighbor retire for good
        // (matched neighbors never come back).
        shards
            .par_iter_mut()
            .enumerate()
            .with_min_len(1)
            .for_each(|(_, sh)| {
                let mut scanned = 0u64;
                // RELAXED: phase-local single-writer slots. During the
                // propose phase `partner` is read-only and `proposal[v]`
                // is written only by the shard that owns `v`; the
                // happens-before edge between rounds is the rayon
                // fork/join barrier, not the atomics themselves.
                sh.active.retain(|&v| {
                    if partner[v as usize].load(Ordering::Relaxed) != v {
                        proposal[v as usize].store(NONE, Ordering::Relaxed);
                        return false;
                    }
                    scanned += g.degree(v) as u64;
                    match best_candidate(g, v, &partner, &rank, &score) {
                        Some(u) => {
                            proposal[v as usize].store(u, Ordering::Relaxed);
                            true
                        }
                        None => {
                            proposal[v as usize].store(NONE, Ordering::Relaxed);
                            false
                        }
                    }
                });
                sh.edges += scanned;
            });
        let active_total: usize = shards.iter().map(|sh| sh.active.len()).sum();
        if active_total == 0 {
            break;
        }
        // Claim: commit mutual proposals. The lower-id endpoint claims both
        // slots; each CAS targets a slot no other pair can claim, so the
        // outcome is schedule-independent.
        shards
            .par_iter_mut()
            .enumerate()
            .with_min_len(1)
            .for_each(|(_, sh)| {
                // RELAXED: the proposals read here were published by the
                // propose phase's fork/join barrier. Each CAS targets a
                // slot that only the unique lower endpoint of a mutual
                // pair ever claims (so it cannot be contended), and the
                // claimed partners are next read after the round barrier.
                for &v in &sh.active {
                    let u = proposal[v as usize].load(Ordering::Relaxed);
                    if u == NONE || u <= v {
                        continue;
                    }
                    if proposal[u as usize].load(Ordering::Relaxed) == v {
                        let a = partner[v as usize].compare_exchange(
                            v,
                            u,
                            Ordering::Relaxed,
                            Ordering::Relaxed,
                        );
                        let b = partner[u as usize].compare_exchange(
                            u,
                            v,
                            Ordering::Relaxed,
                            Ordering::Relaxed,
                        );
                        debug_assert!(a.is_ok() && b.is_ok(), "claim slot contended");
                        sh.pairs += 1;
                    }
                }
            });
        stats.rounds += 1;
        // Progress is guaranteed (the max-key available edge is mutual),
        // but guard both a theory violation and pathological round counts
        // with the deterministic sequential sweep.
        let made_progress = shards.iter().any(|sh| sh.pairs > 0);
        if stats.rounds >= bound || !made_progress {
            sequential_sweep(g, &order, &partner, &rank, &score);
            stats.fallback = true;
            break;
        }
        for sh in shards.iter_mut() {
            sh.pairs = 0;
        }
    }
    stats.edges_scanned = shards.iter().map(|sh| sh.edges).collect();

    let partner: Vec<Vid> = partner.into_iter().map(AtomicU32::into_inner).collect();
    let pairs = (0..n as Vid)
        .filter(|&v| {
            let p = partner[v as usize];
            p != v && p > v
        })
        .count();
    (Matching { partner, pairs }, stats)
}

/// Per-shard kernel state: the vertices of one contiguous range that are
/// still unmatched and still have unmatched neighbors.
struct Shard {
    active: Vec<Vid>,
    pairs: u64,
    edges: u64,
}

/// Shard count: explicit requests are honored exactly (so tests can force
/// any fan-out); auto mode follows the rayon fan-out with a size floor.
pub(crate) fn resolve_shards(n: usize, threads: usize) -> usize {
    let t = if threads == 0 {
        if n < MIN_PARALLEL_N {
            1
        } else {
            rayon::current_num_threads()
        }
    } else {
        threads
    };
    t.clamp(1, n.max(1))
}

/// Even contiguous vertex ranges, one per shard.
pub(crate) fn shard_bounds(n: usize, nshards: usize) -> Vec<(usize, usize)> {
    (0..nshards)
        .map(|i| (i * n / nshards, (i + 1) * n / nshards))
        .collect()
}

/// Scheme-specific edge scoring. Scores are pure functions of the edge and
/// the seed — never of thread count or visit order.
struct Scorer<'a> {
    scheme: MatchingScheme,
    salt: u64,
    g: &'a CsrGraph,
    cewgt: &'a [Wgt],
}

impl Scorer<'_> {
    #[inline]
    fn score(&self, v: Vid, u: Vid, w: Wgt) -> f64 {
        match self.scheme {
            MatchingScheme::Random => {
                // Symmetric seeded hash → uniform in [0, 1).
                let (a, b) = (v.min(u) as u64, v.max(u) as u64);
                let h = splitmix64(self.salt ^ (a << 32 | b));
                (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
            }
            MatchingScheme::HeavyEdge => w as f64,
            MatchingScheme::LightEdge => -(w as f64),
            MatchingScheme::HeavyClique => {
                let s = (self.g.vwgt()[v as usize] + self.g.vwgt()[u as usize]) as f64;
                let max_internal = s * (s - 1.0) / 2.0;
                let internal = (self.cewgt[v as usize] + self.cewgt[u as usize] + w) as f64;
                if max_internal > 0.0 {
                    internal / max_internal
                } else {
                    0.0
                }
            }
        }
    }
}

/// SplitMix64 — the same mixer the vendored rand shim seeds with.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// The symmetric total-order key of edge `(v, u)`: `(score, rmin, rmax)`.
/// Distinct ranks make the order strict, which is what rules out proposal
/// cycles (the globally maximal available edge is always mutual).
#[inline]
fn edge_key(rank: &[u32], score: f64, v: Vid, u: Vid) -> (f64, u32, u32) {
    let (rv, ru) = (rank[v as usize], rank[u as usize]);
    (score, rv.min(ru), rv.max(ru))
}

#[inline]
fn key_gt(a: (f64, u32, u32), b: (f64, u32, u32)) -> bool {
    a.0 > b.0 || (a.0 == b.0 && (a.1 > b.1 || (a.1 == b.1 && a.2 > b.2)))
}

/// Best unmatched neighbor of `v` under the symmetric edge key, or `None`.
#[inline]
fn best_candidate(
    g: &CsrGraph,
    v: Vid,
    partner: &[AtomicU32],
    rank: &[u32],
    score: &Scorer<'_>,
) -> Option<Vid> {
    let mut best: Option<((f64, u32, u32), Vid)> = None;
    for (u, w) in g.adj(v) {
        // RELAXED: `partner` is frozen during the propose phase (claims
        // happen in the next phase, after a fork/join barrier), so this
        // read needs no ordering; in the sequential sweep there is only
        // one thread at all.
        if partner[u as usize].load(Ordering::Relaxed) != u {
            continue;
        }
        let key = edge_key(rank, score.score(v, u, w), v, u);
        if best.is_none_or(|(bk, _)| key_gt(key, bk)) {
            best = Some((key, u));
        }
    }
    best.map(|(_, u)| u)
}

/// Deterministic sequential finisher: greedy sweep in rank order, matching
/// each still-unmatched vertex with its best available neighbor. Runs on
/// one thread whatever `threads` was, so it cannot break determinism; it
/// restores maximality whenever the round bound cuts the handshake short.
fn sequential_sweep(
    g: &CsrGraph,
    order: &[Vid],
    partner: &[AtomicU32],
    rank: &[u32],
    score: &Scorer<'_>,
) {
    for &v in order {
        // RELAXED: single-threaded finisher — it runs after the parallel
        // rounds' final join barrier, so program order alone sequences
        // every access to the `partner` slots.
        if partner[v as usize].load(Ordering::Relaxed) != v {
            continue;
        }
        if let Some(u) = best_candidate(g, v, partner, rank, score) {
            partner[v as usize].store(u, Ordering::Relaxed);
            partner[u as usize].store(v, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlgp_graph::generators::{grid2d, tri_mesh2d};
    use mlgp_graph::rng::seeded;
    use mlgp_graph::GraphBuilder;

    fn check_all_schemes(g: &CsrGraph) {
        let cewgt = vec![0; g.n()];
        for scheme in MatchingScheme::all() {
            let mut rng = seeded(17);
            let m = compute_matching(g, scheme, &cewgt, &mut rng);
            m.validate(g).unwrap_or_else(|e| panic!("{scheme:?}: {e}"));
            assert!(m.is_maximal(g), "{scheme:?} not maximal");
        }
    }

    #[test]
    fn valid_and_maximal_on_grid() {
        check_all_schemes(&grid2d(9, 7));
    }

    #[test]
    fn valid_and_maximal_on_mesh() {
        check_all_schemes(&tri_mesh2d(12, 9, 3));
    }

    #[test]
    fn hem_prefers_heavy_edges() {
        // Star: center 0 with edges of weight 1,1,10 to 1,2,3. HEM must
        // take the weight-10 edge whatever the seed.
        let mut b = GraphBuilder::new(4);
        b.add_weighted_edge(0, 1, 1)
            .add_weighted_edge(0, 2, 1)
            .add_weighted_edge(0, 3, 10);
        let g = b.build();
        for seed in 0..8 {
            let m = compute_matching(&g, MatchingScheme::HeavyEdge, &[0; 4], &mut seeded(seed));
            assert_eq!(m.partner[0], 3, "seed {seed}");
            let l = compute_matching(&g, MatchingScheme::LightEdge, &[0; 4], &mut seeded(seed));
            assert!(l.partner[0] == 1 || l.partner[0] == 2, "seed {seed}");
        }
    }

    #[test]
    fn matched_weight_hem_ge_lem() {
        // On a weighted mesh, HEM's matched weight should (statistically)
        // dominate LEM's; with a fixed seed this is deterministic.
        let mut b = GraphBuilder::new(36);
        let g0 = grid2d(6, 6);
        for v in 0..36u32 {
            for (u, _) in g0.adj(v) {
                if u > v {
                    b.add_weighted_edge(v, u, 1 + ((v * 7 + u * 13) % 9) as i64);
                }
            }
        }
        let g = b.build();
        let cewgt = vec![0; g.n()];
        let weight_of = |m: &Matching| -> Wgt {
            (0..g.n() as Vid)
                .map(|v| {
                    let p = m.partner[v as usize];
                    if p > v {
                        g.adj(v).find(|&(u, _)| u == p).map(|(_, w)| w).unwrap_or(0)
                    } else {
                        0
                    }
                })
                .sum()
        };
        let hem = compute_matching(&g, MatchingScheme::HeavyEdge, &cewgt, &mut seeded(5));
        let lem = compute_matching(&g, MatchingScheme::LightEdge, &cewgt, &mut seeded(5));
        assert!(weight_of(&hem) > weight_of(&lem));
    }

    #[test]
    fn cmap_assigns_shared_ids() {
        let m = Matching {
            partner: vec![1, 0, 2, 4, 3],
            pairs: 2,
        };
        let (cmap, nc) = m.to_cmap();
        assert_eq!(nc, 3);
        assert_eq!(cmap[0], cmap[1]);
        assert_eq!(cmap[3], cmap[4]);
        assert_ne!(cmap[0], cmap[2]);
        assert!(cmap.iter().all(|&c| (c as usize) < nc));
    }

    #[test]
    fn empty_and_single_vertex() {
        let g = GraphBuilder::new(1).build();
        let m = compute_matching(&g, MatchingScheme::HeavyEdge, &[0], &mut seeded(1));
        assert_eq!(m.pairs, 0);
        let (cmap, nc) = m.to_cmap();
        assert_eq!((cmap, nc), (vec![0], 1));
    }

    #[test]
    fn deterministic_given_seed() {
        let g = grid2d(8, 8);
        let cewgt = vec![0; g.n()];
        let a = compute_matching(&g, MatchingScheme::Random, &cewgt, &mut seeded(9));
        let b = compute_matching(&g, MatchingScheme::Random, &cewgt, &mut seeded(9));
        assert_eq!(a.partner, b.partner);
    }

    #[test]
    fn thread_count_does_not_change_the_matching() {
        let g = tri_mesh2d(24, 18, 7);
        let cewgt = vec![0; g.n()];
        for scheme in MatchingScheme::all() {
            let (reference, s1) = compute_matching_threads(&g, scheme, &cewgt, &mut seeded(33), 1);
            assert_eq!(s1.shards, 1);
            for threads in [2, 3, 8] {
                let (m, st) =
                    compute_matching_threads(&g, scheme, &cewgt, &mut seeded(33), threads);
                assert_eq!(st.shards, threads);
                assert_eq!(
                    m.partner, reference.partner,
                    "{scheme:?} @ {threads} threads"
                );
                assert_eq!(m.pairs, reference.pairs);
            }
        }
    }

    #[test]
    fn round_bound_fallback_still_maximal_and_deterministic() {
        // Monotone-weight path: every vertex proposes toward the heavy end,
        // so each handshake round matches exactly one pair — the worst case
        // that trips the round bound and exercises the sequential sweep.
        let n = 600u32;
        let mut b = GraphBuilder::new(n as usize);
        for v in 0..n - 1 {
            b.add_weighted_edge(v, v + 1, (v + 1) as i64);
        }
        let g = b.build();
        let cewgt = vec![0; g.n()];
        let (m1, s1) =
            compute_matching_threads(&g, MatchingScheme::HeavyEdge, &cewgt, &mut seeded(2), 1);
        let (m4, s4) =
            compute_matching_threads(&g, MatchingScheme::HeavyEdge, &cewgt, &mut seeded(2), 4);
        assert!(
            s1.fallback && s4.fallback,
            "expected the round bound to trip"
        );
        assert_eq!(m1.partner, m4.partner);
        m1.validate(&g).unwrap();
        assert!(m1.is_maximal(&g));
    }

    #[test]
    fn stats_report_scanning_work() {
        let g = grid2d(40, 40);
        let cewgt = vec![0; g.n()];
        let (_, st) =
            compute_matching_threads(&g, MatchingScheme::HeavyEdge, &cewgt, &mut seeded(1), 4);
        assert_eq!(st.shards, 4);
        assert_eq!(st.edges_scanned.len(), 4);
        assert!(st.rounds >= 1);
        assert!(st.edges_scanned.iter().sum::<u64>() >= g.nnz() as u64);
    }
}
