//! Differential determinism suite for the parallel coarsening kernels.
//!
//! The determinism contract (see `matching.rs` and DESIGN.md §"Parallel
//! coarsening"): with a fixed seed, the full coarsening hierarchy, the
//! final bisection, and the k-way partition are **bit-identical** for
//! every thread count. These tests run every matching scheme at
//! `threads ∈ {1, 2, 8}` and diff the complete outputs.
//!
//! The `MLGP_THREADS` environment variable (set by the CI thread-matrix
//! job) adds one extra thread count to the sweep, so the same suite
//! exercises `--threads 1` and `--threads 4` configurations.

use mlgp_graph::generators::{powerlaw, tri_mesh2d};
use mlgp_graph::rng::seeded;
use mlgp_part::{
    bisect, coarsen, kway_partition, kway_partition_refined, kway_refine_greedy, MatchingScheme,
    MlConfig,
};

/// Thread counts under test: the ISSUE's {1, 2, 8} plus an optional
/// `MLGP_THREADS` override from the CI matrix.
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1usize, 2, 8];
    if let Ok(v) = std::env::var("MLGP_THREADS") {
        if let Ok(t) = v.trim().parse::<usize>() {
            if t > 0 && !counts.contains(&t) {
                counts.push(t);
            }
        }
    }
    counts
}

fn cfg_with(matching: MatchingScheme, threads: usize) -> MlConfig {
    MlConfig {
        matching,
        threads,
        seed: 20260807,
        ..MlConfig::default()
    }
}

#[test]
fn hierarchy_is_bit_identical_across_thread_counts() {
    let g = tri_mesh2d(40, 32, 11);
    for scheme in MatchingScheme::all() {
        let reference = coarsen(&g, &cfg_with(scheme, 1), &mut seeded(3));
        for &t in &thread_counts()[1..] {
            let h = coarsen(&g, &cfg_with(scheme, t), &mut seeded(3));
            assert_eq!(
                h.levels(),
                reference.levels(),
                "{scheme:?}: level count differs at {t} threads"
            );
            for (lvl, (a, b)) in h.graphs.iter().zip(&reference.graphs).enumerate() {
                assert_eq!(
                    a, b,
                    "{scheme:?}: graph at level {lvl} differs at {t} threads"
                );
            }
            for (lvl, (a, b)) in h.cmaps.iter().zip(&reference.cmaps).enumerate() {
                assert_eq!(
                    a, b,
                    "{scheme:?}: cmap at level {lvl} differs at {t} threads"
                );
            }
        }
    }
}

#[test]
fn bisection_is_bit_identical_across_thread_counts() {
    let g = tri_mesh2d(36, 28, 5);
    for scheme in MatchingScheme::all() {
        let reference = bisect(&g, &cfg_with(scheme, 1));
        for &t in &thread_counts()[1..] {
            let r = bisect(&g, &cfg_with(scheme, t));
            assert_eq!(
                r.cut, reference.cut,
                "{scheme:?}: cut differs at {t} threads"
            );
            assert_eq!(
                r.part, reference.part,
                "{scheme:?}: partition differs at {t} threads"
            );
            assert_eq!(r.pwgts, reference.pwgts);
        }
    }
}

#[test]
fn kway_is_bit_identical_across_thread_counts() {
    // The k-way recursion adds a second layer of parallelism (rayon::join
    // over subproblems); the kernels must stay deterministic under it.
    let g = tri_mesh2d(32, 32, 9);
    let reference = kway_partition(&g, 8, &cfg_with(MatchingScheme::HeavyEdge, 1));
    for &t in &thread_counts()[1..] {
        let r = kway_partition(&g, 8, &cfg_with(MatchingScheme::HeavyEdge, t));
        assert_eq!(r.edge_cut, reference.edge_cut, "cut differs at {t} threads");
        assert_eq!(r.part, reference.part, "partition differs at {t} threads");
    }
}

#[test]
fn refined_pipeline_is_bit_identical_across_thread_counts() {
    // The full pipeline: coarsen → recursive bisection → round-based k-way
    // refinement. `cfg.threads` now reaches the uncoarsening kernels
    // (BisectState construction, FM queue seeding, projection, and the
    // propose/commit sweep), so the end-to-end result must stay a pure
    // function of (graph, config, seed).
    let g = tri_mesh2d(32, 28, 6);
    for scheme in [MatchingScheme::HeavyEdge, MatchingScheme::Random] {
        let reference = kway_partition_refined(&g, 8, &cfg_with(scheme, 1));
        for &t in &thread_counts()[1..] {
            let r = kway_partition_refined(&g, 8, &cfg_with(scheme, t));
            assert_eq!(
                r.edge_cut, reference.edge_cut,
                "{scheme:?}: refined cut differs at {t} threads"
            );
            assert_eq!(
                r.part, reference.part,
                "{scheme:?}: refined partition differs at {t} threads"
            );
        }
    }
}

#[test]
fn kway_refine_kernel_is_bit_identical_across_thread_counts() {
    // The round-based sweep in isolation, on a fixed damaged partition, at
    // explicit shard counts (which the kernel honors even below its
    // auto-parallel size floor).
    let g = tri_mesh2d(30, 26, 7);
    let base = kway_partition(&g, 8, &cfg_with(MatchingScheme::HeavyEdge, 1));
    let run = |threads: usize| {
        let mut part = base.part.clone();
        // Damage the partition deterministically so rounds have real work.
        for (i, p) in part.iter_mut().enumerate() {
            if i % 13 == 0 {
                *p = (i % 8) as u32;
            }
        }
        let opts = mlgp_part::KwayRefineOptions {
            threads,
            ..Default::default()
        };
        let cut = kway_refine_greedy(&g, &mut part, 8, &opts);
        (part, cut)
    };
    let reference = run(1);
    for &t in &thread_counts()[1..] {
        assert_eq!(run(t), reference, "refine kernel diverged at {t} threads");
    }
}

#[test]
fn irregular_graph_hierarchy_is_thread_independent() {
    // Power-law degree graphs stress the round-bound fallback path; it
    // must be just as thread-independent as the handshake rounds.
    let g = powerlaw(4000, 4, 13);
    for scheme in [MatchingScheme::HeavyEdge, MatchingScheme::Random] {
        let reference = coarsen(&g, &cfg_with(scheme, 1), &mut seeded(8));
        for &t in &thread_counts()[1..] {
            let h = coarsen(&g, &cfg_with(scheme, t), &mut seeded(8));
            assert_eq!(h.graphs.len(), reference.graphs.len(), "{scheme:?}");
            for (a, b) in h.graphs.iter().zip(&reference.graphs) {
                assert_eq!(a, b, "{scheme:?} differs at {t} threads");
            }
        }
    }
}

#[test]
fn ambient_pool_cap_does_not_change_results() {
    // `--threads N` on the CLI both sets `cfg.threads` and installs a
    // rayon pool cap; neither may perturb the result.
    let g = tri_mesh2d(30, 30, 4);
    let reference = bisect(&g, &cfg_with(MatchingScheme::HeavyEdge, 0));
    for nt in [1usize, 2, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(nt)
            .build()
            .expect("pool");
        let r = pool.install(|| bisect(&g, &cfg_with(MatchingScheme::HeavyEdge, 0)));
        assert_eq!(r.part, reference.part, "pool cap {nt} changed the result");
        assert_eq!(r.cut, reference.cut);
    }
}
