//! Property tests for the multilevel partitioning engine's internal
//! invariants (the cross-crate end-to-end properties live in the workspace
//! root `tests/proptests.rs`).

use mlgp_graph::rng::seeded;
use mlgp_graph::{CsrGraph, GraphBuilder};
use mlgp_part::refine::{fm_pass, refine_level, BalanceTargets, BisectState, GainQueue};
use mlgp_part::{coarsen, MatchingScheme, MlConfig, RefinementPolicy};
use proptest::prelude::*;
use rand::RngExt;

fn random_graph(n: usize, extra: usize, seed: u64) -> CsrGraph {
    let mut rng = seeded(seed);
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_weighted_edge(
            v as u32,
            rng.random_range(0..v) as u32,
            1 + rng.random_range(0..6),
        );
    }
    for _ in 0..extra {
        let u = rng.random_range(0..n) as u32;
        let v = rng.random_range(0..n) as u32;
        if u != v {
            b.add_weighted_edge(u, v, 1 + rng.random_range(0..6));
        }
    }
    b.build()
}

fn random_bipartition(n: usize, seed: u64) -> Vec<u8> {
    let mut rng = seeded(seed);
    (0..n).map(|_| rng.random_range(0..2u8)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn state_stays_consistent_through_any_policy(
        n in 8usize..120,
        extra in 0usize..200,
        seed in 0u64..500,
    ) {
        let g = random_graph(n, extra, seed);
        let bt = BalanceTargets::even(g.total_vwgt(), 1.05);
        let cfg = MlConfig::default();
        for policy in RefinementPolicy::evaluated() {
            let mut s = BisectState::new(&g, random_bipartition(n, seed ^ 7));
            refine_level(&mut s, &bt, policy, &cfg, n);
            prop_assert!(s.consistent(), "{policy:?} corrupted the state");
        }
    }

    #[test]
    fn single_pass_never_increases_cut(
        n in 8usize..120,
        extra in 0usize..200,
        seed in 0u64..500,
    ) {
        let g = random_graph(n, extra, seed);
        let bt = BalanceTargets::even(g.total_vwgt(), 1.05);
        let mut s = BisectState::new(&g, random_bipartition(n, seed ^ 13));
        let start_balanced = bt.balanced(s.pwgts);
        let before = s.cut;
        fm_pass(&mut s, &bt, false, 50);
        if start_balanced {
            // From a balanced start, the rollback guarantees the cut never
            // worsens. (From an imbalanced start the pass may trade cut for
            // balance.)
            prop_assert!(s.cut <= before, "{} -> {}", before, s.cut);
        } else {
            prop_assert!(bt.balanced(s.pwgts) || s.cut <= before);
        }
    }

    #[test]
    fn coarsening_preserves_cut_semantics(
        n in 16usize..150,
        extra in 10usize..200,
        seed in 0u64..500,
    ) {
        // For any coarse bisection, the projected fine cut equals the
        // coarse cut — level by level through a full hierarchy.
        let g = random_graph(n, extra, seed);
        let cfg = MlConfig { coarsen_to: 8, seed, ..MlConfig::default() };
        let h = coarsen(&g, &cfg, &mut seeded(seed));
        let nc = h.coarsest().n();
        let mut part: Vec<u8> = (0..nc).map(|i| (i % 2) as u8).collect();
        let mut cut = mlgp_part::edge_cut_bisection(h.coarsest(), &part);
        for level in (0..h.levels() - 1).rev() {
            part = h.project(level, &part);
            let fine_cut = mlgp_part::edge_cut_bisection(&h.graphs[level], &part);
            prop_assert_eq!(fine_cut, cut);
            cut = fine_cut;
        }
    }

    #[test]
    fn matching_partner_weights_exist(
        n in 4usize..100,
        extra in 0usize..150,
        seed in 0u64..500,
    ) {
        // Every matched pair must correspond to a real edge whose weight the
        // contraction will remove from the total — checked via the partner
        // edge lookup (panics inside if missing).
        let g = random_graph(n, extra, seed);
        let cewgt = vec![0; g.n()];
        for scheme in MatchingScheme::all() {
            let m = mlgp_part::compute_matching(&g, scheme, &cewgt, &mut seeded(seed ^ 3));
            for v in 0..g.n() as u32 {
                let p = m.partner[v as usize];
                if p != v {
                    prop_assert!(g.neighbors(v).contains(&p), "{scheme:?}");
                }
            }
        }
    }

    #[test]
    fn matching_is_symmetric_disjoint_and_thread_independent(
        n in 4usize..120,
        extra in 0usize..180,
        seed in 0u64..500,
        threads in 1usize..9,
    ) {
        // The parallel kernel's core contract: a valid (symmetric,
        // vertex-disjoint, edges-only) maximal matching whose partner
        // array does not depend on the shard count.
        let g = random_graph(n, extra, seed);
        let cewgt = vec![0; g.n()];
        for scheme in MatchingScheme::all() {
            let (reference, _) = mlgp_part::compute_matching_threads(
                &g, scheme, &cewgt, &mut seeded(seed ^ 21), 1);
            prop_assert!(reference.validate(&g).is_ok(), "{scheme:?}");
            prop_assert!(reference.is_maximal(&g), "{scheme:?} not maximal");
            let (m, _) = mlgp_part::compute_matching_threads(
                &g, scheme, &cewgt, &mut seeded(seed ^ 21), threads);
            prop_assert_eq!(&m.partner, &reference.partner,
                "{:?} differs at {} threads", scheme, threads);
        }
    }

    #[test]
    fn contraction_invariants_hold_at_any_shard_count(
        n in 4usize..120,
        extra in 0usize..180,
        seed in 0u64..500,
        threads in 1usize..9,
    ) {
        // Contraction preserves total vertex weight; removes exactly the
        // matched weight from the edge total (W(E_{i+1}) = W(E_i) − W(M_i),
        // with the collapsed weight accounted in cewgt); and emits a valid
        // CSR with sorted, self-loop-free, symmetric rows — independent of
        // the shard count.
        let g = random_graph(n, extra, seed);
        let cewgt = vec![0; g.n()];
        let m = mlgp_part::compute_matching(
            &g, MatchingScheme::HeavyEdge, &cewgt, &mut seeded(seed ^ 5));
        let matched_weight: i64 = (0..g.n() as u32)
            .filter_map(|v| {
                let p = m.partner[v as usize];
                (p > v).then(|| g.adj(v).find(|&(u, _)| u == p).unwrap().1)
            })
            .sum();
        let (cmap, nc) = m.to_cmap();
        let (reference, _) = mlgp_part::contract_threads(&g, &cmap, nc, &cewgt, 1);
        let (c, _) = mlgp_part::contract_threads(&g, &cmap, nc, &cewgt, threads);
        prop_assert_eq!(&c.graph, &reference.graph, "graph differs at {} shards", threads);
        prop_assert_eq!(&c.cewgt, &reference.cewgt);
        prop_assert_eq!(c.graph.total_vwgt(), g.total_vwgt());
        prop_assert_eq!(c.graph.total_adjwgt(), g.total_adjwgt() - matched_weight);
        prop_assert_eq!(c.cewgt.iter().sum::<i64>(), matched_weight);
        // validate() covers symmetry, positive weights, no self-loops, no
        // duplicates; sortedness is the kernel's canonical-form promise.
        prop_assert!(c.graph.validate().is_ok());
        for v in 0..c.graph.n() as u32 {
            let nb = c.graph.neighbors(v);
            prop_assert!(nb.windows(2).all(|w| w[0] < w[1]), "row {} unsorted", v);
        }
    }

    #[test]
    fn gain_queue_pops_in_monotone_order(entries in prop::collection::vec((0u32..50, -20i64..20), 1..60)) {
        let mut q = GainQueue::new();
        for &(v, g) in &entries {
            q.push(v, g);
        }
        let mut last = i64::MAX;
        while let Some((_, g)) = q.pop_valid(|_, _| true) {
            prop_assert!(g <= last);
            last = g;
        }
    }

    #[test]
    fn kway_refine_never_worsens(
        n in 32usize..160,
        extra in 20usize..250,
        k in 2usize..6,
        seed in 0u64..300,
    ) {
        let g = random_graph(n, extra, seed);
        let base = mlgp_part::kway_partition(&g, k, &MlConfig { seed, ..MlConfig::default() });
        let mut part = base.part.clone();
        let refined = mlgp_part::kway_refine_greedy(
            &g,
            &mut part,
            k,
            &mlgp_part::KwayRefineOptions::default(),
        );
        prop_assert!(refined <= base.edge_cut);
        prop_assert_eq!(refined, mlgp_part::edge_cut_kway(&g, &part));
    }
}
