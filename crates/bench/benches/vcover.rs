//! Criterion: edge-separator → vertex-separator conversion (Hopcroft-Karp +
//! König) on bisected meshes.

use criterion::{criterion_group, criterion_main, Criterion};
use mlgp_graph::generators::{stiffness3d, tri_mesh2d};
use mlgp_order::vertex_separator;
use mlgp_part::{bisect, MlConfig};
use std::hint::black_box;

fn bench_vcover(c: &mut Criterion) {
    let mut group = c.benchmark_group("vertex_separator");
    for (name, g) in [
        ("tri_10k", tri_mesh2d(100, 100, 1)),
        ("stiff_8k", stiffness3d(20, 20, 20)),
    ] {
        let part = bisect(&g, &MlConfig::default()).part;
        group.bench_function(name, |b| b.iter(|| black_box(vertex_separator(&g, &part))));
    }
    group.finish();
}

criterion_group!(benches, bench_vcover);
criterion_main!(benches);
