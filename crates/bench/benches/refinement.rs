//! Criterion: the five refinement policies applied to a projected partition
//! (§3.3, the RTime column of Table 4 at kernel granularity).

use criterion::{criterion_group, criterion_main, Criterion};
use mlgp_graph::generators::tet_mesh3d;
use mlgp_part::refine::{refine_level, BalanceTargets, BisectState};
use mlgp_part::{bisect, MlConfig, RefinementPolicy};
use std::hint::black_box;

fn bench_refinement(c: &mut Criterion) {
    let g = tet_mesh3d(16, 16, 16, 9);
    // A deliberately unrefined starting partition: multilevel with no
    // refinement, i.e. the projected coarse partition.
    let start = bisect(
        &g,
        &MlConfig {
            refinement: RefinementPolicy::None,
            ..MlConfig::default()
        },
    )
    .part;
    let bt = BalanceTargets::even(g.total_vwgt(), 1.03);
    let cfg = MlConfig::default();
    let mut group = c.benchmark_group("refine_4k_tet");
    for policy in RefinementPolicy::evaluated() {
        group.bench_function(policy.abbrev(), |b| {
            b.iter(|| {
                let mut s = BisectState::new(&g, start.clone());
                refine_level(&mut s, &bt, policy, &cfg, g.n());
                black_box(s.cut)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_refinement);
criterion_main!(benches);
