//! Criterion: end-to-end multilevel bisection across workload classes.

use criterion::{criterion_group, criterion_main, Criterion};
use mlgp_graph::generators::{grid2d_9pt, hierarchical_lp, powerlaw, tet_mesh3d};
use mlgp_part::{bisect, MlConfig};
use std::hint::black_box;

fn bench_bisection(c: &mut Criterion) {
    let workloads = [
        ("tet_8k", tet_mesh3d(20, 20, 20, 1)),
        ("cfd_10k", grid2d_9pt(100, 100, false)),
        ("circuit_10k", powerlaw(10_000, 3, 2)),
        ("lp_8k", hierarchical_lp(64, 128, 3)),
    ];
    let mut group = c.benchmark_group("bisect");
    group.sample_size(20);
    for (name, g) in &workloads {
        group.bench_function(*name, |b| {
            b.iter(|| black_box(bisect(g, &MlConfig::default()).cut))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bisection);
criterion_main!(benches);
