//! Criterion: the spectral substrate — dense Jacobi Fiedler, Lanczos, and
//! the multilevel (interpolate + RQI) Fiedler computation.

use criterion::{criterion_group, criterion_main, Criterion};
use mlgp_graph::generators::{grid2d, tri_mesh2d};
use mlgp_linalg::{fiedler_dense, lanczos_fiedler, LanczosOptions, Laplacian};
use mlgp_spectral::{msb_fiedler, MsbConfig};
use std::hint::black_box;

fn bench_eigen(c: &mut Criterion) {
    let small = grid2d(10, 10);
    let medium = tri_mesh2d(50, 50, 3);
    let mut group = c.benchmark_group("fiedler");
    group.sample_size(10);
    group.bench_function("dense_jacobi_100", |b| {
        b.iter(|| black_box(fiedler_dense(&small)))
    });
    group.bench_function("lanczos_2500", |b| {
        let lap = Laplacian::new(&medium);
        b.iter(|| black_box(lanczos_fiedler(&lap, &LanczosOptions::default()).lambda))
    });
    group.bench_function("multilevel_rqi_2500", |b| {
        b.iter(|| black_box(msb_fiedler(&medium, &MsbConfig::default())))
    });
    group.finish();
}

criterion_group!(benches, bench_eigen);
criterion_main!(benches);
