//! Criterion: the four matching schemes on a mid-size FEM mesh (§3.1,
//! the CTime column of Table 2 at kernel granularity).

use criterion::{criterion_group, criterion_main, Criterion};
use mlgp_graph::generators::tet_mesh3d;
use mlgp_graph::rng::seeded;
use mlgp_part::{compute_matching, MatchingScheme};
use std::hint::black_box;

fn bench_matching(c: &mut Criterion) {
    let g = tet_mesh3d(20, 20, 20, 7);
    let cewgt = vec![0; g.n()];
    let mut group = c.benchmark_group("matching_8k_tet");
    for scheme in MatchingScheme::all() {
        group.bench_function(scheme.abbrev(), |b| {
            b.iter(|| {
                let mut rng = seeded(3);
                black_box(compute_matching(&g, scheme, &cewgt, &mut rng))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matching);
criterion_main!(benches);
