//! Criterion: the direct k-way greedy sweep (extension) — cost of a sweep
//! vs the whole recursive-bisection pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use mlgp_graph::generators::tet_mesh3d;
use mlgp_part::{kway_partition, kway_refine_greedy, KwayRefineOptions, MlConfig};
use std::hint::black_box;

fn bench_kwayrefine(c: &mut Criterion) {
    let g = tet_mesh3d(16, 16, 16, 3);
    let base = kway_partition(&g, 32, &MlConfig::default());
    let mut group = c.benchmark_group("kway_refine_4k_tet");
    group.sample_size(20);
    group.bench_function("greedy_sweep", |b| {
        b.iter(|| {
            let mut part = base.part.clone();
            black_box(kway_refine_greedy(
                &g,
                &mut part,
                32,
                &KwayRefineOptions::default(),
            ))
        })
    });
    group.bench_function("full_pipeline", |b| {
        b.iter(|| black_box(kway_partition(&g, 32, &MlConfig::default()).edge_cut))
    });
    group.finish();
}

criterion_group!(benches, bench_kwayrefine);
criterion_main!(benches);
