//! Criterion: geometric partitioners vs multilevel on an embedded mesh —
//! the speed side of §1's "geometric methods tend to be fast".

use criterion::{criterion_group, criterion_main, Criterion};
use mlgp_geom::{inertial_partition, rcb_partition, sphere_kway, SphereConfig};
use mlgp_graph::generators::{tri_mesh2d, tri_mesh2d_coords};
use mlgp_part::{kway_partition, MlConfig};
use std::hint::black_box;

fn bench_geometric(c: &mut Criterion) {
    let g = tri_mesh2d(64, 64, 11);
    let pts = tri_mesh2d_coords(64, 64, 11);
    let mut group = c.benchmark_group("geom_4k_tri_k16");
    group.sample_size(20);
    group.bench_function("rcb", |b| {
        b.iter(|| black_box(rcb_partition(&pts, g.vwgt(), 16)))
    });
    group.bench_function("inertial", |b| {
        b.iter(|| black_box(inertial_partition(&pts, g.vwgt(), 16)))
    });
    group.bench_function("random_separators", |b| {
        b.iter(|| black_box(sphere_kway(&g, &pts, 16, &SphereConfig::default())))
    });
    group.bench_function("multilevel", |b| {
        b.iter(|| black_box(kway_partition(&g, 16, &MlConfig::default()).edge_cut))
    });
    group.finish();
}

criterion_group!(benches, bench_geometric);
criterion_main!(benches);
