//! Criterion: k-way recursive bisection, our method vs the spectral
//! baselines (the quantity behind Figure 4).

use criterion::{criterion_group, criterion_main, Criterion};
use mlgp_graph::generators::tet_mesh3d;
use mlgp_part::{kway_partition, MlConfig};
use mlgp_spectral::{chaco_ml_kway, msb_kway, ChacoMlConfig, MsbConfig};
use std::hint::black_box;

fn bench_kway(c: &mut Criterion) {
    let g = tet_mesh3d(16, 16, 16, 5);
    let mut group = c.benchmark_group("kway32_4k_tet");
    group.sample_size(10);
    group.bench_function("multilevel", |b| {
        b.iter(|| black_box(kway_partition(&g, 32, &MlConfig::default()).edge_cut))
    });
    group.bench_function("chaco_ml", |b| {
        b.iter(|| black_box(chaco_ml_kway(&g, 32, &ChacoMlConfig::default())))
    });
    group.bench_function("msb", |b| {
        b.iter(|| black_box(msb_kway(&g, 32, &MsbConfig::default())))
    });
    group.finish();
}

criterion_group!(benches, bench_kway);
criterion_main!(benches);
