//! Criterion: fill-reducing orderings (MLND vs MMD vs SND) on a 3D
//! stiffness graph (§4.3).

use criterion::{criterion_group, criterion_main, Criterion};
use mlgp_graph::generators::stiffness3d;
use mlgp_order::{analyze_ordering, mlnd_order, mmd_order, snd_order};
use std::hint::black_box;

fn bench_ordering(c: &mut Criterion) {
    let g = stiffness3d(12, 12, 12);
    let mut group = c.benchmark_group("order_1.7k_stiffness");
    group.sample_size(10);
    group.bench_function("mlnd", |b| b.iter(|| black_box(mlnd_order(&g))));
    group.bench_function("mmd", |b| b.iter(|| black_box(mmd_order(&g))));
    group.bench_function("snd", |b| b.iter(|| black_box(snd_order(&g))));
    let p = mlnd_order(&g);
    group.bench_function("symbolic_analysis", |b| {
        b.iter(|| black_box(analyze_ordering(&g, &p)))
    });
    group.finish();
}

criterion_group!(benches, bench_ordering);
criterion_main!(benches);
