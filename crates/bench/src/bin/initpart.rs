//! §4.1 (companion report [22]) — initial partitioning algorithms: GGP vs
//! GGGP vs spectral bisection of the coarsest graph, under HEM + BKLGR.
//!
//! The paper summarizes: "GGGP consistently finds smaller edge-cuts than
//! the other schemes at slightly better run time [and] there is no
//! advantage in choosing spectral bisection for the coarse graph."
//!
//! ```sh
//! cargo run --release -p mlgp-bench --bin initpart [--scale F] [--keys A,B]
//! ```

use mlgp_bench::{group_thousands, timed, BenchOpts};
use mlgp_graph::generators::table_rows;
use mlgp_part::{kway_partition, InitialPartitioning, MlConfig};

fn main() {
    let opts = BenchOpts::from_args();
    opts.banner("Initial partitioning schemes (32-way, HEM + BKLGR)");
    print!("{:<6}", "");
    for s in InitialPartitioning::all() {
        print!("{:>12} {:>7}", s.abbrev(), "time");
    }
    println!();
    let mut totals = [(0i64, 0.0f64); 3];
    for key in opts.select(&table_rows()) {
        let (_, g) = opts.graph(key);
        print!("{key:<6}");
        for (i, scheme) in InitialPartitioning::all().into_iter().enumerate() {
            let cfg = MlConfig {
                initial: scheme,
                ..MlConfig::default()
            };
            let (r, secs) = timed(|| kway_partition(&g, 32, &cfg));
            totals[i].0 += r.edge_cut;
            totals[i].1 += secs;
            print!("{:>12} {:>7.2}", group_thousands(r.edge_cut), secs);
        }
        println!();
    }
    print!("{:<6}", "total");
    for (cut, secs) in totals {
        print!("{:>12} {:>7.2}", group_thousands(cut), secs);
    }
    println!();
}
