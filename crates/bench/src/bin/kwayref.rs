//! Extension experiment — direct k-way greedy refinement on top of
//! recursive bisection (the paper's follow-up direction): cut reduction
//! and cost of the sweep across the table workloads.
//!
//! ```sh
//! cargo run --release -p mlgp-bench --bin kwayref [--scale F] [--keys A,B] [--parts 32]
//! ```

use mlgp_bench::{group_thousands, timed, BenchOpts};
use mlgp_graph::generators::table_rows;
use mlgp_part::{fragmentation, kway_partition, kway_refine_greedy, KwayRefineOptions, MlConfig};

fn main() {
    let opts = BenchOpts::from_args();
    let k = opts
        .parts
        .as_ref()
        .and_then(|p| p.first().copied())
        .unwrap_or(32);
    opts.banner(&format!(
        "Direct {k}-way greedy refinement after recursive bisection (extension)"
    ));
    println!(
        "{:<6} {:>12} {:>12} {:>8} {:>9} {:>10} {:>10}",
        "key", "RB cut", "+sweep", "gain", "sweep(s)", "frag before", "frag after"
    );
    let mut tot = [0f64; 2];
    for key in opts.select(&table_rows()) {
        let (_, g) = opts.graph(key);
        let base = kway_partition(&g, k, &MlConfig::default());
        let frag_before = fragmentation(&g, &base.part, k);
        let mut part = base.part.clone();
        let (refined, secs) =
            timed(|| kway_refine_greedy(&g, &mut part, k, &KwayRefineOptions::default()));
        let frag_after = fragmentation(&g, &part, k);
        let gain = 100.0 * (base.edge_cut - refined) as f64 / base.edge_cut.max(1) as f64;
        tot[0] += base.edge_cut as f64;
        tot[1] += refined as f64;
        println!(
            "{:<6} {:>12} {:>12} {:>7.1}% {:>9.3} {:>10} {:>10}",
            key,
            group_thousands(base.edge_cut),
            group_thousands(refined),
            gain,
            secs,
            frag_before,
            frag_after
        );
    }
    println!(
        "\ntotal: {} -> {} ({:.1}% cut reduction from the sweep)",
        group_thousands(tot[0] as i64),
        group_thousands(tot[1] as i64),
        100.0 * (tot[0] - tot[1]) / tot[0].max(1.0)
    );
}
