//! Figure 1 — quality of our multilevel algorithm vs multilevel spectral
//! bisection (MSB): cut-size ratio for 64-, 128- and 256-way partitions.
//!
//! ```sh
//! cargo run --release -p mlgp-bench --bin fig1 [--scale F] [--keys A,B] [--parts 64,128,256]
//! ```

use mlgp_bench::{run_quality_figure, BenchOpts};
use mlgp_spectral::{msb_kway, MsbConfig};

fn main() {
    let opts = BenchOpts::from_args();
    run_quality_figure(&opts, "MSB", &|g, k, seed| {
        msb_kway(
            g,
            k,
            &MsbConfig {
                seed,
                ..MsbConfig::default()
            },
        )
    });
}
