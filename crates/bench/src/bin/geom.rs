//! §1 companion experiment — geometric partitioners vs the multilevel
//! scheme on embedded meshes.
//!
//! Reproduces the paper's characterization of the geometric class:
//! "geometric partitioning algorithms tend to be fast but often yield
//! partitions that are worse than those obtained by spectral methods …
//! multiple trials are often required". RCB and inertial are near-instant
//! but cut more; the randomized-separator scheme closes part of the gap at
//! the cost of its trials; the multilevel scheme dominates on quality.
//!
//! ```sh
//! cargo run --release -p mlgp-bench --bin geom [--scale F] [--parts 32]
//! ```

use mlgp_bench::{group_thousands, timed, BenchOpts};
use mlgp_geom::{inertial_partition, rcb_partition, sphere_kway, SphereConfig};
use mlgp_graph::generators as gen;
use mlgp_graph::generators::Point;
use mlgp_graph::CsrGraph;
use mlgp_part::{edge_cut_kway, kway_partition, MlConfig};

fn embedded_workloads(scale: f64) -> Vec<(&'static str, CsrGraph, Vec<Point>)> {
    let s2 = scale.sqrt();
    let s3 = scale.cbrt();
    let d2 = |v: usize| ((v as f64 * s2).round() as usize).max(8);
    let d3 = |v: usize| ((v as f64 * s3).round() as usize).max(4);
    let (tx, ty) = (d2(125), d2(125));
    let (wx, wy, wz) = (d3(54), d3(54), d3(54));
    let (gx, gy) = (d2(277), d2(276));
    let ls = (d2(68) / 2 * 2).max(4);
    vec![
        (
            "4ELT",
            gen::tri_mesh2d(tx, ty, 0x4e17),
            gen::tri_mesh2d_coords(tx, ty, 0x4e17),
        ),
        (
            "WAVE",
            gen::tet_mesh3d(wx, wy, wz, 0x3a5e),
            gen::tet_mesh3d_coords(wx, wy, wz, 0x3a5e),
        ),
        (
            "SHYY",
            gen::grid2d_9pt(gx, gy, false),
            gen::grid2d_coords(gx, gy),
        ),
        ("LS34", gen::lshape(ls), gen::lshape_coords(ls)),
    ]
}

fn main() {
    let opts = BenchOpts::from_args();
    let k = opts
        .parts
        .as_ref()
        .and_then(|p| p.first().copied())
        .unwrap_or(32);
    opts.banner(&format!(
        "Geometric vs multilevel partitioning ({k}-way, embedded mesh workloads)"
    ));
    println!(
        "{:<6} {:>9} | {:>10} {:>7} | {:>10} {:>7} | {:>10} {:>7} | {:>10} {:>7}",
        "key", "n", "RCB", "t(s)", "inertial", "t(s)", "rand-sep", "t(s)", "multilevel", "t(s)"
    );
    for (key, g, pts) in embedded_workloads(opts.scale) {
        if let Some(keys) = &opts.keys {
            if !keys.iter().any(|x| x == key) {
                continue;
            }
        }
        let (rcb, t_rcb) = timed(|| rcb_partition(&pts, g.vwgt(), k));
        let (inr, t_inr) = timed(|| inertial_partition(&pts, g.vwgt(), k));
        let (sph, t_sph) = timed(|| sphere_kway(&g, &pts, k, &SphereConfig::default()));
        let (ml, t_ml) = timed(|| kway_partition(&g, k, &MlConfig::default()));
        println!(
            "{:<6} {:>9} | {:>10} {:>7.3} | {:>10} {:>7.3} | {:>10} {:>7.3} | {:>10} {:>7.3}",
            key,
            group_thousands(g.n() as i64),
            group_thousands(edge_cut_kway(&g, &rcb)),
            t_rcb,
            group_thousands(edge_cut_kway(&g, &inr)),
            t_inr,
            group_thousands(edge_cut_kway(&g, &sph)),
            t_sph,
            group_thousands(ml.edge_cut),
            t_ml,
        );
    }
    println!("\n(geometric methods need coordinates: the circuit/LP/network workloads");
    println!("of the suite have none — the applicability limit §1 points out)");
}
