//! §5 companion experiment — shared-memory scaling of the parallel
//! formulation.
//!
//! The paper's §5 argues the multilevel scheme parallelizes (56× on a
//! 128-processor Cray T3D for their message-passing formulation). Our
//! shared-memory analogue parallelizes the independent subproblems of
//! recursive bisection / nested dissection with rayon; this binary measures
//! wall-clock speedup over thread counts for k-way partitioning and MLND.
//!
//! ```sh
//! cargo run --release -p mlgp-bench --bin parallel [--scale F] [--keys A,B] [--parts 64]
//! ```

use mlgp_bench::{timed, BenchOpts};
use mlgp_order::mlnd_order;
use mlgp_part::{kway_partition, MlConfig};

fn main() {
    let opts = BenchOpts::from_args();
    let k = opts
        .parts
        .as_ref()
        .and_then(|p| p.first().copied())
        .unwrap_or(64);
    let threads = [1usize, 2, 4, 8];
    opts.banner(&format!(
        "Parallel scaling of {k}-way partitioning and MLND over rayon threads"
    ));
    let keys = opts.select(&["BC32", "ROTR", "TROL", "WAVE"]);
    println!(
        "{:<6} {:>9} | {}",
        "key",
        "task",
        threads.map(|t| format!("{t:>8} thr")).join(" ")
    );
    for key in keys {
        let (_, g) = opts.graph(key);
        for task in ["kway", "mlnd"] {
            let mut row = Vec::new();
            let mut t1 = 0.0;
            for &nt in &threads {
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(nt)
                    .build()
                    .expect("thread pool");
                let (_, secs) = pool.install(|| {
                    timed(|| match task {
                        "kway" => {
                            kway_partition(&g, k, &MlConfig::default());
                        }
                        _ => {
                            mlnd_order(&g);
                        }
                    })
                });
                if nt == 1 {
                    t1 = secs;
                }
                row.push(format!("{:>6.2}s{:>5}", secs, format!("{:.1}x", t1 / secs)));
            }
            println!("{key:<6} {task:>9} | {}", row.join(" "));
        }
    }
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    println!("\ndetected hardware parallelism: {cores} core(s).");
    if cores == 1 {
        println!("on a single core this experiment demonstrates overhead-neutrality of");
        println!("the rayon formulation (≈1.0x at every thread count), not speedup.");
    }
    println!("speedup is bounded by the serial top-level bisection (Amdahl): the");
    println!("first bisection sees the whole graph before any parallelism exists,");
    println!("the same bottleneck §5 identifies for the message-passing version.");
}
