//! Strong-scaling figure for the parallel coarsening kernels.
//!
//! The paper's §5 argues the multilevel scheme parallelizes (56× on a
//! 128-processor Cray T3D for their message-passing formulation). This
//! binary measures the shared-memory analogue at kernel granularity:
//! wall-clock speedup of **matching**, **contraction**, the full
//! **coarsen** loop, and the **metrics** reductions over 1/2/4/8 worker
//! threads on a ≥200k-vertex generator mesh — the hot paths the
//! deterministic parallel kernels in `mlgp-part` cover — plus a
//! **per-phase table** for the full refined pipeline
//! (`kway_partition_refined`), splitting coarsen vs init/refine/project
//! (the paper's CTime vs ITime/RTime/PTime) so coarsening and
//! uncoarsening scaling are visible separately, and a **spectral/linalg
//! section** (chunked-pairwise `dot`, row-sharded Laplacian SpMV, and a
//! capped Lanczos solve) whose fingerprints hash the raw f64 bit
//! patterns — the float kernels must match to the last ulp at every
//! thread count.
//!
//! Because the kernels are deterministic by construction (same seed + any
//! thread count → bit-identical output), the run doubles as an end-to-end
//! determinism cross-check: it fails loudly if any thread count produced a
//! different matching, coarse graph, hierarchy, or metric value.
//!
//! ```sh
//! cargo run --release -p mlgp-bench --bin parallel [--scale F] [--json]
//! ```

use mlgp_bench::{finish_or_exit, timed, BenchOpts};
use mlgp_graph::generators::tri_mesh2d;
use mlgp_graph::rng::seeded;
use mlgp_linalg::{lanczos_fiedler, vecops, LanczosOptions, Laplacian, SymOp};
use mlgp_part::{
    coarsen, compute_matching_threads, contract_threads, edge_cut_kway, kway_partition_refined,
    metrics, part_weights, MatchingScheme, MlConfig, PhaseTimes,
};

const THREADS: [usize; 4] = [1, 2, 4, 8];
const SEED: u64 = 4242;

fn pool(nt: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(nt)
        .build()
        .expect("thread pool")
}

fn main() {
    let opts = BenchOpts::from_args();
    // ~202.5k vertices at scale 1 (the ISSUE floor is 200k); --scale F
    // scales the vertex count linearly.
    let dim = ((450.0 * opts.scale.sqrt()) as usize).max(32);
    let g = tri_mesh2d(dim, dim, 7);
    opts.banner(&format!(
        "Strong scaling of the coarsening kernels on a {}x{dim} triangular mesh \
         ({} vertices, {} edges)",
        dim,
        g.n(),
        g.m()
    ));
    let mut sink = opts.json_sink();
    let cewgt = vec![0i64; g.n()];
    let cfg = MlConfig {
        seed: SEED,
        ..MlConfig::default()
    };
    // A fixed k-way labeling for the metric reductions.
    let part: Vec<u32> = (0..g.n() as u32).map(|v| v % 8).collect();

    println!(
        "{:<10} | {}",
        "kernel",
        THREADS.map(|t| format!("{t:>8} thr")).join(" ")
    );
    let mut deterministic = true;
    for kernel in ["match", "contract", "coarsen", "metrics"] {
        let mut row = Vec::new();
        let mut t1 = 0.0f64;
        let mut reference: Option<u64> = None;
        for &nt in &THREADS {
            let p = pool(nt);
            // Each kernel returns a cheap fingerprint of its output so the
            // run cross-checks determinism across thread counts.
            let (fp, secs) = p.install(|| match kernel {
                "match" => timed(|| {
                    let (m, _) = compute_matching_threads(
                        &g,
                        MatchingScheme::HeavyEdge,
                        &cewgt,
                        &mut seeded(SEED),
                        nt,
                    );
                    fingerprint(m.partner.iter().map(|&x| x as u64))
                }),
                "contract" => timed(|| {
                    let (m, _) = compute_matching_threads(
                        &g,
                        MatchingScheme::HeavyEdge,
                        &cewgt,
                        &mut seeded(SEED),
                        nt,
                    );
                    let (cmap, nc) = m.to_cmap();
                    let (c, _) = contract_threads(&g, &cmap, nc, &cewgt, nt);
                    fingerprint(
                        c.graph
                            .adjncy()
                            .iter()
                            .map(|&x| x as u64)
                            .chain(c.graph.adjwgt().iter().map(|&x| x as u64)),
                    )
                }),
                "coarsen" => timed(|| {
                    let cfg = MlConfig { threads: nt, ..cfg };
                    let h = coarsen(&g, &cfg, &mut seeded(SEED));
                    fingerprint(
                        h.graphs
                            .iter()
                            .flat_map(|l| l.adjncy().iter().map(|&x| x as u64))
                            .chain([h.levels() as u64]),
                    )
                }),
                _ => timed(|| {
                    let cut = edge_cut_kway(&g, &part) as u64;
                    let w = part_weights(&g, &part, 8);
                    let b = metrics::boundary_count(&g, &part) as u64;
                    fingerprint(w.iter().map(|&x| x as u64).chain([cut, b]))
                }),
            });
            if nt == 1 {
                t1 = secs;
            }
            match reference {
                None => reference = Some(fp),
                Some(r) if r != fp => {
                    deterministic = false;
                    eprintln!("DETERMINISM VIOLATION: {kernel} differs at {nt} threads");
                }
                _ => {}
            }
            let speedup = t1 / secs;
            row.push(format!("{:>6.3}s{:>5}", secs, format!("{speedup:.1}x")));
            sink.row(|o| {
                o.field_str("bench", "parallel");
                o.field_str("kernel", kernel);
                o.field_u64("threads", nt as u64);
                o.field_f64("secs", secs);
                o.field_f64("speedup", speedup);
                o.field_u64("n", g.n() as u64);
                o.field_u64("nnz", g.nnz() as u64);
            });
        }
        println!("{kernel:<10} | {}", row.join(" "));
    }
    // Phase-level scaling of the full refined pipeline (coarsen vs the
    // uncoarsening phases, the paper's CTime vs ITime/RTime/PTime): one
    // `kway_partition_refined` run per thread count with `cfg.threads`
    // driving every kernel, fingerprinting the final labeling + cut.
    println!("\nfull pipeline (kway_partition_refined, k=8), per-phase:");
    let mut runs: Vec<(usize, PhaseTimes, f64)> = Vec::new();
    let mut reference: Option<u64> = None;
    for &nt in &THREADS {
        let p = pool(nt);
        let cfg = MlConfig { threads: nt, ..cfg };
        let (r, total) = p.install(|| timed(|| kway_partition_refined(&g, 8, &cfg)));
        let fp = fingerprint(r.part.iter().map(|&x| x as u64).chain([r.edge_cut as u64]));
        match reference {
            None => reference = Some(fp),
            Some(rf) if rf != fp => {
                deterministic = false;
                eprintln!("DETERMINISM VIOLATION: refined pipeline differs at {nt} threads");
            }
            _ => {}
        }
        runs.push((nt, r.times, total));
    }
    println!(
        "{:<10} | {}",
        "phase",
        THREADS.map(|t| format!("{t:>8} thr")).join(" ")
    );
    type PhaseGetter = fn(&PhaseTimes, f64) -> f64;
    let phases: [(&str, PhaseGetter); 5] = [
        ("coarsen", |t, _| t.coarsen.as_secs_f64()),
        ("init", |t, _| t.init.as_secs_f64()),
        ("refine", |t, _| t.refine.as_secs_f64()),
        ("project", |t, _| t.project.as_secs_f64()),
        ("total", |_, total| total),
    ];
    for (phase, get) in phases {
        let t1 = get(&runs[0].1, runs[0].2);
        let mut row = Vec::new();
        for (nt, times, total) in &runs {
            let secs = get(times, *total);
            let speedup = if secs > 0.0 { t1 / secs } else { 1.0 };
            row.push(format!("{:>6.3}s{:>5}", secs, format!("{speedup:.1}x")));
            sink.row(|o| {
                o.field_str("bench", "parallel");
                o.field_str("kernel", "pipeline");
                o.field_str("phase", phase);
                o.field_u64("threads", *nt as u64);
                o.field_f64("secs", secs);
                o.field_f64("speedup", speedup);
                o.field_u64("n", g.n() as u64);
                o.field_u64("nnz", g.nnz() as u64);
            });
        }
        println!("{phase:<10} | {}", row.join(" "));
    }
    // Spectral/linalg strong scaling: the deterministic chunked-pairwise
    // vector reductions, the row-sharded Laplacian SpMV, and a
    // capped-iteration Lanczos solve on the same mesh. Fingerprints are
    // FNV-1a over the f64 bit patterns, so any cross-thread divergence —
    // even one ulp — fails the run.
    println!("\nspectral/linalg kernels (deterministic chunked reductions):");
    println!(
        "{:<10} | {}",
        "kernel",
        THREADS.map(|t| format!("{t:>8} thr")).join(" ")
    );
    // Deterministic dense test vectors (no RNG: pure functions of index).
    let x: Vec<f64> = (0..g.n())
        .map(|i| ((i * 2654435761) % 1000) as f64 / 500.0 - 1.0)
        .collect();
    let y: Vec<f64> = (0..g.n())
        .map(|i| ((i * 40503 + 17) % 1000) as f64 / 250.0 - 2.0)
        .collect();
    // Repetition counts keep each cell in the tens-of-ms range at scale 1.
    let dot_reps = 200usize;
    let spmv_reps = 50usize;
    for kernel in ["dot", "spmv", "lanczos"] {
        let mut row = Vec::new();
        let mut t1 = 0.0f64;
        let mut reference: Option<u64> = None;
        for &nt in &THREADS {
            let (fp, secs) = match kernel {
                "dot" => timed(|| {
                    let mut acc = 0u64;
                    for _ in 0..dot_reps {
                        acc ^= vecops::dot_threads(&x, &y, nt).to_bits();
                    }
                    fingerprint([acc, vecops::norm_threads(&x, nt).to_bits()].into_iter())
                }),
                "spmv" => timed(|| {
                    let lap = Laplacian::with_threads(&g, nt);
                    let mut out = vec![0.0f64; g.n()];
                    for _ in 0..spmv_reps {
                        lap.apply(&x, &mut out);
                    }
                    fingerprint(out.iter().map(|v| v.to_bits()))
                }),
                _ => timed(|| {
                    // Capped Krylov budget: the bench measures kernel
                    // throughput, not convergence, and keeps the cell
                    // bounded on big --scale factors.
                    let lap = Laplacian::with_threads(&g, nt);
                    let r = lanczos_fiedler(
                        &lap,
                        &LanczosOptions {
                            max_steps: 30,
                            max_restarts: 1,
                            tol: 1e-8,
                            seed: SEED,
                            threads: nt,
                        },
                    );
                    fingerprint(
                        r.vector
                            .iter()
                            .map(|v| v.to_bits())
                            .chain([r.lambda.to_bits(), r.matvecs as u64]),
                    )
                }),
            };
            if nt == 1 {
                t1 = secs;
            }
            match reference {
                None => reference = Some(fp),
                Some(r) if r != fp => {
                    deterministic = false;
                    eprintln!("DETERMINISM VIOLATION: {kernel} differs at {nt} threads");
                }
                _ => {}
            }
            let speedup = t1 / secs;
            row.push(format!("{:>6.3}s{:>5}", secs, format!("{speedup:.1}x")));
            sink.row(|o| {
                o.field_str("bench", "parallel");
                o.field_str("kernel", kernel);
                o.field_str("section", "spectral");
                o.field_u64("threads", nt as u64);
                o.field_f64("secs", secs);
                o.field_f64("speedup", speedup);
                o.field_u64("n", g.n() as u64);
                o.field_u64("nnz", g.nnz() as u64);
            });
        }
        println!("{kernel:<10} | {}", row.join(" "));
    }
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    println!(
        "\ndeterminism cross-check: {}",
        if deterministic {
            "OK (all kernels bit-identical at every thread count)"
        } else {
            "FAILED"
        }
    );
    println!("detected hardware parallelism: {cores} core(s).");
    if cores == 1 {
        println!("on a single core this run demonstrates overhead-neutrality of the");
        println!("sharded kernels (≈1.0x at every thread count), not speedup; the");
        println!("shim runs shards on scoped OS threads, so multicore hosts see the");
        println!("real scaling figure.");
    }
    finish_or_exit(sink);
    if !deterministic {
        std::process::exit(1);
    }
}

/// FNV-1a over a word stream — enough to compare outputs across runs.
fn fingerprint(words: impl Iterator<Item = u64>) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for w in words {
        for b in w.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
    }
    h
}
