//! Figure 3 — quality of our multilevel algorithm vs the Chaco multilevel
//! scheme (Chaco-ML): cut-size ratio for 64/128/256 parts.
//!
//! ```sh
//! cargo run --release -p mlgp-bench --bin fig3 [--scale F] [--keys A,B] [--parts 64,128,256]
//! ```

use mlgp_bench::{run_quality_figure, BenchOpts};
use mlgp_spectral::{chaco_ml_kway, ChacoMlConfig};

fn main() {
    let opts = BenchOpts::from_args();
    run_quality_figure(&opts, "Chaco-ML", &|g, k, seed| {
        chaco_ml_kway(
            g,
            k,
            &ChacoMlConfig {
                seed,
                ..ChacoMlConfig::default()
            },
        )
    });
}
