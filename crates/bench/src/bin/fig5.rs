//! Figure 5 — quality of MLND relative to multiple minimum degree (MMD)
//! and spectral nested dissection (SND): factorization operation counts,
//! displayed as `MMD/MLND` and `SND/MLND` ratios (bars above 1.0 mean MLND
//! is better, matching the paper's baseline-at-MLND rendering).
//!
//! ```sh
//! cargo run --release -p mlgp-bench --bin fig5 [--scale F] [--keys A,B]
//! ```

use mlgp_bench::{ratio_bar, timed, BenchOpts};
use mlgp_graph::generators::fig5_rows;
use mlgp_order::{analyze_ordering, mlnd_order, mmd_order, snd_order};

fn main() {
    let opts = BenchOpts::from_args();
    opts.banner(
        "Figure 5: MLND ordering quality vs MMD and SND (opcount ratios; >1 = MLND better)",
    );
    println!(
        "{:<6} {:>12} {:>12} {:>12} {:>9} {:>9}   0 ..... 1 ..... 2  (MMD/MLND)",
        "key", "MLND ops", "MMD ops", "SND ops", "MMD/MLND", "SND/MLND"
    );
    let mut tot = [0.0f64; 3];
    for key in opts.select(&fig5_rows()) {
        let (_, g) = opts.graph(key);
        let (pm, _) = timed(|| mlnd_order(&g));
        let mlnd = analyze_ordering(&g, &pm);
        let (pd, _) = timed(|| mmd_order(&g));
        let mmd = analyze_ordering(&g, &pd);
        let (ps, _) = timed(|| snd_order(&g));
        let snd = analyze_ordering(&g, &ps);
        let r_mmd = mmd.opcount / mlnd.opcount;
        let r_snd = snd.opcount / mlnd.opcount;
        tot[0] += mlnd.opcount;
        tot[1] += mmd.opcount;
        tot[2] += snd.opcount;
        println!(
            "{:<6} {:>12.3e} {:>12.3e} {:>12.3e} {:>9.2} {:>9.2}   [{}]",
            key,
            mlnd.opcount,
            mmd.opcount,
            snd.opcount,
            r_mmd,
            r_snd,
            ratio_bar(r_mmd, 30)
        );
    }
    println!(
        "\ntotals: MLND {:.3e}, MMD {:.3e} ({:.2}x), SND {:.3e} ({:.2}x)",
        tot[0],
        tot[1],
        tot[1] / tot[0],
        tot[2],
        tot[2] / tot[0]
    );
    println!("(paper totals: MMD 702e9 vs MLND 293e9 = 2.4x; SND 378e9 = 1.3x)");
}
