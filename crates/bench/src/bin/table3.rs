//! Table 3 — 32-way edge-cut with **no refinement**, per matching scheme:
//! isolates how good each coarsening is on its own (HEM's selling point —
//! the coarse partition is already within a small factor of the final one).
//!
//! ```sh
//! cargo run --release -p mlgp-bench --bin table3 [--scale F] [--keys A,B]
//! ```

use mlgp_bench::{group_thousands, BenchOpts};
use mlgp_graph::generators::table_rows;
use mlgp_part::{kway_partition, MatchingScheme, MlConfig, RefinementPolicy};

fn main() {
    let opts = BenchOpts::from_args();
    opts.banner("Table 3: 32-way edge-cut when no refinement is performed");
    print!("{:<6}", "");
    for m in MatchingScheme::all() {
        print!("{:>12}", m.abbrev());
    }
    println!("{:>12}", "HEM+BKLGR");
    for key in opts.select(&table_rows()) {
        let (_, g) = opts.graph(key);
        print!("{key:<6}");
        for m in MatchingScheme::all() {
            let cfg = MlConfig {
                matching: m,
                refinement: RefinementPolicy::None,
                ..MlConfig::default()
            };
            let r = kway_partition(&g, 32, &cfg);
            print!("{:>12}", group_thousands(r.edge_cut));
        }
        // Reference column: the refined result, to show the "small factor"
        // claim for HEM.
        let refined = kway_partition(&g, 32, &MlConfig::default());
        println!("{:>12}", group_thousands(refined.edge_cut));
    }
    println!("\nLast column: HEM with BKLGR refinement, for the paper's 'within a small");
    println!("factor of the final partition' comparison.");
}
