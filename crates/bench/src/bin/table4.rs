//! Table 4 — refinement policies: 32-way edge-cut and refinement time for
//! GR / KLR / BGR / BKLR / BKLGR (HEM coarsening and GGGP initial
//! partitioning fixed, as in the paper).
//!
//! ```sh
//! cargo run --release -p mlgp-bench --bin table4 [--scale F] [--keys A,B]
//! ```

use mlgp_bench::{group_thousands, BenchOpts};
use mlgp_graph::generators::table_rows;
use mlgp_part::{kway_partition, MlConfig, RefinementPolicy};

fn main() {
    let opts = BenchOpts::from_args();
    opts.banner("Table 4: performance of refinement policies (32-way, HEM + GGGP)");
    print!("{:<6}", "");
    for r in RefinementPolicy::evaluated() {
        print!("{:>12} {:>7}", r.abbrev(), "RTime");
    }
    println!();
    for key in opts.select(&table_rows()) {
        let (_, g) = opts.graph(key);
        print!("{key:<6}");
        for policy in RefinementPolicy::evaluated() {
            let cfg = MlConfig {
                refinement: policy,
                ..MlConfig::default()
            };
            let r = kway_partition(&g, 32, &cfg);
            print!(
                "{:>12} {:>7.2}",
                group_thousands(r.edge_cut),
                r.times.refine.as_secs_f64()
            );
        }
        println!();
    }
    println!("\nRTime is the refinement phase only, summed over all bisections.");
}
