//! Table 4 — refinement policies: 32-way edge-cut and refinement time for
//! GR / KLR / BGR / BKLR / BKLGR (HEM coarsening and GGGP initial
//! partitioning fixed, as in the paper).
//!
//! ```sh
//! cargo run --release -p mlgp-bench --bin table4 [--scale F] [--keys A,B]
//! ```

use mlgp_bench::{finish_or_exit, group_thousands, timed, BenchOpts};
use mlgp_graph::generators::table_rows;
use mlgp_part::{kway_partition, MlConfig, RefinementPolicy};

fn main() {
    let opts = BenchOpts::from_args();
    let mut sink = opts.json_sink();
    opts.banner("Table 4: performance of refinement policies (32-way, HEM + GGGP)");
    print!("{:<6}", "");
    for r in RefinementPolicy::evaluated() {
        print!("{:>12} {:>7}", r.abbrev(), "RTime");
    }
    println!();
    for key in opts.select(&table_rows()) {
        let (_, g) = opts.graph(key);
        print!("{key:<6}");
        for policy in RefinementPolicy::evaluated() {
            let cfg = MlConfig {
                refinement: policy,
                ..MlConfig::default()
            };
            let (r, secs) = timed(|| kway_partition(&g, 32, &cfg));
            print!(
                "{:>12} {:>7.2}",
                group_thousands(r.edge_cut),
                r.times.refine.as_secs_f64()
            );
            sink.row(|o| {
                o.field_str("bench", "table4");
                o.field_str("key", key);
                o.field_str("refinement", policy.abbrev());
                o.field_usize("k", 32);
                o.field_i64("edge_cut", r.edge_cut);
                o.field_f64("secs", secs);
                o.field_f64("rtime_secs", r.times.refine.as_secs_f64());
            });
        }
        println!();
    }
    println!("\nRTime is the refinement phase only, summed over all bisections.");
    finish_or_exit(sink);
}
