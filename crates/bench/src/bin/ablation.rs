//! Ablations over the design constants the paper fixes: the KL early-exit
//! parameter `x` (= 50), the coarsening threshold (|Vm| < 100), and the
//! BKLGR boundary switch fraction (2%).
//!
//! ```sh
//! cargo run --release -p mlgp-bench --bin ablation [--scale F] [--keys A,B]
//! ```

use mlgp_bench::{group_thousands, timed, BenchOpts};
use mlgp_part::{kway_partition, MlConfig};

fn run(opts: &BenchOpts, keys: &[&str], label: &str, configs: &[(String, MlConfig)]) {
    println!("--- {label} ---");
    print!("{:<6}", "");
    for (name, _) in configs {
        print!("{:>12} {:>7}", name, "time");
    }
    println!();
    for key in keys {
        let (_, g) = opts.graph(key);
        print!("{key:<6}");
        for (_, cfg) in configs {
            let (r, secs) = timed(|| kway_partition(&g, 32, cfg));
            print!("{:>12} {:>7.2}", group_thousands(r.edge_cut), secs);
        }
        println!();
    }
    println!();
}

fn main() {
    let opts = BenchOpts::from_args();
    opts.banner("Design-constant ablations (32-way, HEM + GGGP + BKLGR)");
    let default_rows = ["4ELT", "BC31", "BRCK", "COPT"];
    let keys: Vec<&str> = opts.select(&default_rows);

    // (a) early-exit x.
    let configs: Vec<(String, MlConfig)> = [5, 25, 50, 200]
        .into_iter()
        .map(|x| {
            (
                format!("x={x}"),
                MlConfig {
                    early_exit_moves: x,
                    ..MlConfig::default()
                },
            )
        })
        .collect();
    run(
        &opts,
        &keys,
        "KL early-exit parameter x (paper: 50)",
        &configs,
    );

    // (b) coarsening threshold.
    let configs: Vec<(String, MlConfig)> = [25, 100, 400, 1600]
        .into_iter()
        .map(|c| {
            (
                format!("to={c}"),
                MlConfig {
                    coarsen_to: c,
                    ..MlConfig::default()
                },
            )
        })
        .collect();
    run(
        &opts,
        &keys,
        "coarsening threshold |Vm| (paper: 100)",
        &configs,
    );

    // (c) BKLGR switch fraction.
    let configs: Vec<(String, MlConfig)> = [0.0, 0.02, 0.10, 1.0]
        .into_iter()
        .map(|f| {
            (
                format!("f={f}"),
                MlConfig {
                    hybrid_boundary_frac: f,
                    ..MlConfig::default()
                },
            )
        })
        .collect();
    run(
        &opts,
        &keys,
        "BKLGR switch fraction (paper: 0.02; 0 = pure BGR, 1 = pure BKLR)",
        &configs,
    );
}
