//! Table 2 — matching schemes during coarsening: 32-way edge-cut, CTime and
//! UTime for RM / HEM / LEM / HCM (GGGP initial partitioning and BKLGR
//! refinement fixed, as in the paper).
//!
//! ```sh
//! cargo run --release -p mlgp-bench --bin table2 [--scale F] [--keys A,B]
//! ```

use mlgp_bench::{group_thousands, timed, BenchOpts};
use mlgp_graph::generators::table_rows;
use mlgp_part::{kway_partition, MatchingScheme, MlConfig};

fn main() {
    let opts = BenchOpts::from_args();
    opts.banner("Table 2: performance of matching schemes (32-way, GGGP + BKLGR)");
    print!("{:<6}", "");
    for m in MatchingScheme::all() {
        print!("{:>12} {:>7} {:>7}", m.abbrev(), "", "");
    }
    println!();
    print!("{:<6}", "");
    for _ in MatchingScheme::all() {
        print!("{:>12} {:>7} {:>7}", "32EC", "CTime", "UTime");
    }
    println!();
    for key in opts.select(&table_rows()) {
        let (_, g) = opts.graph(key);
        print!("{key:<6}");
        for m in MatchingScheme::all() {
            let cfg = MlConfig {
                matching: m,
                ..MlConfig::default()
            };
            let (r, _) = timed(|| kway_partition(&g, 32, &cfg));
            print!(
                "{:>12} {:>7.2} {:>7.2}",
                group_thousands(r.edge_cut),
                r.times.coarsen.as_secs_f64(),
                r.times.uncoarsen().as_secs_f64()
            );
        }
        println!();
    }
    println!("\nUTime = ITime + RTime + PTime, summed over all bisections of the recursion.");
}
