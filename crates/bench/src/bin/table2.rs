//! Table 2 — matching schemes during coarsening: 32-way edge-cut, CTime and
//! UTime for RM / HEM / LEM / HCM (GGGP initial partitioning and BKLGR
//! refinement fixed, as in the paper).
//!
//! ```sh
//! cargo run --release -p mlgp-bench --bin table2 [--scale F] [--keys A,B]
//! ```

use mlgp_bench::{finish_or_exit, group_thousands, timed, BenchOpts};
use mlgp_graph::generators::table_rows;
use mlgp_part::{kway_partition, MatchingScheme, MlConfig};

fn main() {
    let opts = BenchOpts::from_args();
    let mut sink = opts.json_sink();
    opts.banner("Table 2: performance of matching schemes (32-way, GGGP + BKLGR)");
    print!("{:<6}", "");
    for m in MatchingScheme::all() {
        print!("{:>12} {:>7} {:>7}", m.abbrev(), "", "");
    }
    println!();
    print!("{:<6}", "");
    for _ in MatchingScheme::all() {
        print!("{:>12} {:>7} {:>7}", "32EC", "CTime", "UTime");
    }
    println!();
    for key in opts.select(&table_rows()) {
        let (_, g) = opts.graph(key);
        print!("{key:<6}");
        for m in MatchingScheme::all() {
            let cfg = MlConfig {
                matching: m,
                ..MlConfig::default()
            };
            let (r, secs) = timed(|| kway_partition(&g, 32, &cfg));
            print!(
                "{:>12} {:>7.2} {:>7.2}",
                group_thousands(r.edge_cut),
                r.times.coarsen.as_secs_f64(),
                r.times.uncoarsen().as_secs_f64()
            );
            sink.row(|o| {
                o.field_str("bench", "table2");
                o.field_str("key", key);
                o.field_str("matching", m.abbrev());
                o.field_usize("k", 32);
                o.field_i64("edge_cut", r.edge_cut);
                o.field_f64("secs", secs);
                o.field_f64("ctime_secs", r.times.coarsen.as_secs_f64());
                o.field_f64("itime_secs", r.times.init.as_secs_f64());
                o.field_f64("rtime_secs", r.times.refine.as_secs_f64());
                o.field_f64("ptime_secs", r.times.project.as_secs_f64());
            });
        }
        println!();
    }
    println!("\nUTime = ITime + RTime + PTime, summed over all bisections of the recursion.");
    finish_or_exit(sink);
}
