//! Figure 2 — quality of our multilevel algorithm vs MSB with Kernighan-Lin
//! refinement (MSB-KL): cut-size ratio for 64/128/256 parts.
//!
//! ```sh
//! cargo run --release -p mlgp-bench --bin fig2 [--scale F] [--keys A,B] [--parts 64,128,256]
//! ```

use mlgp_bench::{run_quality_figure, BenchOpts};
use mlgp_spectral::{msb_kl_kway, MsbConfig};

fn main() {
    let opts = BenchOpts::from_args();
    run_quality_figure(&opts, "MSB-KL", &|g, k, seed| {
        msb_kl_kway(
            g,
            k,
            &MsbConfig {
                seed,
                ..MsbConfig::default()
            },
        )
    });
}
