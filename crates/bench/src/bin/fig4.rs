//! Figure 4 — runtime of Chaco-ML, MSB and MSB-KL **relative to** our
//! multilevel algorithm, for a 256-way partition.
//!
//! ```sh
//! cargo run --release -p mlgp-bench --bin fig4 [--scale F] [--keys A,B] [--parts 256]
//! ```

use mlgp_bench::{timed, BenchOpts};
use mlgp_graph::generators::figure_rows;
use mlgp_part::{kway_partition, MlConfig};
use mlgp_spectral::{chaco_ml_kway, msb_kl_kway, msb_kway, ChacoMlConfig, MsbConfig};

fn main() {
    let opts = BenchOpts::from_args();
    let k = opts
        .parts
        .as_ref()
        .and_then(|p| p.first().copied())
        .unwrap_or(256);
    opts.banner(&format!(
        "Figure 4: time to find a {k}-way partition relative to our multilevel algorithm"
    ));
    println!(
        "{:<6} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "key", "ours(s)", "chaco(s)", "msb(s)", "msbkl(s)", "chaco/x", "msb/x", "msbkl/x"
    );
    let mut sums = [0.0f64; 3];
    let mut rows_done = 0usize;
    for key in opts.select(&figure_rows()) {
        let (_, g) = opts.graph(key);
        let (_, ours) = timed(|| kway_partition(&g, k, &MlConfig::default()));
        let (_, chaco) = timed(|| chaco_ml_kway(&g, k, &ChacoMlConfig::default()));
        let (_, msb) = timed(|| msb_kway(&g, k, &MsbConfig::default()));
        let (_, msbkl) = timed(|| msb_kl_kway(&g, k, &MsbConfig::default()));
        println!(
            "{:<6} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.1} {:>9.1} {:>9.1}",
            key,
            ours,
            chaco,
            msb,
            msbkl,
            chaco / ours,
            msb / ours,
            msbkl / ours
        );
        sums[0] += chaco / ours;
        sums[1] += msb / ours;
        sums[2] += msbkl / ours;
        rows_done += 1;
    }
    if rows_done > 0 {
        println!(
            "\nmean slowdown vs ours: Chaco-ML {:.1}x, MSB {:.1}x, MSB-KL {:.1}x",
            sums[0] / rows_done as f64,
            sums[1] / rows_done as f64,
            sums[2] / rows_done as f64
        );
        println!("(paper: Chaco-ML ~2-6x, MSB 10-35x, MSB-KL higher still)");
    }
}
