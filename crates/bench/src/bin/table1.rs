//! Table 1 — the workload suite: paper matrices and our synthetic stand-ins.
//!
//! ```sh
//! cargo run --release -p mlgp-bench --bin table1 [--scale F]
//! ```

use mlgp_bench::{finish_or_exit, group_thousands, BenchOpts};
use mlgp_graph::generators::suite;

fn main() {
    let opts = BenchOpts::from_args();
    opts.banner("Table 1: matrices used in evaluating the algorithms");
    println!(
        "{:<6} {:<12} {:>9} {:>11} {:>9} {:>11}  description",
        "key", "paper name", "order", "nonzeros", "our n", "our nnz"
    );
    let mut sink = opts.json_sink();
    for e in suite() {
        if let Some(keys) = &opts.keys {
            if !keys.iter().any(|k| k == e.key) {
                continue;
            }
        }
        let g = e.generate_scaled(opts.scale);
        println!(
            "{:<6} {:<12} {:>9} {:>11} {:>9} {:>11}  {}",
            e.key,
            e.paper_name,
            group_thousands(e.paper_order as i64),
            group_thousands(e.paper_nonzeros as i64),
            group_thousands(g.n() as i64),
            group_thousands(g.nnz() as i64),
            e.description
        );
        sink.row(|o| {
            o.field_str("bench", "table1");
            o.field_str("key", e.key);
            o.field_str("paper_name", e.paper_name);
            o.field_usize("paper_order", e.paper_order);
            o.field_usize("paper_nonzeros", e.paper_nonzeros);
            o.field_usize("n", g.n());
            o.field_usize("nnz", g.nnz());
            o.field_f64("scale", opts.scale);
        });
    }
    finish_or_exit(sink);
}
