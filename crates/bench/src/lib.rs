//! # mlgp-bench
//!
//! Reproduction harness for the paper's evaluation (§4): one binary per
//! table/figure (see DESIGN.md §5) plus shared helpers, and Criterion
//! micro-benchmarks for the kernels.
//!
//! Every binary accepts `--scale F` (default 1.0) which shrinks each
//! workload to `F ×` its paper size — the figures involving the spectral
//! baselines are expensive at full scale, exactly as the paper reports
//! (MSB is the 10-35× slower method). `--keys A,B,C` restricts the rows.

use mlgp_graph::generators::{entry, SuiteEntry};
use mlgp_graph::CsrGraph;
use std::time::Instant;

/// Command-line options shared by all experiment binaries.
#[derive(Clone, Debug)]
pub struct BenchOpts {
    /// Workload scale factor (1.0 = paper size).
    pub scale: f64,
    /// Optional row restriction.
    pub keys: Option<Vec<String>>,
    /// Override part counts (figures).
    pub parts: Option<Vec<usize>>,
}

impl BenchOpts {
    /// Parse from `std::env::args`.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut scale = 1.0;
        let mut keys = None;
        let mut parts = None;
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    scale = args
                        .get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .expect("--scale needs a number");
                    i += 2;
                }
                "--keys" => {
                    keys = Some(
                        args.get(i + 1)
                            .expect("--keys needs a list")
                            .split(',')
                            .map(|s| s.trim().to_uppercase())
                            .collect(),
                    );
                    i += 2;
                }
                "--parts" => {
                    parts = Some(
                        args.get(i + 1)
                            .expect("--parts needs a list")
                            .split(',')
                            .map(|s| s.trim().parse().expect("bad part count"))
                            .collect(),
                    );
                    i += 2;
                }
                other => {
                    panic!("unknown option {other} (use --scale F, --keys A,B, --parts 64,128)")
                }
            }
        }
        Self { scale, keys, parts }
    }

    /// Filter a row list by `--keys`.
    pub fn select<'a>(&self, rows: &[&'a str]) -> Vec<&'a str> {
        match &self.keys {
            None => rows.to_vec(),
            Some(keys) => rows
                .iter()
                .copied()
                .filter(|r| keys.iter().any(|k| k == r))
                .collect(),
        }
    }

    /// Generate the (scaled) graph for a suite key.
    pub fn graph(&self, key: &str) -> (&'static SuiteEntry, CsrGraph) {
        let e = entry(key).unwrap_or_else(|| panic!("unknown suite key {key}"));
        (e, e.generate_scaled(self.scale))
    }

    /// Banner line describing the run.
    pub fn banner(&self, what: &str) {
        println!("== {what} ==");
        println!(
            "scale = {} (1.0 reproduces the paper's graph sizes); times are wall-clock seconds",
            self.scale
        );
        println!();
    }
}

/// Time a closure, returning `(result, seconds)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t = Instant::now();
    let r = f();
    (r, t.elapsed().as_secs_f64())
}

/// Format a count with thousands grouping for table readability.
pub fn group_thousands(x: i64) -> String {
    let s = x.abs().to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    if x < 0 {
        format!("-{out}")
    } else {
        out
    }
}

/// Fixed-width ASCII bar for terminal-rendered ratio "figures": 1.0 sits at
/// the midpoint marker, values are clamped to [0, 2].
pub fn ratio_bar(ratio: f64, width: usize) -> String {
    let clamped = ratio.clamp(0.0, 2.0);
    let fill = ((clamped / 2.0) * width as f64).round() as usize;
    let mut chars: Vec<char> = (0..width)
        .map(|i| if i < fill.min(width) { '#' } else { ' ' })
        .collect();
    let mid = width / 2;
    if chars[mid] == ' ' {
        chars[mid] = '|';
    }
    chars.into_iter().collect()
}

/// Shared driver for Figures 1-3: for each figure row and each part count,
/// print the ratio of our multilevel edge-cut to a baseline's, with an
/// ASCII bar (below 1.0 = we win, matching the paper's rendering).
pub fn run_quality_figure(
    opts: &BenchOpts,
    baseline_name: &str,
    baseline: &dyn Fn(&CsrGraph, usize, u64) -> Vec<u32>,
) {
    use mlgp_part::{edge_cut_kway, kway_partition, MlConfig};
    opts.banner(&format!(
        "edge-cut of our multilevel algorithm relative to {baseline_name} (bars under the | baseline mean we win)"
    ));
    let parts = opts.parts.clone().unwrap_or_else(|| vec![64, 128, 256]);
    println!("{:<6} {:>6} {:>10} {:>10} {:>7}  0 ..... 1 ..... 2", "key", "k", "ours", baseline_name, "ratio");
    let rows = opts.select(&mlgp_graph::generators::figure_rows());
    let mut product = 1.0f64;
    let mut count = 0usize;
    for key in rows {
        let (_, g) = opts.graph(key);
        for &k in &parts {
            let ours = kway_partition(&g, k, &MlConfig::default()).edge_cut;
            let base_part = baseline(&g, k, 0xf15);
            let base = edge_cut_kway(&g, &base_part);
            let ratio = if base > 0 { ours as f64 / base as f64 } else { f64::NAN };
            if ratio.is_finite() {
                product *= ratio;
                count += 1;
            }
            println!(
                "{:<6} {:>6} {:>10} {:>10} {:>7.3}  [{}]",
                key,
                k,
                group_thousands(ours),
                group_thousands(base),
                ratio,
                ratio_bar(ratio, 34)
            );
        }
    }
    if count > 0 {
        println!(
            "\ngeometric-mean ratio over {count} bars: {:.3} (paper: consistently < 1)",
            product.powf(1.0 / count as f64)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thousands_grouping() {
        assert_eq!(group_thousands(0), "0");
        assert_eq!(group_thousands(999), "999");
        assert_eq!(group_thousands(1000), "1,000");
        assert_eq!(group_thousands(1234567), "1,234,567");
        assert_eq!(group_thousands(-4200), "-4,200");
    }

    #[test]
    fn timing_returns_value() {
        let (v, secs) = timed(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }

    #[test]
    fn bars_have_fixed_width() {
        for r in [0.0, 0.5, 1.0, 1.5, 2.0, 9.0] {
            assert_eq!(ratio_bar(r, 40).len(), 40);
        }
    }

    #[test]
    fn select_filters() {
        let opts = BenchOpts {
            scale: 1.0,
            keys: Some(vec!["4ELT".into()]),
            parts: None,
        };
        assert_eq!(opts.select(&["BC31", "4ELT"]), vec!["4ELT"]);
        let all = BenchOpts {
            scale: 1.0,
            keys: None,
            parts: None,
        };
        assert_eq!(all.select(&["A", "B"]), vec!["A", "B"]);
    }

    #[test]
    fn graph_lookup_scales() {
        let opts = BenchOpts {
            scale: 0.02,
            keys: None,
            parts: None,
        };
        let (e, g) = opts.graph("LS34");
        assert_eq!(e.key, "LS34");
        assert!(g.n() < e.paper_order);
    }
}
