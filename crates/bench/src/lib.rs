//! # mlgp-bench
//!
//! Reproduction harness for the paper's evaluation (§4): one binary per
//! table/figure (see DESIGN.md §5) plus shared helpers, and Criterion
//! micro-benchmarks for the kernels.
//!
//! Every binary accepts `--scale F` (default 1.0) which shrinks each
//! workload to `F ×` its paper size — the figures involving the spectral
//! baselines are expensive at full scale, exactly as the paper reports
//! (MSB is the 10-35× slower method). `--keys A,B,C` restricts the rows,
//! and `--json [FILE]` additionally emits the rows as JSONL (to stdout when
//! no file is given) for tracking results across commits.

use mlgp_graph::generators::{entry, SuiteEntry};
use mlgp_graph::CsrGraph;
use mlgp_trace::json::JsonObj;
use std::time::Instant;

/// Command-line options shared by all experiment binaries.
#[derive(Clone, Debug)]
pub struct BenchOpts {
    /// Workload scale factor (1.0 = paper size).
    pub scale: f64,
    /// Optional row restriction.
    pub keys: Option<Vec<String>>,
    /// Override part counts (figures).
    pub parts: Option<Vec<usize>>,
    /// JSONL destination: `Some("-")` is stdout, `None` disables the sink.
    pub json: Option<String>,
}

impl BenchOpts {
    /// Parse from `std::env::args`; on a malformed command line print the
    /// error to stderr and exit with status 2 (no panic backtrace).
    pub fn from_args() -> Self {
        Self::try_from_args(std::env::args().skip(1)).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        })
    }

    /// Fallible parser behind [`BenchOpts::from_args`].
    pub fn try_from_args(args: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let args: Vec<String> = args.into_iter().collect();
        let mut opts = Self {
            scale: 1.0,
            keys: None,
            parts: None,
            json: None,
        };
        let mut i = 0;
        // `--json` may appear last with no operand (meaning stdout); the
        // value-carrying options must not swallow a following `--flag`.
        let value = |args: &[String], i: usize, name: &str| -> Result<String, String> {
            match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => Ok(v.clone()),
                _ => Err(format!("{name} needs a value")),
            }
        };
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    let v = value(&args, i, "--scale")?;
                    opts.scale = v
                        .parse()
                        .map_err(|_| format!("--scale needs a number, got `{v}`"))?;
                    // Also rejects NaN, which compares false with everything.
                    if opts.scale.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
                        return Err(format!("--scale must be positive, got `{v}`"));
                    }
                    i += 2;
                }
                "--keys" => {
                    opts.keys = Some(
                        value(&args, i, "--keys")?
                            .split(',')
                            .map(|s| s.trim().to_uppercase())
                            .collect(),
                    );
                    i += 2;
                }
                "--parts" => {
                    let v = value(&args, i, "--parts")?;
                    opts.parts = Some(
                        v.split(',')
                            .map(|s| {
                                s.trim()
                                    .parse()
                                    .map_err(|_| format!("--parts: bad part count `{s}`"))
                            })
                            .collect::<Result<_, _>>()?,
                    );
                    i += 2;
                }
                "--json" => match args.get(i + 1) {
                    Some(v) if !v.starts_with("--") => {
                        opts.json = Some(v.clone());
                        i += 2;
                    }
                    _ => {
                        opts.json = Some("-".into());
                        i += 1;
                    }
                },
                other => {
                    return Err(format!(
                        "unknown option `{other}` (use --scale F, --keys A,B, --parts 64,128, --json [FILE])"
                    ));
                }
            }
        }
        Ok(opts)
    }

    /// The JSONL sink selected by `--json` (disabled when absent).
    pub fn json_sink(&self) -> JsonSink {
        JsonSink {
            dest: self.json.clone(),
            rows: Vec::new(),
        }
    }

    /// Filter a row list by `--keys`.
    pub fn select<'a>(&self, rows: &[&'a str]) -> Vec<&'a str> {
        match &self.keys {
            None => rows.to_vec(),
            Some(keys) => rows
                .iter()
                .copied()
                .filter(|r| keys.iter().any(|k| k == r))
                .collect(),
        }
    }

    /// Generate the (scaled) graph for a suite key.
    pub fn graph(&self, key: &str) -> (&'static SuiteEntry, CsrGraph) {
        // LINT: allow(panic, CLI-facing lookup — an unknown suite key is a usage error reported by aborting the bench run)
        let e = entry(key).unwrap_or_else(|| panic!("unknown suite key {key}"));
        (e, e.generate_scaled(self.scale))
    }

    /// Banner line describing the run.
    pub fn banner(&self, what: &str) {
        println!("== {what} ==");
        println!(
            "scale = {} (1.0 reproduces the paper's graph sizes); times are wall-clock seconds",
            self.scale
        );
        println!();
    }
}

/// Accumulates machine-readable result rows and writes them as JSONL when
/// the run finishes. Disabled (every call a no-op) unless `--json` was given,
/// so the human-readable tables stay the default output.
#[derive(Debug)]
pub struct JsonSink {
    dest: Option<String>,
    rows: Vec<String>,
}

impl JsonSink {
    /// Whether `--json` was requested.
    pub fn is_enabled(&self) -> bool {
        self.dest.is_some()
    }

    /// Append one row; `build` fills the object and is only invoked when the
    /// sink is enabled.
    pub fn row(&mut self, build: impl FnOnce(&mut JsonObj)) {
        if self.dest.is_none() {
            return;
        }
        let mut obj = JsonObj::new();
        build(&mut obj);
        self.rows.push(obj.finish());
    }

    /// Write the collected rows (one JSON object per line) to the `--json`
    /// destination — stdout for `-`, a file otherwise.
    pub fn finish(self) -> Result<(), String> {
        let Some(dest) = self.dest else {
            return Ok(());
        };
        let mut body = self.rows.join("\n");
        if !body.is_empty() {
            body.push('\n');
        }
        if dest == "-" {
            print!("{body}");
            Ok(())
        } else {
            std::fs::write(&dest, body).map_err(|e| format!("writing {dest}: {e}"))?;
            eprintln!("json rows written to {dest}");
            Ok(())
        }
    }
}

/// [`JsonSink::finish`] for binary `main`s: report the error and exit 2.
pub fn finish_or_exit(sink: JsonSink) {
    if let Err(e) = sink.finish() {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
}

/// Time a closure, returning `(result, seconds)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t = Instant::now();
    let r = f();
    (r, t.elapsed().as_secs_f64())
}

/// Format a count with thousands grouping for table readability.
pub fn group_thousands(x: i64) -> String {
    let s = x.abs().to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    if x < 0 {
        format!("-{out}")
    } else {
        out
    }
}

/// Fixed-width ASCII bar for terminal-rendered ratio "figures": 1.0 sits at
/// the midpoint marker, values are clamped to [0, 2].
pub fn ratio_bar(ratio: f64, width: usize) -> String {
    let clamped = ratio.clamp(0.0, 2.0);
    let fill = ((clamped / 2.0) * width as f64).round() as usize;
    let mut chars: Vec<char> = (0..width)
        .map(|i| if i < fill.min(width) { '#' } else { ' ' })
        .collect();
    let mid = width / 2;
    if chars[mid] == ' ' {
        chars[mid] = '|';
    }
    chars.into_iter().collect()
}

/// Shared driver for Figures 1-3: for each figure row and each part count,
/// print the ratio of our multilevel edge-cut to a baseline's, with an
/// ASCII bar (below 1.0 = we win, matching the paper's rendering).
pub fn run_quality_figure(
    opts: &BenchOpts,
    baseline_name: &str,
    baseline: &dyn Fn(&CsrGraph, usize, u64) -> Vec<u32>,
) {
    use mlgp_part::{edge_cut_kway, kway_partition, MlConfig};
    opts.banner(&format!(
        "edge-cut of our multilevel algorithm relative to {baseline_name} (bars under the | baseline mean we win)"
    ));
    let parts = opts.parts.clone().unwrap_or_else(|| vec![64, 128, 256]);
    println!(
        "{:<6} {:>6} {:>10} {:>10} {:>7}  0 ..... 1 ..... 2",
        "key", "k", "ours", baseline_name, "ratio"
    );
    let rows = opts.select(&mlgp_graph::generators::figure_rows());
    let mut product = 1.0f64;
    let mut count = 0usize;
    let mut sink = opts.json_sink();
    for key in rows {
        let (_, g) = opts.graph(key);
        for &k in &parts {
            let (r, ours_secs) = timed(|| kway_partition(&g, k, &MlConfig::default()));
            let ours = r.edge_cut;
            let (base_part, base_secs) = timed(|| baseline(&g, k, 0xf15));
            let base = edge_cut_kway(&g, &base_part);
            let ratio = if base > 0 {
                ours as f64 / base as f64
            } else {
                f64::NAN
            };
            if ratio.is_finite() {
                product *= ratio;
                count += 1;
            }
            println!(
                "{:<6} {:>6} {:>10} {:>10} {:>7.3}  [{}]",
                key,
                k,
                group_thousands(ours),
                group_thousands(base),
                ratio,
                ratio_bar(ratio, 34)
            );
            sink.row(|o| {
                o.field_str("bench", "quality_figure");
                o.field_str("baseline", baseline_name);
                o.field_str("key", key);
                o.field_usize("k", k);
                o.field_i64("edge_cut", ours);
                o.field_i64("baseline_edge_cut", base);
                o.field_f64("ratio", ratio);
                o.field_f64("secs", ours_secs);
                o.field_f64("baseline_secs", base_secs);
                o.field_f64("ctime_secs", r.times.coarsen.as_secs_f64());
                o.field_f64("utime_secs", r.times.uncoarsen().as_secs_f64());
            });
        }
    }
    if count > 0 {
        println!(
            "\ngeometric-mean ratio over {count} bars: {:.3} (paper: consistently < 1)",
            product.powf(1.0 / count as f64)
        );
    }
    finish_or_exit(sink);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thousands_grouping() {
        assert_eq!(group_thousands(0), "0");
        assert_eq!(group_thousands(999), "999");
        assert_eq!(group_thousands(1000), "1,000");
        assert_eq!(group_thousands(1234567), "1,234,567");
        assert_eq!(group_thousands(-4200), "-4,200");
    }

    #[test]
    fn timing_returns_value() {
        let (v, secs) = timed(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }

    #[test]
    fn bars_have_fixed_width() {
        for r in [0.0, 0.5, 1.0, 1.5, 2.0, 9.0] {
            assert_eq!(ratio_bar(r, 40).len(), 40);
        }
    }

    #[test]
    fn select_filters() {
        let opts = BenchOpts {
            scale: 1.0,
            keys: Some(vec!["4ELT".into()]),
            parts: None,
            json: None,
        };
        assert_eq!(opts.select(&["BC31", "4ELT"]), vec!["4ELT"]);
        let all = BenchOpts {
            scale: 1.0,
            keys: None,
            parts: None,
            json: None,
        };
        assert_eq!(all.select(&["A", "B"]), vec!["A", "B"]);
    }

    #[test]
    fn graph_lookup_scales() {
        let opts = BenchOpts {
            scale: 0.02,
            keys: None,
            parts: None,
            json: None,
        };
        let (e, g) = opts.graph("LS34");
        assert_eq!(e.key, "LS34");
        assert!(g.n() < e.paper_order);
    }

    fn parse(args: &[&str]) -> Result<BenchOpts, String> {
        BenchOpts::try_from_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn arg_parsing_accepts_valid_forms() {
        let o = parse(&["--scale", "0.5", "--keys", "a,4elt", "--parts", "2,4"]).unwrap();
        assert_eq!(o.scale, 0.5);
        assert_eq!(
            o.keys.as_deref(),
            Some(&["A".to_string(), "4ELT".to_string()][..])
        );
        assert_eq!(o.parts.as_deref(), Some(&[2usize, 4][..]));
        assert_eq!(o.json, None);
        // Bare --json means stdout; --json FILE names the file.
        assert_eq!(parse(&["--json"]).unwrap().json.as_deref(), Some("-"));
        assert_eq!(
            parse(&["--json", "/tmp/rows.jsonl"])
                .unwrap()
                .json
                .as_deref(),
            Some("/tmp/rows.jsonl")
        );
        // --json before another flag still means stdout.
        let o = parse(&["--json", "--scale", "2"]).unwrap();
        assert_eq!(o.json.as_deref(), Some("-"));
        assert_eq!(o.scale, 2.0);
    }

    #[test]
    fn arg_parsing_rejects_malformed_input_with_messages() {
        for (args, needle) in [
            (&["--scale", "abc"][..], "--scale"),
            (&["--scale"][..], "needs a value"),
            (&["--scale", "-1"][..], "positive"),
            (&["--parts", "2,x"][..], "bad part count"),
            (&["--keys"][..], "needs a value"),
            (&["--frobnicate"][..], "unknown option"),
        ] {
            let err = parse(args).unwrap_err();
            assert!(err.contains(needle), "args {args:?}: {err}");
        }
    }

    #[test]
    fn json_sink_collects_and_renders_rows() {
        let enabled = BenchOpts {
            scale: 1.0,
            keys: None,
            parts: None,
            json: Some("-".into()),
        };
        let mut sink = enabled.json_sink();
        assert!(sink.is_enabled());
        sink.row(|o| {
            o.field_str("key", "4ELT");
            o.field_usize("k", 8);
        });
        assert_eq!(sink.rows, vec![r#"{"key":"4ELT","k":8}"#.to_string()]);

        let disabled = BenchOpts {
            scale: 1.0,
            keys: None,
            parts: None,
            json: None,
        };
        let mut sink = disabled.json_sink();
        assert!(!sink.is_enabled());
        sink.row(|_| panic!("builder must not run when the sink is disabled"));
        assert!(sink.rows.is_empty());
        sink.finish().unwrap();
    }
}
