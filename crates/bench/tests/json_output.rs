//! End-to-end check of the `--json` emitter: run the real `table1` binary
//! and parse every row it writes with the trace-layer JSON parser.

use std::process::Command;

fn parse_rows(jsonl: &str) -> Vec<mlgp_trace::json::Value> {
    jsonl
        .lines()
        .filter(|l| l.starts_with('{'))
        .map(|l| mlgp_trace::json::parse(l).unwrap_or_else(|e| panic!("bad row {l}: {e}")))
        .collect()
}

#[test]
fn table1_json_file_is_valid_jsonl() {
    let out = std::env::temp_dir().join(format!("mlgp-table1-{}.jsonl", std::process::id()));
    let status = Command::new(env!("CARGO_BIN_EXE_table1"))
        .args(["--scale", "0.05", "--keys", "4ELT,BC31", "--json"])
        .arg(&out)
        .status()
        .expect("spawn table1");
    assert!(status.success());
    let body = std::fs::read_to_string(&out).expect("read json output");
    std::fs::remove_file(&out).ok();
    let rows = parse_rows(&body);
    assert_eq!(rows.len(), 2, "one row per selected key: {body}");
    for row in &rows {
        assert_eq!(row.get("bench").and_then(|v| v.as_str()), Some("table1"));
        assert!(row.get("n").and_then(|v| v.as_f64()).unwrap() > 0.0);
        assert!(row.get("nnz").and_then(|v| v.as_f64()).unwrap() > 0.0);
    }
    let keys: Vec<_> = rows
        .iter()
        .map(|r| r.get("key").and_then(|v| v.as_str()).unwrap().to_string())
        .collect();
    assert!(keys.contains(&"4ELT".to_string()) && keys.contains(&"BC31".to_string()));
}

#[test]
fn table1_bare_json_flag_writes_rows_to_stdout() {
    let out = Command::new(env!("CARGO_BIN_EXE_table1"))
        .args(["--scale", "0.05", "--keys", "4ELT", "--json"])
        .output()
        .expect("spawn table1");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    let rows = parse_rows(&stdout);
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].get("key").and_then(|v| v.as_str()), Some("4ELT"));
}

#[test]
fn malformed_options_exit_nonzero_without_panicking() {
    for args in [
        &["--scale", "banana"][..],
        &["--frobnicate"][..],
        &["--parts", "2,x"][..],
    ] {
        let out = Command::new(env!("CARGO_BIN_EXE_table1"))
            .args(args)
            .output()
            .expect("spawn table1");
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
        let stderr = String::from_utf8(out.stderr).unwrap();
        assert!(stderr.starts_with("error:"), "args {args:?}: {stderr}");
        assert!(
            !stderr.contains("panicked"),
            "args {args:?} produced a panic backtrace: {stderr}"
        );
    }
}
