//! # mlgp-trace
//!
//! Zero-dependency observability layer for the multilevel pipeline.
//!
//! The paper's whole evaluation is an argument about *where time goes*
//! (CTime vs UTime, §4.1) and *how quality evolves across levels* (the
//! coarsening trajectories behind Figures 1–3, the cut trajectory during
//! uncoarsening). This crate provides the measurement substrate: a cheap
//! [`Trace`] handle threaded through the pipeline that collects
//!
//! * **spans** — wall-clock time accumulated under `/`-separated paths
//!   (`"coarsen"`, `"uncoarsen/init"`, …), preserving the paper's
//!   CTime / UTime = ITime + RTime + PTime vocabulary;
//! * **events** — typed per-level records ([`Event::CoarsenLevel`],
//!   [`Event::RefineLevel`], [`Event::Eigen`], …);
//! * **counters** — named monotone totals (FM passes, moves, rollbacks,
//!   early-exit triggers, …);
//! * **metadata** — free-form key/value context (graph, k, method, seed).
//!
//! A disabled handle ([`Trace::disabled`]) is a `None` and every recording
//! method is an early-returning no-op — no timestamps are taken, no locks
//! touched — so instrumented hot paths cost nothing when tracing is off.
//! An enabled handle is a cheap clone (`Arc`) that is `Send + Sync`, so it
//! crosses the rayon forks of recursive bisection and nested dissection.
//!
//! Output formats: [`Trace::summary_tree`] (human-readable tree, the
//! `--stats` flag) and [`Trace::to_jsonl`] (one JSON object per line, the
//! `--trace FILE` flag; schema documented in DESIGN.md §7).

pub mod json;

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Lock a collector mutex, recovering from poisoning: a panic in traced
/// user code must not cascade into the observability layer, and every
/// critical section below is a short field update that cannot leave the
/// collector in a torn state.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The workspace's sole doorway to the wall clock.
///
/// The determinism contract (DESIGN.md §10–§11, lint rule `D3`) bans
/// `Instant`/`SystemTime` from algorithm crates: timing must be
/// observability-only, never an input to a partitioning decision. Kernel
/// code that wants phase timings measures them through this type, keeping
/// every wall-clock read inside `crates/trace` where the static-analysis
/// gate can see that it only flows into telemetry.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Start timing now.
    #[inline]
    pub fn start() -> Self {
        Stopwatch(Instant::now())
    }

    /// Wall-clock time elapsed since [`Stopwatch::start`].
    #[inline]
    pub fn elapsed(&self) -> Duration {
        self.0.elapsed()
    }
}

/// Span path for the coarsening phase — the paper's **CTime**.
pub const SPAN_COARSEN: &str = "coarsen";
/// Span path for coarsest-graph partitioning — the paper's **ITime**.
pub const SPAN_INIT: &str = "uncoarsen/init";
/// Span path for refinement during uncoarsening — the paper's **RTime**.
pub const SPAN_REFINE: &str = "uncoarsen/refine";
/// Span path for partition projection — the paper's **PTime**.
pub const SPAN_PROJECT: &str = "uncoarsen/project";
/// Span path of the whole uncoarsening phase — the paper's **UTime**
/// (never recorded directly; it is the sum of its children).
pub const SPAN_UNCOARSEN: &str = "uncoarsen";

/// A typed telemetry record. Each variant becomes one JSONL object with a
/// `"type"` discriminator.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// One level of the coarsening hierarchy (one record per level,
    /// including the coarsest, whose `matched_fraction` is 0).
    CoarsenLevel {
        /// Recursion-branch id (the deterministic reseed salt; 1 for a
        /// plain bisection, the recursion path for k-way).
        branch: u64,
        /// Level index (0 = finest / input graph).
        level: usize,
        /// Vertices of this level's graph.
        vertices: usize,
        /// Edges of this level's graph.
        edges: usize,
        /// Total vertex weight (conserved across levels).
        total_vwgt: i64,
        /// Total (exposed) edge weight `W(E_i)` of this level.
        edge_wgt: i64,
        /// Edge weight contracted *inside* multinodes so far (the paper's
        /// identity: `W(E_{i+1}) = W(E_i) − W(M_i)`).
        contracted_wgt: i64,
        /// Fraction of this level's vertices matched to form the next
        /// level (0 for the coarsest level).
        matched_fraction: f64,
        /// Matching scheme abbreviation (RM/HEM/LEM/HCM).
        scheme: &'static str,
    },
    /// One uncoarsening level's refinement outcome.
    RefineLevel {
        /// Recursion-branch id (matches the coarsening records).
        branch: u64,
        /// Level index being refined (hierarchy depth; coarsest first).
        level: usize,
        /// Vertices at this level.
        vertices: usize,
        /// Boundary vertices after refinement.
        boundary: usize,
        /// KL/FM passes executed.
        passes: usize,
        /// Vertex moves committed (kept after rollback).
        moves: usize,
        /// Vertex moves rolled back.
        rollbacks: usize,
        /// Passes ended by the `early_exit_moves` counter (see
        /// `MlConfig::early_exit_moves`).
        early_exit_triggers: usize,
        /// Edge-cut entering this level (for the coarsest level: the cut
        /// after initial partitioning, the paper's "cut after coarsest
        /// partition").
        cut_before: i64,
        /// Edge-cut after refinement at this level.
        cut_after: i64,
        /// Refinement policy abbreviation.
        policy: &'static str,
    },
    /// One eigensolver run (Lanczos / MINRES / RQI).
    Eigen {
        /// Solver name: `"lanczos"`, `"minres"`, or `"rqi"`.
        solver: &'static str,
        /// Operator dimension.
        n: usize,
        /// Iterations (matvecs for Lanczos, Krylov steps for MINRES,
        /// outer iterations for RQI).
        iters: usize,
        /// Final residual norm.
        residual: f64,
    },
    /// One nested-dissection separator split.
    Separator {
        /// Dissection depth (root = 0).
        depth: usize,
        /// Vertices of the dissected subgraph.
        vertices: usize,
        /// Vertex-separator size.
        separator: usize,
    },
    /// One direct k-way greedy sweep.
    KwaySweep {
        /// Sweeps over the boundary.
        passes: usize,
        /// Vertex moves committed.
        moves: usize,
        /// Edge-cut before the sweep.
        cut_before: i64,
        /// Edge-cut after the sweep.
        cut_after: i64,
    },
    /// One propose/commit round of the parallel k-way refinement kernel.
    KwayRound {
        /// Round index within the sweep (0-based).
        round: usize,
        /// Vertices that proposed a move this round.
        proposals: usize,
        /// Proposals dropped because an adjacent proposer had a higher
        /// `(gain, rank)` key.
        conflicts: usize,
        /// Round winners rejected by the per-part weight budget.
        balance_rejects: usize,
        /// Moves committed this round.
        moves: usize,
    },
}

impl Event {
    /// The JSONL `"type"` discriminator of this event.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::CoarsenLevel { .. } => "coarsen_level",
            Event::RefineLevel { .. } => "refine_level",
            Event::Eigen { .. } => "eigen",
            Event::Separator { .. } => "separator",
            Event::KwaySweep { .. } => "kway_sweep",
            Event::KwayRound { .. } => "kway_round",
        }
    }

    fn write_json(&self, o: &mut json::JsonObj) {
        o.field_str("type", self.kind());
        match *self {
            Event::CoarsenLevel {
                branch,
                level,
                vertices,
                edges,
                total_vwgt,
                edge_wgt,
                contracted_wgt,
                matched_fraction,
                scheme,
            } => {
                o.field_u64("branch", branch);
                o.field_usize("level", level);
                o.field_usize("vertices", vertices);
                o.field_usize("edges", edges);
                o.field_i64("total_vwgt", total_vwgt);
                o.field_i64("edge_wgt", edge_wgt);
                o.field_i64("contracted_wgt", contracted_wgt);
                o.field_f64("matched_fraction", matched_fraction);
                o.field_str("scheme", scheme);
            }
            Event::RefineLevel {
                branch,
                level,
                vertices,
                boundary,
                passes,
                moves,
                rollbacks,
                early_exit_triggers,
                cut_before,
                cut_after,
                policy,
            } => {
                o.field_u64("branch", branch);
                o.field_usize("level", level);
                o.field_usize("vertices", vertices);
                o.field_usize("boundary", boundary);
                o.field_usize("passes", passes);
                o.field_usize("moves", moves);
                o.field_usize("rollbacks", rollbacks);
                o.field_usize("early_exit_triggers", early_exit_triggers);
                o.field_i64("cut_before", cut_before);
                o.field_i64("cut_after", cut_after);
                o.field_str("policy", policy);
            }
            Event::Eigen {
                solver,
                n,
                iters,
                residual,
            } => {
                o.field_str("solver", solver);
                o.field_usize("n", n);
                o.field_usize("iters", iters);
                o.field_f64("residual", residual);
            }
            Event::Separator {
                depth,
                vertices,
                separator,
            } => {
                o.field_usize("depth", depth);
                o.field_usize("vertices", vertices);
                o.field_usize("separator", separator);
            }
            Event::KwaySweep {
                passes,
                moves,
                cut_before,
                cut_after,
            } => {
                o.field_usize("passes", passes);
                o.field_usize("moves", moves);
                o.field_i64("cut_before", cut_before);
                o.field_i64("cut_after", cut_after);
            }
            Event::KwayRound {
                round,
                proposals,
                conflicts,
                balance_rejects,
                moves,
            } => {
                o.field_usize("round", round);
                o.field_usize("proposals", proposals);
                o.field_usize("conflicts", conflicts);
                o.field_usize("balance_rejects", balance_rejects);
                o.field_usize("moves", moves);
            }
        }
    }
}

/// Accumulated time under one span path.
#[derive(Clone, Copy, Debug, Default)]
pub struct SpanStat {
    /// Total accumulated wall-clock time.
    pub total: Duration,
    /// Number of recordings.
    pub calls: u64,
}

#[derive(Debug, Default)]
struct Inner {
    meta: Vec<(String, String)>,
    spans: BTreeMap<String, SpanStat>,
    counters: BTreeMap<String, u64>,
    events: Vec<Event>,
}

/// The shared collector behind an enabled [`Trace`].
#[derive(Debug, Default)]
pub struct Collector {
    inner: Mutex<Inner>,
}

/// A cheap, cloneable tracing handle. Disabled handles carry no collector
/// and make every method a no-op.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    sink: Option<Arc<Collector>>,
}

impl Trace {
    /// A no-op handle: nothing is recorded, no timestamps are taken.
    pub fn disabled() -> Self {
        Self { sink: None }
    }

    /// A recording handle backed by a fresh collector.
    pub fn enabled() -> Self {
        Self {
            sink: Some(Arc::new(Collector::default())),
        }
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Start a timer; returns a token that is `None` when disabled (so no
    /// `Instant::now()` is taken). Stop with [`Trace::stop`].
    #[inline]
    pub fn start(&self) -> Timer {
        Timer(self.sink.as_ref().map(|_| Instant::now()))
    }

    /// Stop `timer`, accumulating its elapsed time under `path`.
    #[inline]
    pub fn stop(&self, timer: Timer, path: &str) {
        if let (Some(t0), Some(_)) = (timer.0, self.sink.as_ref()) {
            self.add_time(path, t0.elapsed());
        }
    }

    /// Accumulate an externally measured duration under `path`
    /// (`/`-separated components form the summary tree).
    pub fn add_time(&self, path: &str, d: Duration) {
        if let Some(c) = &self.sink {
            let mut inner = lock(&c.inner);
            let s = inner.spans.entry(path.to_string()).or_default();
            s.total += d;
            s.calls += 1;
        }
    }

    /// Record a typed event.
    #[inline]
    pub fn record(&self, make: impl FnOnce() -> Event) {
        if let Some(c) = &self.sink {
            let ev = make();
            lock(&c.inner).events.push(ev);
        }
    }

    /// Add `delta` to the named counter.
    pub fn count(&self, name: &str, delta: u64) {
        if delta == 0 {
            return;
        }
        if let Some(c) = &self.sink {
            *lock(&c.inner).counters.entry(name.to_string()).or_default() += delta;
        }
    }

    /// Attach free-form metadata (duplicate keys keep the latest value).
    pub fn set_meta(&self, key: &str, value: impl std::fmt::Display) {
        if let Some(c) = &self.sink {
            let mut inner = lock(&c.inner);
            let value = value.to_string();
            if let Some(slot) = inner.meta.iter_mut().find(|(k, _)| k == key) {
                slot.1 = value;
            } else {
                inner.meta.push((key.to_string(), value));
            }
        }
    }

    /// Total accumulated time under `path`, if any was recorded.
    pub fn span_total(&self, path: &str) -> Option<Duration> {
        let c = self.sink.as_ref()?;
        let inner = lock(&c.inner);
        inner.spans.get(path).map(|s| s.total)
    }

    /// Snapshot of all recorded events.
    pub fn events(&self) -> Vec<Event> {
        match &self.sink {
            Some(c) => lock(&c.inner).events.clone(),
            None => Vec::new(),
        }
    }

    /// Snapshot of one counter (0 if never counted).
    pub fn counter(&self, name: &str) -> u64 {
        match &self.sink {
            Some(c) => lock(&c.inner).counters.get(name).copied().unwrap_or(0),
            None => 0,
        }
    }

    /// Human-readable summary: metadata header, the span tree (parents
    /// aggregate children), counters, and per-event-kind tallies. `None`
    /// when disabled.
    pub fn summary_tree(&self) -> Option<String> {
        let c = self.sink.as_ref()?;
        let inner = lock(&c.inner);
        let mut out = String::new();
        for (k, v) in &inner.meta {
            out.push_str(&format!("# {k} = {v}\n"));
        }
        let tree = SpanTree::build(&inner.spans);
        tree.render(&mut out);
        if !inner.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, value) in &inner.counters {
                out.push_str(&format!("  {name:<28} {value}\n"));
            }
        }
        if !inner.events.is_empty() {
            let mut kinds: BTreeMap<&'static str, usize> = BTreeMap::new();
            for e in &inner.events {
                *kinds.entry(e.kind()).or_default() += 1;
            }
            out.push_str("events:\n");
            for (kind, count) in kinds {
                out.push_str(&format!("  {kind:<28} {count}\n"));
            }
        }
        Some(out)
    }

    /// JSONL export: one `meta` record, one record per span / counter /
    /// event. `None` when disabled.
    pub fn to_jsonl(&self) -> Option<String> {
        let c = self.sink.as_ref()?;
        let inner = lock(&c.inner);
        let mut out = String::new();
        let mut meta = json::JsonObj::new();
        meta.field_str("type", "meta");
        for (k, v) in &inner.meta {
            meta.field_str(k, v);
        }
        out.push_str(&meta.finish());
        out.push('\n');
        for (path, stat) in &inner.spans {
            let mut o = json::JsonObj::new();
            o.field_str("type", "span");
            o.field_str("path", path);
            o.field_f64("secs", stat.total.as_secs_f64());
            o.field_u64("calls", stat.calls);
            out.push_str(&o.finish());
            out.push('\n');
        }
        for (name, value) in &inner.counters {
            let mut o = json::JsonObj::new();
            o.field_str("type", "counter");
            o.field_str("name", name);
            o.field_u64("value", *value);
            out.push_str(&o.finish());
            out.push('\n');
        }
        for e in &inner.events {
            let mut o = json::JsonObj::new();
            e.write_json(&mut o);
            out.push_str(&o.finish());
            out.push('\n');
        }
        Some(out)
    }
}

/// Token from [`Trace::start`]; `None` inside when the trace is disabled.
#[must_use = "stop the timer with Trace::stop to record its elapsed time"]
#[derive(Debug)]
pub struct Timer(Option<Instant>);

/// Span tree built from `/`-separated paths; parents aggregate children.
struct SpanTree {
    children: BTreeMap<String, SpanTree>,
    own: Duration,
    calls: u64,
}

impl SpanTree {
    fn new() -> Self {
        Self {
            children: BTreeMap::new(),
            own: Duration::ZERO,
            calls: 0,
        }
    }

    fn build(spans: &BTreeMap<String, SpanStat>) -> Self {
        let mut root = SpanTree::new();
        for (path, stat) in spans {
            let mut node = &mut root;
            for comp in path.split('/') {
                node = node
                    .children
                    .entry(comp.to_string())
                    .or_insert_with(SpanTree::new);
            }
            node.own += stat.total;
            node.calls += stat.calls;
        }
        root
    }

    /// Total time of this node: own plus all descendants.
    fn total(&self) -> Duration {
        self.own + self.children.values().map(|c| c.total()).sum::<Duration>()
    }

    fn render(&self, out: &mut String) {
        if self.children.is_empty() {
            return;
        }
        out.push_str("phase tree (wall-clock):\n");
        let grand: Duration = self.children.values().map(|c| c.total()).sum();
        for (name, node) in &self.children {
            node.render_rec(name, 1, grand, out);
        }
        out.push_str(&format!(
            "  {:<34} {:>10.4}s\n",
            "total",
            grand.as_secs_f64()
        ));
    }

    fn render_rec(&self, name: &str, depth: usize, grand: Duration, out: &mut String) {
        let total = self.total();
        let pct = if grand > Duration::ZERO {
            100.0 * total.as_secs_f64() / grand.as_secs_f64()
        } else {
            0.0
        };
        let indent = "  ".repeat(depth);
        let label = format!("{indent}{name}");
        let calls = if self.calls > 0 {
            format!("  ({} calls)", self.calls)
        } else {
            String::new()
        };
        out.push_str(&format!(
            "{label:<36} {:>10.4}s {pct:>5.1}%{calls}\n",
            total.as_secs_f64()
        ));
        for (child_name, child) in &self.children {
            child.render_rec(child_name, depth + 1, grand, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing_and_takes_no_timestamps() {
        let t = Trace::disabled();
        assert!(!t.is_enabled());
        let timer = t.start();
        assert!(timer.0.is_none(), "disabled trace must not read the clock");
        t.stop(timer, SPAN_COARSEN);
        t.add_time(SPAN_INIT, Duration::from_secs(5));
        t.record(|| Event::Eigen {
            solver: "lanczos",
            n: 10,
            iters: 3,
            residual: 0.5,
        });
        t.count("moves", 7);
        t.set_meta("graph", "4ELT");
        assert_eq!(t.span_total(SPAN_INIT), None);
        assert!(t.events().is_empty());
        assert_eq!(t.counter("moves"), 0);
        assert!(t.summary_tree().is_none());
        assert!(t.to_jsonl().is_none());
    }

    #[test]
    fn record_closure_not_called_when_disabled() {
        let t = Trace::disabled();
        let mut called = false;
        // `record` takes FnOnce, but must not invoke it on a disabled
        // handle (the closure may compute expensive statistics).
        t.record(|| {
            called = true;
            Event::Separator {
                depth: 0,
                vertices: 0,
                separator: 0,
            }
        });
        assert!(!called);
    }

    #[test]
    fn span_nesting_reconstructs_utime_identity() {
        // UTime = ITime + RTime + PTime (paper §4.1, PhaseTimes::uncoarsen).
        let t = Trace::enabled();
        let (i, r, p) = (
            Duration::from_millis(120),
            Duration::from_millis(300),
            Duration::from_millis(45),
        );
        t.add_time(SPAN_COARSEN, Duration::from_millis(500));
        t.add_time(SPAN_INIT, i);
        t.add_time(SPAN_REFINE, r);
        t.add_time(SPAN_PROJECT, p);
        let spans = {
            let inner = t.sink.as_ref().unwrap().inner.lock().unwrap();
            inner.spans.clone()
        };
        let tree = SpanTree::build(&spans);
        let uncoarsen = tree.children.get(SPAN_UNCOARSEN).unwrap();
        assert_eq!(uncoarsen.total(), i + r + p);
        assert_eq!(
            tree.total(),
            Duration::from_millis(500) + i + r + p,
            "root total = CTime + UTime"
        );
        let text = t.summary_tree().unwrap();
        assert!(text.contains("coarsen"), "{text}");
        assert!(text.contains("uncoarsen"), "{text}");
        assert!(text.contains("refine"), "{text}");
    }

    #[test]
    fn clones_share_the_collector_across_threads() {
        let t = Trace::enabled();
        let t2 = t.clone();
        std::thread::scope(|s| {
            s.spawn(|| t2.count("moves", 5));
            t.count("moves", 3);
        });
        assert_eq!(t.counter("moves"), 8);
    }

    #[test]
    fn jsonl_is_parseable_and_complete() {
        let t = Trace::enabled();
        t.set_meta("graph", "gen:\"quoted\"\nname");
        t.add_time(SPAN_COARSEN, Duration::from_millis(10));
        t.count("fm_passes", 2);
        t.record(|| Event::CoarsenLevel {
            branch: 1,
            level: 0,
            vertices: 100,
            edges: 250,
            total_vwgt: 100,
            edge_wgt: 250,
            contracted_wgt: 0,
            matched_fraction: 0.92,
            scheme: "HEM",
        });
        t.record(|| Event::RefineLevel {
            branch: 1,
            level: 0,
            vertices: 100,
            boundary: 12,
            passes: 2,
            moves: 30,
            rollbacks: 4,
            early_exit_triggers: 1,
            cut_before: 40,
            cut_after: 31,
            policy: "BKLGR",
        });
        let jsonl = t.to_jsonl().unwrap();
        let mut kinds = Vec::new();
        for line in jsonl.lines() {
            let v = json::parse(line).expect(line);
            kinds.push(v.get("type").and_then(|t| t.as_str()).unwrap().to_string());
        }
        assert_eq!(
            kinds,
            ["meta", "span", "counter", "coarsen_level", "refine_level"]
        );
        let coarsen = jsonl.lines().find(|l| l.contains("coarsen_level")).unwrap();
        let v = json::parse(coarsen).unwrap();
        assert_eq!(v.get("vertices").and_then(|x| x.as_f64()), Some(100.0));
        assert_eq!(
            v.get("matched_fraction").and_then(|x| x.as_f64()),
            Some(0.92)
        );
    }

    #[test]
    fn meta_updates_in_place() {
        let t = Trace::enabled();
        t.set_meta("k", 4);
        t.set_meta("k", 8);
        let text = t.summary_tree().unwrap();
        assert!(text.contains("# k = 8"));
        assert!(!text.contains("# k = 4"));
    }

    #[test]
    fn timer_round_trip_accumulates() {
        let t = Trace::enabled();
        for _ in 0..3 {
            let timer = t.start();
            std::thread::sleep(Duration::from_millis(1));
            t.stop(timer, "phase");
        }
        let total = t.span_total("phase").unwrap();
        assert!(total >= Duration::from_millis(3));
        let inner = t.sink.as_ref().unwrap().inner.lock().unwrap();
        assert_eq!(inner.spans.get("phase").unwrap().calls, 3);
    }
}
