//! Hand-rolled JSON writing and a minimal parser.
//!
//! The workspace is zero-dependency, so JSONL export is produced by
//! [`JsonObj`] (a flat object writer with escaping) and consumed in tests
//! by [`parse`], a small recursive-descent parser covering the subset the
//! trace layer emits: objects, arrays, strings, numbers, booleans, null.

use std::collections::BTreeMap;

/// Escape `s` into a JSON string literal (including the quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format an `f64` so it round-trips as a JSON number (never NaN/inf —
/// those are emitted as null, which JSON requires).
pub fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        let s = format!("{x}");
        // `{}` prints integral floats without a dot; keep them numbers but
        // mark floatness for readability.
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

/// Incremental writer for one flat JSON object.
#[derive(Debug)]
pub struct JsonObj {
    buf: String,
    first: bool,
}

impl Default for JsonObj {
    fn default() -> Self {
        Self::new()
    }
}

impl JsonObj {
    /// Start a new object (`{`).
    pub fn new() -> Self {
        Self {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push_str(&escape(key));
        self.buf.push(':');
    }

    /// Append a string field.
    pub fn field_str(&mut self, key: &str, value: &str) {
        self.key(key);
        self.buf.push_str(&escape(value));
    }

    /// Append an unsigned integer field.
    pub fn field_u64(&mut self, key: &str, value: u64) {
        self.key(key);
        self.buf.push_str(&value.to_string());
    }

    /// Append a signed integer field.
    pub fn field_i64(&mut self, key: &str, value: i64) {
        self.key(key);
        self.buf.push_str(&value.to_string());
    }

    /// Append a `usize` field.
    pub fn field_usize(&mut self, key: &str, value: usize) {
        self.field_u64(key, value as u64);
    }

    /// Append a float field (non-finite values become `null`).
    pub fn field_f64(&mut self, key: &str, value: f64) {
        self.key(key);
        self.buf.push_str(&fmt_f64(value));
    }

    /// Append a boolean field.
    pub fn field_bool(&mut self, key: &str, value: bool) {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
    }

    /// Append a pre-serialized JSON value verbatim.
    pub fn field_raw(&mut self, key: &str, json: &str) {
        self.key(key);
        self.buf.push_str(json);
    }

    /// Close the object and return the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (key order not preserved).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object field lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse one JSON document. Returns `Err(description)` on malformed input
/// or trailing garbage.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        text,
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    /// The input document; `bytes` is its byte view, and `pos` always
    /// sits on a UTF-8 character boundary (it only ever advances past
    /// single ASCII bytes or whole chars).
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect_byte(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            // Surrogate pairs are not emitted by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|c| c as char))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar. `pos` is always on a char
                    // boundary (see the field invariant), so the checked
                    // slice never fails on input that came from a `&str`.
                    let c = self
                        .text
                        .get(self.pos..)
                        .and_then(|rest| rest.chars().next())
                        .ok_or_else(|| format!("invalid UTF-8 at byte {}", self.pos))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        // Every byte the scan accepted is ASCII, so the slice is a str.
        let text = self
            .text
            .get(start..self.pos)
            .ok_or_else(|| format!("invalid number at byte {start}"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_escapes_and_orders_fields() {
        let mut o = JsonObj::new();
        o.field_str("name", "a\"b\\c\nd\te");
        o.field_u64("count", 42);
        o.field_i64("delta", -7);
        o.field_f64("ratio", 0.5);
        o.field_f64("nan", f64::NAN);
        o.field_bool("ok", true);
        let s = o.finish();
        assert_eq!(
            s,
            r#"{"name":"a\"b\\c\nd\te","count":42,"delta":-7,"ratio":0.5,"nan":null,"ok":true}"#
        );
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        assert_eq!(fmt_f64(3.0), "3.0");
        assert_eq!(fmt_f64(0.25), "0.25");
        assert_eq!(fmt_f64(-2.0), "-2.0");
    }

    #[test]
    fn round_trip_through_parser() {
        let mut o = JsonObj::new();
        o.field_str("graph", "gen:GRID 64 64");
        o.field_f64("secs", 1.25);
        o.field_u64("calls", 3);
        o.field_raw("parts", "[1,2,3]");
        let text = o.finish();
        let v = parse(&text).unwrap();
        assert_eq!(
            v.get("graph").and_then(Value::as_str),
            Some("gen:GRID 64 64")
        );
        assert_eq!(v.get("secs").and_then(Value::as_f64), Some(1.25));
        assert_eq!(v.get("calls").and_then(Value::as_f64), Some(3.0));
        assert_eq!(
            v.get("parts").and_then(Value::as_arr).map(|a| a.len()),
            Some(3)
        );
    }

    #[test]
    fn parser_handles_nesting_ws_and_escapes() {
        let v = parse(" { \"a\" : [ 1 , {\"b\": \"x\\u0041y\"} , null , true ] } ").unwrap();
        let arr = v.get("a").and_then(Value::as_arr).unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].get("b").and_then(Value::as_str), Some("xAy"));
        assert_eq!(arr[2], Value::Null);
        assert_eq!(arr[3], Value::Bool(true));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("{} extra").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
    }
}
