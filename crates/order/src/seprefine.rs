//! FM-style vertex-separator refinement.
//!
//! The minimum-vertex-cover separator from [`crate::vcover`] is optimal
//! *for the given edge separator*, but a different nearby edge separator
//! may admit a smaller vertex separator. This pass improves the separator
//! directly: moving a separator vertex `v` into side A removes `v` from S
//! but must pull `v`'s B-side neighbors into S (and vice versa), giving
//! the classic gain `size(v) − Σ size(B-neighbors of v not already in S)`.
//! Passes run with rollback to the best prefix, exactly like the KL engine
//! in `mlgp-part` — this is the separator-space analogue the authors'
//! companion report describes for `onmetis`.

use crate::vcover::{SEPARATOR, SIDE_A, SIDE_B};
use mlgp_graph::{CsrGraph, Vid, Wgt};

/// Options for separator refinement.
#[derive(Clone, Copy, Debug)]
pub struct SepRefineOptions {
    /// Maximum refinement passes.
    pub max_passes: usize,
    /// Abort a pass after this many consecutive non-improving moves.
    pub early_exit: usize,
    /// Allowed side imbalance: `max(|A|, |B|) ≤ imbalance × (|A|+|B|)/2`
    /// (weights, not counts).
    pub imbalance: f64,
}

impl Default for SepRefineOptions {
    fn default() -> Self {
        Self {
            max_passes: 4,
            early_exit: 40,
            imbalance: 1.10,
        }
    }
}

/// Total vertex weight of the separator under `labels`.
pub fn separator_weight(g: &CsrGraph, labels: &[u8]) -> Wgt {
    (0..g.n())
        .filter(|&v| labels[v] == SEPARATOR)
        .map(|v| g.vwgt()[v])
        .sum()
}

/// Refine a separator labeling in place; returns the final separator
/// weight. The labeling must be valid (no A-B edge) on entry and stays
/// valid on exit.
pub fn refine_separator(g: &CsrGraph, labels: &mut [u8], opts: &SepRefineOptions) -> Wgt {
    assert_eq!(labels.len(), g.n());
    let mut side_w = [0 as Wgt; 3];
    for v in 0..g.n() {
        side_w[labels[v] as usize] += g.vwgt()[v];
    }
    for _ in 0..opts.max_passes.max(1) {
        if !one_pass(g, labels, &mut side_w, opts) {
            break;
        }
    }
    side_w[SEPARATOR as usize]
}

/// One pass of greedy separator moves with rollback. Returns whether the
/// separator weight decreased.
fn one_pass(
    g: &CsrGraph,
    labels: &mut [u8],
    side_w: &mut [Wgt; 3],
    opts: &SepRefineOptions,
) -> bool {
    let n = g.n();
    let start_sep = side_w[SEPARATOR as usize];
    let half = (side_w[SIDE_A as usize] + side_w[SIDE_B as usize] + start_sep) as f64 / 2.0;
    let side_ub = (half * opts.imbalance).ceil() as Wgt;
    let mut moved = vec![false; n];
    // Move log for rollback: (vertex, previous labels of changed vertices).
    let mut log: Vec<(Vid, u8, Vec<Vid>)> = Vec::new();
    let mut best_len = 0usize;
    let mut best_sep = start_sep;
    let mut bad = 0usize;
    loop {
        // Pick the best separator move greedily (separators are small, a
        // linear scan per move is cheap relative to the bisection).
        let mut best_move: Option<(Wgt, Vid, u8)> = None;
        for v in 0..n as Vid {
            if labels[v as usize] != SEPARATOR || moved[v as usize] {
                continue;
            }
            for side in [SIDE_A, SIDE_B] {
                let other = 1 - side;
                // Weight pulled into S: other-side neighbors not in S.
                let pulled: Wgt = g
                    .neighbors(v)
                    .iter()
                    .filter(|&&u| labels[u as usize] == other)
                    .map(|&u| g.vwgt()[u as usize])
                    .sum();
                let gain = g.vwgt()[v as usize] - pulled;
                if side_w[side as usize] + g.vwgt()[v as usize] > side_ub {
                    continue;
                }
                if best_move.is_none_or(|(bg, _, _)| gain > bg) {
                    best_move = Some((gain, v, side));
                }
            }
        }
        let Some((_, v, side)) = best_move else { break };
        let other = 1 - side;
        // Apply: v -> side; other-side neighbors -> S.
        let mut pulled: Vec<Vid> = Vec::new();
        labels[v as usize] = side;
        side_w[SEPARATOR as usize] -= g.vwgt()[v as usize];
        side_w[side as usize] += g.vwgt()[v as usize];
        for &u in g.neighbors(v) {
            if labels[u as usize] == other {
                labels[u as usize] = SEPARATOR;
                side_w[other as usize] -= g.vwgt()[u as usize];
                side_w[SEPARATOR as usize] += g.vwgt()[u as usize];
                pulled.push(u);
            }
        }
        moved[v as usize] = true;
        log.push((v, other, pulled));
        if side_w[SEPARATOR as usize] < best_sep {
            best_sep = side_w[SEPARATOR as usize];
            best_len = log.len();
            bad = 0;
        } else {
            bad += 1;
            if bad >= opts.early_exit {
                break;
            }
        }
    }
    // Roll back past the best prefix.
    while log.len() > best_len {
        let Some((v, other, pulled)) = log.pop() else {
            break; // len > best_len >= 0 guarantees a popped entry
        };
        let side = labels[v as usize];
        for u in pulled {
            labels[u as usize] = other;
            side_w[SEPARATOR as usize] -= g.vwgt()[u as usize];
            side_w[other as usize] += g.vwgt()[u as usize];
        }
        labels[v as usize] = SEPARATOR;
        side_w[side as usize] -= g.vwgt()[v as usize];
        side_w[SEPARATOR as usize] += g.vwgt()[v as usize];
    }
    best_sep < start_sep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vcover::{separator_is_valid, vertex_separator};
    use mlgp_graph::generators::{grid2d, tri_mesh2d};
    use mlgp_part::{bisect, MlConfig};

    fn checked_refine(g: &CsrGraph, labels: &mut [u8]) -> (Wgt, Wgt) {
        let before = separator_weight(g, labels);
        let after = refine_separator(g, labels, &SepRefineOptions::default());
        assert!(separator_is_valid(g, labels), "separator invalidated");
        assert_eq!(after, separator_weight(g, labels));
        (before, after)
    }

    #[test]
    fn never_worsens_an_optimal_separator() {
        // Column separator of a grid is optimal; refinement must keep it.
        let g = grid2d(8, 8);
        let part: Vec<u8> = (0..64).map(|i| if i % 8 < 4 { 0 } else { 1 }).collect();
        let mut labels = vertex_separator(&g, &part);
        let (before, after) = checked_refine(&g, &mut labels);
        assert_eq!(before, 8);
        assert!(after <= before);
    }

    #[test]
    fn improves_a_jagged_separator() {
        // Build a deliberately bad labeling: a thick double-column
        // separator; refinement should thin it toward one column.
        let g = grid2d(10, 10);
        let mut labels: Vec<u8> = (0..100)
            .map(|i| match i % 10 {
                0..=3 => SIDE_A,
                4 | 5 => SEPARATOR,
                _ => SIDE_B,
            })
            .collect();
        assert!(separator_is_valid(&g, &labels));
        let (before, after) = checked_refine(&g, &mut labels);
        assert_eq!(before, 20);
        assert!(after <= 12, "after {after}");
    }

    #[test]
    fn refines_real_bisection_separators() {
        let g = tri_mesh2d(25, 25, 9);
        let r = bisect(&g, &MlConfig::default());
        let mut labels = vertex_separator(&g, &r.part);
        let (before, after) = checked_refine(&g, &mut labels);
        assert!(after <= before, "{after} > {before}");
        // Sides stay within the balance envelope.
        let wa: Wgt = (0..g.n())
            .filter(|&v| labels[v] == SIDE_A)
            .map(|v| g.vwgt()[v])
            .sum();
        let wb: Wgt = (0..g.n())
            .filter(|&v| labels[v] == SIDE_B)
            .map(|v| g.vwgt()[v])
            .sum();
        let half = g.total_vwgt() as f64 / 2.0;
        assert!(
            wa as f64 <= 1.12 * half && wb as f64 <= 1.12 * half,
            "{wa} {wb}"
        );
    }

    #[test]
    fn empty_separator_is_fixed_point() {
        let g = grid2d(4, 2);
        let mut labels = vec![SIDE_A; 8];
        let after = refine_separator(&g, &mut labels, &SepRefineOptions::default());
        assert_eq!(after, 0);
        assert!(labels.iter().all(|&l| l == SIDE_A));
    }
}
