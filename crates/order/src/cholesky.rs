//! Numeric sparse LDLᵀ factorization and triangular solves.
//!
//! The paper's motivating application (§1) is the direct solution of
//! sparse SPD systems, where the ordering determines fill and operation
//! count. This module closes that loop numerically: an up-looking LDLᵀ
//! factorization (Davis's classic algorithm — row patterns from the
//! elimination tree, columns of `L` built incrementally) over the matrix
//! `A = L(G) + σI` (shifted graph Laplacian, SPD for `σ > 0`), plus
//! forward/backward solves. Its fill agrees *exactly* with the symbolic
//! analysis in [`crate::etree`], which the tests assert — the symbolic
//! opcounts reported in Figure 5 are the flops this code would spend.

use crate::etree::elimination_tree;
use mlgp_graph::{CsrGraph, Permutation, Vid};

/// An LDLᵀ factorization of `P (L(G) + σI) Pᵀ`.
#[derive(Debug)]
pub struct LdlFactor {
    n: usize,
    /// Diagonal of `D`.
    d: Vec<f64>,
    /// Columns of unit-lower-triangular `L` (strictly below-diagonal
    /// entries, rows ascending).
    cols: Vec<Vec<(u32, f64)>>,
    perm: Permutation,
}

/// Factor the shifted Laplacian of `g` under the ordering `perm`.
///
/// # Panics
/// Panics if `shift <= 0` (the pure Laplacian is singular) or if a pivot
/// degenerates (cannot happen for `shift > 0` in exact arithmetic; a
/// safeguard against severe cancellation).
pub fn factor_laplacian(g: &CsrGraph, shift: f64, perm: &Permutation) -> LdlFactor {
    assert!(shift > 0.0, "shift must be positive for an SPD system");
    assert_eq!(g.n(), perm.len());
    let n = g.n();
    let parent = elimination_tree(g, perm);
    let mut d = vec![0.0f64; n];
    let mut cols: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
    // Dense scratch row + pattern collection via etree climbs.
    let mut x = vec![0.0f64; n];
    let mut marker = vec![u32::MAX; n];
    let mut pattern: Vec<u32> = Vec::new();
    for i in 0..n as u32 {
        let v = perm.iperm()[i as usize];
        // Load row i of A (lower triangle) into the scratch.
        pattern.clear();
        marker[i as usize] = i;
        let mut dii = g.weighted_degree(v) as f64 + shift;
        for (u, w) in g.adj(v) {
            let j = perm.perm()[u as usize];
            if j < i {
                x[j as usize] = -(w as f64);
                // Climb to collect the fill pattern of row i.
                let mut k = j;
                while marker[k as usize] != i {
                    marker[k as usize] = i;
                    pattern.push(k);
                    let pk = parent[k as usize];
                    if pk == u32::MAX {
                        break;
                    }
                    k = pk;
                }
            }
        }
        // Columns must be eliminated in ascending order.
        pattern.sort_unstable();
        for &j in &pattern {
            let yj = x[j as usize];
            x[j as usize] = 0.0;
            let lij = yj / d[j as usize];
            // x[k] -= L(k,j) * yj for every stored row k of column j
            // (all k < i by construction).
            for &(k, lkj) in &cols[j as usize] {
                x[k as usize] -= lkj * yj;
            }
            dii -= lij * yj;
            cols[j as usize].push((i, lij));
        }
        assert!(dii > 0.0, "pivot collapsed at step {i}: {dii}");
        d[i as usize] = dii;
    }
    LdlFactor {
        n,
        d,
        cols,
        perm: perm.clone(),
    }
}

impl LdlFactor {
    /// Nonzeros of `L` including the diagonal (comparable to
    /// [`crate::etree::SymbolicStats::nnz_l`]).
    pub fn nnz_l(&self) -> u64 {
        self.n as u64 + self.cols.iter().map(|c| c.len() as u64).sum::<u64>()
    }

    /// Dimension of the factored system.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Solve `(L(G) + σI) x = b`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n);
        // Permute b into elimination order.
        let mut y: Vec<f64> = (0..self.n)
            .map(|j| b[self.perm.iperm()[j] as usize])
            .collect();
        // Forward: L y' = y (unit diagonal, column-oriented).
        for j in 0..self.n {
            let yj = y[j];
            for &(k, lkj) in &self.cols[j] {
                y[k as usize] -= lkj * yj;
            }
        }
        // Diagonal: D z = y'.
        for (yj, dj) in y.iter_mut().zip(&self.d) {
            *yj /= dj;
        }
        // Backward: Lᵀ x' = z.
        for j in (0..self.n).rev() {
            let mut acc = y[j];
            for &(k, lkj) in &self.cols[j] {
                acc -= lkj * y[k as usize];
            }
            y[j] = acc;
        }
        // Un-permute.
        let mut out = vec![0.0; self.n];
        for j in 0..self.n {
            out[self.perm.iperm()[j] as usize] = y[j];
        }
        out
    }
}

/// Apply `y = (L(G) + σI) x` (for residual checks).
pub fn apply_shifted_laplacian(g: &CsrGraph, shift: f64, x: &[f64]) -> Vec<f64> {
    let n = g.n();
    assert_eq!(x.len(), n);
    let mut y = vec![0.0; n];
    for v in 0..n as Vid {
        let mut acc = (g.weighted_degree(v) as f64 + shift) * x[v as usize];
        for (u, w) in g.adj(v) {
            acc -= w as f64 * x[u as usize];
        }
        y[v as usize] = acc;
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::etree::analyze_ordering;
    use crate::mmd::mmd_order;
    use crate::nested::mlnd_order;
    use mlgp_graph::generators::{grid2d, stiffness3d, tri_mesh2d};
    use mlgp_graph::GraphBuilder;

    fn residual(g: &CsrGraph, shift: f64, x: &[f64], b: &[f64]) -> f64 {
        let ax = apply_shifted_laplacian(g, shift, x);
        ax.iter()
            .zip(b)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }

    #[test]
    fn solves_small_system_exactly() {
        // Path of 3: A = [[1+s,-1,0],[-1,2+s,-1],[0,-1,1+s]], s = 1.
        let mut bld = GraphBuilder::new(3);
        bld.add_edge(0, 1).add_edge(1, 2);
        let g = bld.build();
        let f = factor_laplacian(&g, 1.0, &Permutation::identity(3));
        let b = vec![1.0, 0.0, -1.0];
        let x = f.solve(&b);
        assert!(residual(&g, 1.0, &x, &b) < 1e-12);
    }

    #[test]
    fn numeric_fill_matches_symbolic_exactly() {
        let g = tri_mesh2d(12, 12, 4);
        for p in [
            Permutation::identity(g.n()),
            mmd_order(&g),
            mlnd_order(&g),
            Permutation::random(g.n(), &mut mlgp_graph::rng::seeded(3)),
        ] {
            let symbolic = analyze_ordering(&g, &p);
            let numeric = factor_laplacian(&g, 0.5, &p);
            assert_eq!(numeric.nnz_l(), symbolic.nnz_l, "fill mismatch");
        }
    }

    #[test]
    fn solve_accuracy_on_meshes_with_all_orderings() {
        let g = grid2d(15, 13);
        let b: Vec<f64> = (0..g.n()).map(|i| ((i * 31 % 17) as f64) - 8.0).collect();
        for p in [Permutation::identity(g.n()), mmd_order(&g), mlnd_order(&g)] {
            let f = factor_laplacian(&g, 1e-3, &p);
            let x = f.solve(&b);
            let bnorm = b.iter().map(|v| v * v).sum::<f64>().sqrt();
            assert!(
                residual(&g, 1e-3, &x, &b) < 1e-8 * bnorm,
                "residual too large"
            );
        }
    }

    #[test]
    fn good_orderings_produce_less_fill() {
        let g = stiffness3d(7, 7, 7);
        let nat = factor_laplacian(&g, 1.0, &Permutation::identity(g.n())).nnz_l();
        let nd = factor_laplacian(&g, 1.0, &mlnd_order(&g)).nnz_l();
        assert!(nd < nat, "MLND {nd} vs natural {nat}");
    }

    #[test]
    #[should_panic(expected = "shift must be positive")]
    fn rejects_singular_system() {
        let mut bld = GraphBuilder::new(2);
        bld.add_edge(0, 1);
        let g = bld.build();
        factor_laplacian(&g, 0.0, &Permutation::identity(2));
    }

    #[test]
    fn weighted_edges_are_respected() {
        let mut bld = GraphBuilder::new(2);
        bld.add_weighted_edge(0, 1, 5);
        let g = bld.build();
        // A = [[5+2, -5], [-5, 5+2]]; solve A x = [2, 9].
        let f = factor_laplacian(&g, 2.0, &Permutation::identity(2));
        let x = f.solve(&[2.0, 9.0]);
        assert!(residual(&g, 2.0, &x, &[2.0, 9.0]) < 1e-12);
    }
}
