//! # mlgp-order
//!
//! Fill-reducing sparse matrix orderings and their evaluation (§4.3 of the
//! paper): multilevel nested dissection (MLND, the contribution), spectral
//! nested dissection (SND) and multiple minimum degree (MMD) as baselines,
//! minimum-vertex-cover separators (Hopcroft-Karp + König), and symbolic
//! Cholesky analysis (elimination trees, exact column counts, operation
//! counts, tree height).
//!
//! ```
//! use mlgp_order::{analyze_ordering, mlnd_order, mmd_order};
//! let g = mlgp_graph::generators::stiffness3d(8, 8, 8);
//! let nd = analyze_ordering(&g, &mlnd_order(&g));
//! let md = analyze_ordering(&g, &mmd_order(&g));
//! // Both fill-reducing orderings beat the natural order by a wide margin;
//! // nested dissection additionally flattens the elimination tree.
//! let nat = analyze_ordering(&g, &mlgp_graph::Permutation::identity(g.n()));
//! assert!(nd.opcount < nat.opcount && md.opcount < nat.opcount);
//! assert!(nd.height < md.height);
//! ```

pub mod cholesky;
pub mod etree;
pub mod mmd;
pub mod nested;
pub mod seprefine;
pub mod vcover;

pub use cholesky::{apply_shifted_laplacian, factor_laplacian, LdlFactor};
pub use etree::{analyze_ordering, column_counts, elimination_tree, etree_height, SymbolicStats};
pub use mmd::mmd_order;
pub use nested::{
    mlnd_order, nested_dissection, nested_dissection_traced, snd_order, NdBisector, NdConfig,
};
pub use seprefine::{refine_separator, separator_weight, SepRefineOptions};
pub use vcover::{
    hopcroft_karp, konig_cover, separator_is_valid, vertex_separator, SEPARATOR, SIDE_A, SIDE_B,
};
