//! Multiple Minimum Degree ordering (Liu 1985) — the serial fill-reducing
//! baseline of §4.3.
//!
//! Implemented on a quotient graph: eliminated vertices become *elements*
//! whose boundary lists stand in for the clique their elimination would
//! create. The classic optimizations are included:
//!
//! * **external degree**: a supernode's own constituents are not counted;
//! * **mass elimination / indistinguishable nodes**: vertices with
//!   identical quotient-graph adjacency are merged into supernodes and
//!   eliminated together;
//! * **multiple elimination**: an independent set of minimum-degree nodes
//!   is eliminated per round before any degree is recomputed;
//! * **element absorption**: elements adjacent to a pivot are folded into
//!   the new element, keeping lists short;
//! * degrees are maintained with the **AMD-style bound** (Amestoy-Davis-
//!   Duff): exact for nodes adjacent to at most two elements, a tight
//!   upper bound otherwise — the standard tractable refinement of Liu's
//!   exact external degree (see DESIGN.md §2).

use mlgp_graph::{CsrGraph, Permutation, Vid};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    /// Uneliminated supernode representative.
    Alive,
    /// Merged into an indistinguishable supernode (its representative will
    /// emit it at elimination time).
    Absorbed,
    /// Eliminated; its id names a live element.
    Element,
    /// Eliminated element folded into a newer element.
    DeadElement,
}

struct Mmd<'g> {
    g: &'g CsrGraph,
    status: Vec<Status>,
    /// Node-node adjacency (lazily pruned).
    nadj: Vec<Vec<u32>>,
    /// Node-element adjacency (lazily pruned).
    eadj: Vec<Vec<u32>>,
    /// Element boundary node lists (lazily pruned).
    enodes: Vec<Vec<u32>>,
    /// Supernode sizes (valid for Alive representatives).
    size: Vec<u32>,
    /// Constituents absorbed into each representative.
    members: Vec<Vec<u32>>,
    /// Current external degree of Alive representatives.
    degree: Vec<u64>,
    /// Lazy min-heap of (degree, vertex).
    heap: BinaryHeap<Reverse<(u64, u32)>>,
    /// Generation markers for reach-set deduplication.
    marker: Vec<u64>,
    stamp: u64,
    /// Generation markers for per-round staleness.
    stale: Vec<u64>,
    round: u64,
    /// Elimination output (original vertex ids, elimination order).
    order: Vec<Vid>,
}

impl<'g> Mmd<'g> {
    fn new(g: &'g CsrGraph) -> Self {
        let n = g.n();
        let nadj: Vec<Vec<u32>> = (0..n as Vid).map(|v| g.neighbors(v).to_vec()).collect();
        let degree: Vec<u64> = (0..n as Vid).map(|v| g.degree(v) as u64).collect();
        let mut heap = BinaryHeap::with_capacity(n);
        for v in 0..n as u32 {
            heap.push(Reverse((degree[v as usize], v)));
        }
        Self {
            g,
            status: vec![Status::Alive; n],
            nadj,
            eadj: vec![Vec::new(); n],
            enodes: vec![Vec::new(); n],
            size: vec![1; n],
            members: vec![Vec::new(); n],
            degree,
            heap,
            marker: vec![0; n],
            stamp: 0,
            stale: vec![0; n],
            round: 0,
            order: Vec::with_capacity(n),
        }
    }

    #[inline]
    fn alive(&self, v: u32) -> bool {
        self.status[v as usize] == Status::Alive
    }

    #[inline]
    fn mark(&mut self, v: u32) -> bool {
        if self.marker[v as usize] == self.stamp {
            false
        } else {
            self.marker[v as usize] = self.stamp;
            true
        }
    }

    /// Collect the reachable set of `v` (alive representatives adjacent via
    /// node edges or shared elements), pruning dead entries from the lists
    /// it walks. `v` itself is marked but not returned.
    fn reach(&mut self, v: u32) -> Vec<u32> {
        self.stamp += 1;
        self.marker[v as usize] = self.stamp;
        let mut out = Vec::new();
        let mut nlist = std::mem::take(&mut self.nadj[v as usize]);
        nlist.retain(|&u| self.status[u as usize] == Status::Alive);
        for &u in &nlist {
            if self.mark(u) {
                out.push(u);
            }
        }
        self.nadj[v as usize] = nlist;
        let mut elist = std::mem::take(&mut self.eadj[v as usize]);
        elist.retain(|&e| self.status[e as usize] == Status::Element);
        for &e in &elist {
            let mut nodes = std::mem::take(&mut self.enodes[e as usize]);
            nodes.retain(|&u| self.status[u as usize] == Status::Alive);
            for &u in &nodes {
                if self.mark(u) {
                    out.push(u);
                }
            }
            self.enodes[e as usize] = nodes;
        }
        self.eadj[v as usize] = elist;
        out
    }

    /// Eliminate pivot `p`: create element `p` whose boundary is `Reach(p)`,
    /// absorb `p`'s adjacent elements, and prune newly redundant node edges.
    /// Returns the reach set (the nodes whose degrees became stale).
    fn eliminate(&mut self, p: u32) -> Vec<u32> {
        debug_assert!(self.alive(p));
        self.order.push(p);
        let members = std::mem::take(&mut self.members[p as usize]);
        self.order.extend(members.iter().copied());
        let reach = self.reach(p);
        // Absorb adjacent elements: their boundary ⊆ reach ∪ {p}.
        let elist = std::mem::take(&mut self.eadj[p as usize]);
        for e in elist {
            if self.status[e as usize] == Status::Element {
                self.status[e as usize] = Status::DeadElement;
                self.enodes[e as usize] = Vec::new();
            }
        }
        self.status[p as usize] = Status::Element;
        self.nadj[p as usize] = Vec::new();
        // The reach set is still marked from `reach(p)`: node-node edges
        // between reach members are now covered by element p — drop them.
        let stamp = self.stamp;
        for &u in &reach {
            self.eadj[u as usize].push(p);
            self.nadj[u as usize].retain(|&w| {
                self.status[w as usize] == Status::Alive && self.marker[w as usize] != stamp
            });
        }
        self.enodes[p as usize] = reach.clone();
        reach
    }

    /// Prune `u`'s adjacency lists to alive entries, sort them, and return
    /// them (element list first). Used for indistinguishability testing.
    fn canonical_lists(&mut self, u: u32) -> (Vec<u32>, Vec<u32>) {
        let mut elist = std::mem::take(&mut self.eadj[u as usize]);
        elist.retain(|&e| self.status[e as usize] == Status::Element);
        elist.sort_unstable();
        elist.dedup();
        let mut nlist = std::mem::take(&mut self.nadj[u as usize]);
        nlist.retain(|&w| self.status[w as usize] == Status::Alive);
        nlist.sort_unstable();
        nlist.dedup();
        self.eadj[u as usize] = elist.clone();
        self.nadj[u as usize] = nlist.clone();
        (elist, nlist)
    }

    /// Degree update for the boundary of freshly formed element `p`,
    /// AMD-style (Amestoy-Davis-Duff): for each boundary node the external
    /// degree is computed as `|Lp| + Σ_e |Le \ Lp| + Σ nadj sizes`, with
    /// `|Le \ Lp|` computed once per neighboring element. This is *exact*
    /// for nodes adjacent to at most two elements (the vast majority) and
    /// an upper bound otherwise — the standard tractable refinement of
    /// Liu's exact external degree.
    ///
    /// Also performs indistinguishable-node detection among `Lp`'s members
    /// (identical element and node adjacency lists), merging supernodes.
    fn update_degrees_for_element(&mut self, p: u32) {
        debug_assert_eq!(self.status[p as usize], Status::Element);
        // Current alive boundary of p.
        let mut lp = std::mem::take(&mut self.enodes[p as usize]);
        lp.retain(|&u| self.status[u as usize] == Status::Alive);

        // --- Supernode detection among Lp -------------------------------
        // Bucket entries: (representative, element list, node list).
        type Bucket = Vec<(u32, Vec<u32>, Vec<u32>)>;
        let mut buckets: std::collections::HashMap<u64, Bucket> = std::collections::HashMap::new();
        for &u in &lp {
            let (elist, nlist) = self.canonical_lists(u);
            let mut hash = 0u64;
            for &e in &elist {
                hash = hash.wrapping_add((e as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15));
            }
            for &w in &nlist {
                hash = hash.wrapping_add((w as u64 + 1).wrapping_mul(0xC2B2AE3D27D4EB4F));
            }
            let bucket = buckets.entry(hash).or_default();
            let mut absorbed = false;
            for (rep, relist, rnlist) in bucket.iter() {
                if *relist == elist && *rnlist == nlist {
                    // u is indistinguishable from rep: merge supernodes.
                    let rep = *rep;
                    self.status[u as usize] = Status::Absorbed;
                    self.size[rep as usize] += self.size[u as usize];
                    let mut mem = std::mem::take(&mut self.members[u as usize]);
                    self.members[rep as usize].push(u);
                    self.members[rep as usize].append(&mut mem);
                    self.nadj[u as usize] = Vec::new();
                    self.eadj[u as usize] = Vec::new();
                    absorbed = true;
                    break;
                }
            }
            if !absorbed {
                bucket.push((u, elist, nlist));
            }
        }
        lp.retain(|&u| self.status[u as usize] == Status::Alive);
        self.enodes[p as usize] = lp.clone();

        // --- AMD-style degree computation --------------------------------
        // Mark Lp, compute its weighted size.
        self.stamp += 1;
        let mut wlp = 0u64;
        for &u in &lp {
            self.marker[u as usize] = self.stamp;
            wlp += self.size[u as usize] as u64;
        }
        let lp_stamp = self.stamp;
        // Weighted |Le \ Lp| per foreign element, computed on first touch.
        let mut wle: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
        for &u in &lp {
            let mut deg = wlp - self.size[u as usize] as u64;
            // Foreign elements.
            for i in 0..self.eadj[u as usize].len() {
                let e = self.eadj[u as usize][i];
                if e == p || self.status[e as usize] != Status::Element {
                    continue;
                }
                let w = match wle.get(&e) {
                    Some(&w) => w,
                    None => {
                        let mut nodes = std::mem::take(&mut self.enodes[e as usize]);
                        nodes.retain(|&x| self.status[x as usize] == Status::Alive);
                        let w: u64 = nodes
                            .iter()
                            .filter(|&&x| self.marker[x as usize] != lp_stamp)
                            .map(|&x| self.size[x as usize] as u64)
                            .sum();
                        self.enodes[e as usize] = nodes;
                        wle.insert(e, w);
                        w
                    }
                };
                deg += w;
            }
            // Direct node neighbors (disjoint from every element boundary
            // by construction: they are pruned whenever an element forms).
            deg += self.nadj[u as usize]
                .iter()
                .filter(|&&w| self.status[w as usize] == Status::Alive)
                .map(|&w| self.size[w as usize] as u64)
                .sum::<u64>();
            self.degree[u as usize] = deg;
            self.heap.push(Reverse((deg, u)));
        }
    }

    fn run(mut self) -> Permutation {
        let n = self.g.n();
        while self.order.len() < n {
            let Some(Reverse((deg, p))) = self.heap.pop() else {
                // All heap entries were stale; re-seed from the survivors.
                for v in 0..n as u32 {
                    if self.alive(v) {
                        self.heap.push(Reverse((self.degree[v as usize], v)));
                    }
                }
                continue;
            };
            if !self.alive(p) || self.degree[p as usize] != deg {
                continue;
            }
            let mindeg = deg;
            // Multiple elimination: eliminate an independent set of
            // min-degree nodes, then run one degree update per new element.
            self.round += 1;
            let round = self.round;
            let mut pivots: Vec<u32> = Vec::new();
            let mut pivot = p;
            loop {
                let reach = self.eliminate(pivot);
                pivots.push(pivot);
                for &u in &reach {
                    self.stale[u as usize] = round;
                }
                // Next pivot: same degree, alive, degree not stale.
                let mut next = None;
                while let Some(&Reverse((d, q))) = self.heap.peek() {
                    if d > mindeg {
                        break;
                    }
                    self.heap.pop();
                    if !self.alive(q) || self.degree[q as usize] != d {
                        continue;
                    }
                    if self.stale[q as usize] == round {
                        continue; // re-queued by the updates below
                    }
                    next = Some(q);
                    break;
                }
                match next {
                    Some(q) => pivot = q,
                    None => break,
                }
            }
            for p in pivots {
                // A later pivot's element may have absorbed an earlier one.
                if self.status[p as usize] == Status::Element {
                    self.update_degrees_for_element(p);
                }
            }
        }
        Permutation::from_inverse(self.order)
    }
}

/// Compute a multiple-minimum-degree ordering of `g`.
pub fn mmd_order(g: &CsrGraph) -> Permutation {
    if g.n() == 0 {
        return Permutation::identity(0);
    }
    Mmd::new(g).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::etree::analyze_ordering;
    use mlgp_graph::generators::{grid2d, lshape, tri_mesh2d};
    use mlgp_graph::GraphBuilder;

    fn is_perm(p: &Permutation, n: usize) -> bool {
        let mut seen = vec![false; n];
        for v in 0..n as u32 {
            seen[p.apply(v) as usize] = true;
        }
        seen.iter().all(|&s| s)
    }

    #[test]
    fn orders_star_leaves_first() {
        let mut b = GraphBuilder::new(6);
        for i in 1..6 {
            b.add_edge(0, i);
        }
        let g = b.build();
        let p = mmd_order(&g);
        assert!(is_perm(&p, 6));
        // Center must be eliminated last => zero fill.
        assert_eq!(p.apply(0), 5);
        let s = analyze_ordering(&g, &p);
        assert_eq!(s.nnz_l, 6 + 5);
    }

    #[test]
    fn path_gets_no_fill() {
        let mut b = GraphBuilder::new(10);
        for i in 0..9 {
            b.add_edge(i, i + 1);
        }
        let g = b.build();
        let p = mmd_order(&g);
        assert!(is_perm(&p, 10));
        let s = analyze_ordering(&g, &p);
        // Minimum degree on a path gives zero fill.
        assert_eq!(s.nnz_l, 10 + 9);
    }

    #[test]
    fn beats_natural_order_on_grid() {
        let g = grid2d(12, 12);
        let p = mmd_order(&g);
        assert!(is_perm(&p, g.n()));
        let mmd = analyze_ordering(&g, &p);
        let nat = analyze_ordering(&g, &Permutation::identity(g.n()));
        assert!(
            mmd.opcount < nat.opcount,
            "MMD {} vs natural {}",
            mmd.opcount,
            nat.opcount
        );
    }

    #[test]
    fn beats_random_order_on_mesh() {
        let g = tri_mesh2d(15, 15, 3);
        let p = mmd_order(&g);
        assert!(is_perm(&p, g.n()));
        let mmd = analyze_ordering(&g, &p);
        let mut rng = mlgp_graph::rng::seeded(1);
        let rnd = analyze_ordering(&g, &Permutation::random(g.n(), &mut rng));
        assert!(
            mmd.opcount < rnd.opcount / 2.0,
            "MMD {} vs random {}",
            mmd.opcount,
            rnd.opcount
        );
    }

    #[test]
    fn handles_disconnected_graphs() {
        let mut b = GraphBuilder::new(7);
        b.add_edge(0, 1).add_edge(1, 2);
        b.add_edge(4, 5).add_edge(5, 6);
        let g = b.build(); // vertex 3 isolated
        let p = mmd_order(&g);
        assert!(is_perm(&p, 7));
    }

    #[test]
    fn handles_clique() {
        let mut b = GraphBuilder::new(5);
        for i in 0..5 {
            for j in 0..i {
                b.add_edge(i, j);
            }
        }
        let g = b.build();
        let p = mmd_order(&g);
        assert!(is_perm(&p, 5));
        // Clique: all orders equal; fill is the full triangle regardless.
        let s = analyze_ordering(&g, &p);
        assert_eq!(s.nnz_l, 5 + 10);
    }

    #[test]
    fn deterministic() {
        let g = lshape(16);
        let a = mmd_order(&g);
        let b = mmd_order(&g);
        assert_eq!(a.perm(), b.perm());
    }

    #[test]
    fn quality_on_lshape_reasonable() {
        // MMD on a 2D mesh should produce far less fill than the worst case.
        let g = lshape(24);
        let n = g.n() as u64;
        let s = analyze_ordering(&g, &mmd_order(&g));
        // Dense L would be n(n+1)/2; MMD must be a tiny fraction.
        assert!(s.nnz_l < n * (n + 1) / 20, "nnz_l {}", s.nnz_l);
    }

    #[test]
    fn supernodes_form_on_dense_rows() {
        // Two vertices with identical closed neighborhoods must be merged
        // and eliminated consecutively.
        let mut b = GraphBuilder::new(6);
        // 0 and 1 both adjacent to 2,3,4,5 and to each other.
        b.add_edge(0, 1);
        for t in 2..6 {
            b.add_edge(0, t);
            b.add_edge(1, t);
        }
        // ring among 2..6 to give them structure
        b.add_edge(2, 3).add_edge(3, 4).add_edge(4, 5);
        let g = b.build();
        let p = mmd_order(&g);
        assert!(is_perm(&p, 6));
        let pos0 = p.apply(0) as i64;
        let pos1 = p.apply(1) as i64;
        // 0 and 1 are indistinguishable: they end up adjacent in the order
        // once either becomes a pivot (they may also simply be eliminated
        // late; accept adjacency OR both in the final two positions).
        assert!(
            (pos0 - pos1).abs() == 1 || (pos0 >= 4 && pos1 >= 4),
            "{pos0} {pos1}"
        );
    }
}
