//! Nested dissection orderings (§4.3): MLND (multilevel nested dissection,
//! the paper's contribution) and SND (spectral nested dissection,
//! Pothen-Simon-Wang), sharing one recursive driver.
//!
//! At each level the graph is bisected, the edge separator is converted to
//! a minimum-vertex-cover vertex separator, the two sides are ordered
//! recursively (in parallel), and the separator is numbered last. Pieces
//! below `leaf_size` are ordered with MMD, the standard practice for
//! incomplete nested dissection.

use crate::mmd::mmd_order;
use crate::vcover::{vertex_separator, SEPARATOR, SIDE_A, SIDE_B};
use mlgp_graph::{induced_subgraph, CsrGraph, Permutation, Vid};
use mlgp_part::{bisect_targets_traced, MlConfig};
use mlgp_spectral::{msb_bisect_targets, MsbConfig};
use mlgp_trace::{Event, Trace};

/// Which bisection engine drives the dissection.
#[derive(Clone, Copy, Debug)]
pub enum NdBisector {
    /// Multilevel bisection with the given configuration (MLND).
    Multilevel(MlConfig),
    /// Multilevel-accelerated spectral bisection (SND). Quality matches
    /// running Lanczos on each subgraph; see DESIGN.md §2.
    Spectral(MsbConfig),
}

/// Nested dissection configuration.
#[derive(Clone, Copy, Debug)]
pub struct NdConfig {
    /// Bisection engine.
    pub bisector: NdBisector,
    /// Subgraphs at or below this size are ordered with MMD.
    pub leaf_size: usize,
    /// Fork the recursion in parallel above this size.
    pub parallel_threshold: usize,
    /// Apply FM-style separator refinement after the minimum vertex cover
    /// (see [`crate::seprefine`]).
    pub refine_separator: bool,
    /// Worker threads for the recursion forks and the bisector's kernels
    /// (`0` = leave the bisector configs and ambient fan-out alone; any
    /// other value overrides the nested `MlConfig`/`MsbConfig` knob and
    /// caps the recursion's `rayon::join` fan-out). Orderings are
    /// bit-identical at every value.
    pub threads: usize,
}

impl Default for NdConfig {
    fn default() -> Self {
        Self {
            bisector: NdBisector::Multilevel(MlConfig::default()),
            leaf_size: 120,
            parallel_threshold: 4096,
            refine_separator: true,
            threads: 0,
        }
    }
}

impl NdConfig {
    /// MLND with the paper's recommended multilevel configuration.
    pub fn mlnd() -> Self {
        Self::default()
    }

    /// SND configuration.
    pub fn snd() -> Self {
        Self {
            bisector: NdBisector::Spectral(MsbConfig::default()),
            ..Self::default()
        }
    }
}

/// Compute a fill-reducing nested dissection ordering of `g`.
pub fn nested_dissection(g: &CsrGraph, cfg: &NdConfig) -> Permutation {
    nested_dissection_traced(g, cfg, &Trace::disabled())
}

/// [`nested_dissection`] with telemetry: one `separator` event per
/// dissection split (depth, subgraph size, separator size) plus phase spans
/// (`nd/bisect`, `nd/separator`, `nd/mmd`) and a `separator_vertices`
/// counter. The multilevel bisector additionally records its own per-level
/// coarsening/refinement events.
pub fn nested_dissection_traced(g: &CsrGraph, cfg: &NdConfig, trace: &Trace) -> Permutation {
    // A nonzero NdConfig::threads overrides the bisector's own knob and
    // caps the recursion fan-out via an advisory pool around the run.
    let mut cfg = *cfg;
    if cfg.threads != 0 {
        match &mut cfg.bisector {
            NdBisector::Multilevel(ml) => ml.threads = cfg.threads,
            NdBisector::Spectral(sc) => sc.threads = cfg.threads,
        }
    }
    let run = |cfg: &NdConfig| {
        let mut seq = Vec::with_capacity(g.n());
        order_rec(
            g,
            &(0..g.n() as Vid).collect::<Vec<_>>(),
            cfg,
            1,
            &mut seq,
            trace,
        );
        debug_assert_eq!(seq.len(), g.n());
        Permutation::from_inverse(seq)
    };
    if cfg.threads == 0 {
        run(&cfg)
    } else {
        // LINT: allow(panic, pool construction fails only on thread-spawn resource exhaustion; no recovery is possible)
        rayon::ThreadPoolBuilder::new()
            .num_threads(cfg.threads)
            .build()
            .expect("advisory thread pool")
            .install(|| run(&cfg))
    }
}

/// Multilevel nested dissection with default settings.
pub fn mlnd_order(g: &CsrGraph) -> Permutation {
    nested_dissection(g, &NdConfig::mlnd())
}

/// Spectral nested dissection with default settings.
pub fn snd_order(g: &CsrGraph) -> Permutation {
    nested_dissection(g, &NdConfig::snd())
}

/// Order the subgraph `sub` (whose vertices map to original ids via `orig`)
/// and append the elimination sequence (original ids) to `seq`.
fn order_rec(
    sub: &CsrGraph,
    orig: &[Vid],
    cfg: &NdConfig,
    salt: u64,
    seq: &mut Vec<Vid>,
    trace: &Trace,
) {
    let n = sub.n();
    if n == 0 {
        return;
    }
    if n <= cfg.leaf_size {
        let t = trace.start();
        let p = mmd_order(sub);
        trace.stop(t, "nd/mmd");
        seq.extend(p.iperm().iter().map(|&v| orig[v as usize]));
        return;
    }
    // Bisect, then lift the edge separator to a vertex separator.
    let total = sub.total_vwgt();
    let targets = [total / 2, total - total / 2];
    let t = trace.start();
    let part = match &cfg.bisector {
        NdBisector::Multilevel(ml) => {
            bisect_targets_traced(sub, &ml.reseed(salt), targets, trace).part
        }
        NdBisector::Spectral(sc) => {
            let mut c = *sc;
            c.seed = sc.seed.wrapping_add(salt);
            msb_bisect_targets(sub, &c, targets)
        }
    };
    trace.stop(t, "nd/bisect");
    let t = trace.start();
    let mut labels = vertex_separator(sub, &part);
    if cfg.refine_separator {
        crate::seprefine::refine_separator(
            sub,
            &mut labels,
            &crate::seprefine::SepRefineOptions::default(),
        );
    }
    trace.stop(t, "nd/separator");
    let sep_count = labels.iter().filter(|&&l| l == SEPARATOR).count();
    // The recursion salt doubles per level, so its bit length is the depth.
    let depth = (u64::BITS - 1 - salt.leading_zeros()) as usize;
    trace.record(|| Event::Separator {
        depth,
        vertices: n,
        separator: sep_count,
    });
    trace.count("separator_vertices", sep_count as u64);
    if sep_count == 0 || sep_count == n {
        // Degenerate split (e.g. everything became separator, or the graph
        // was disconnected with an empty cut): fall back to MMD to
        // guarantee progress.
        let p = mmd_order(sub);
        seq.extend(p.iperm().iter().map(|&v| orig[v as usize]));
        return;
    }
    let sel_a: Vec<bool> = labels.iter().map(|&l| l == SIDE_A).collect();
    let sel_b: Vec<bool> = labels.iter().map(|&l| l == SIDE_B).collect();
    let sub_a = induced_subgraph(sub, &sel_a);
    let sub_b = induced_subgraph(sub, &sel_b);
    let orig_a: Vec<Vid> = sub_a.orig.iter().map(|&v| orig[v as usize]).collect();
    let orig_b: Vec<Vid> = sub_b.orig.iter().map(|&v| orig[v as usize]).collect();
    let mut seq_a = Vec::with_capacity(sub_a.graph.n());
    let mut seq_b = Vec::with_capacity(sub_b.graph.n());
    if n >= cfg.parallel_threshold {
        rayon::join(
            || order_rec(&sub_a.graph, &orig_a, cfg, salt * 2, &mut seq_a, trace),
            || order_rec(&sub_b.graph, &orig_b, cfg, salt * 2 + 1, &mut seq_b, trace),
        );
    } else {
        order_rec(&sub_a.graph, &orig_a, cfg, salt * 2, &mut seq_a, trace);
        order_rec(&sub_b.graph, &orig_b, cfg, salt * 2 + 1, &mut seq_b, trace);
    }
    seq.append(&mut seq_a);
    seq.append(&mut seq_b);
    // Separator vertices are numbered last.
    for v in 0..n {
        if labels[v] == SEPARATOR {
            seq.push(orig[v]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::etree::analyze_ordering;
    use mlgp_graph::generators::{grid2d, lshape, stiffness3d, tri_mesh2d};

    fn is_perm(p: &Permutation, n: usize) -> bool {
        let mut seen = vec![false; n];
        for v in 0..n as u32 {
            seen[p.apply(v) as usize] = true;
        }
        seen.iter().all(|&s| s)
    }

    #[test]
    fn mlnd_is_a_permutation() {
        let g = grid2d(20, 20);
        let p = mlnd_order(&g);
        assert!(is_perm(&p, g.n()));
    }

    #[test]
    fn small_graph_delegates_to_mmd() {
        let g = grid2d(6, 6);
        let p = mlnd_order(&g);
        let m = mmd_order(&g);
        assert_eq!(p.perm(), m.perm());
    }

    #[test]
    fn mlnd_beats_natural_order_on_grid() {
        let g = grid2d(24, 24);
        let nd = analyze_ordering(&g, &mlnd_order(&g));
        let nat = analyze_ordering(&g, &Permutation::identity(g.n()));
        assert!(
            nd.opcount < nat.opcount,
            "{} vs {}",
            nd.opcount,
            nat.opcount
        );
    }

    #[test]
    fn mlnd_flattens_the_etree_relative_to_mmd() {
        // The paper's concurrency argument: ND orderings have shallower,
        // better-balanced elimination trees than MMD.
        let g = stiffness3d(9, 9, 9);
        let nd = analyze_ordering(&g, &mlnd_order(&g));
        let md = analyze_ordering(&g, &mmd_order(&g));
        assert!(
            nd.height as f64 <= 1.2 * md.height as f64,
            "ND height {} vs MMD {}",
            nd.height,
            md.height
        );
    }

    #[test]
    fn mlnd_competitive_with_mmd_on_3d() {
        // On 3D stiffness-like problems the paper finds MLND clearly better;
        // at this small scale require at least rough parity (within 1.5x).
        let g = stiffness3d(8, 8, 8);
        let nd = analyze_ordering(&g, &mlnd_order(&g));
        let md = analyze_ordering(&g, &mmd_order(&g));
        assert!(
            nd.opcount < 1.5 * md.opcount,
            "ND {} vs MMD {}",
            nd.opcount,
            md.opcount
        );
    }

    #[test]
    fn snd_is_a_valid_ordering() {
        let g = tri_mesh2d(16, 16, 7);
        let p = snd_order(&g);
        assert!(is_perm(&p, g.n()));
        let snd = analyze_ordering(&g, &p);
        let nat = analyze_ordering(&g, &Permutation::identity(g.n()));
        assert!(snd.opcount < nat.opcount);
    }

    #[test]
    fn deterministic() {
        let g = lshape(30);
        let a = mlnd_order(&g);
        let b = mlnd_order(&g);
        assert_eq!(a.perm(), b.perm());
    }

    #[test]
    fn handles_disconnected_input() {
        // Two disjoint grids glued as one graph.
        let g1 = grid2d(12, 12);
        let mut b = mlgp_graph::GraphBuilder::new(288);
        for v in 0..144u32 {
            for (u, _) in g1.adj(v) {
                if u > v {
                    b.add_edge(v, u);
                    b.add_edge(v + 144, u + 144);
                }
            }
        }
        let g = b.build();
        let p = nested_dissection(
            &g,
            &NdConfig {
                leaf_size: 20,
                ..NdConfig::mlnd()
            },
        );
        assert!(is_perm(&p, 288));
    }
}
