//! Elimination trees and symbolic Cholesky statistics.
//!
//! Given a graph (the structure of a symmetric matrix) and an elimination
//! ordering, compute the elimination tree (Liu's algorithm with path
//! compression), the exact column counts of the Cholesky factor via row
//! subtree traversal, and from them the quantities §4.3 compares: factor
//! nonzeros, factorization operation count, and elimination tree height
//! (the paper's concurrency argument for nested dissection over MMD).

use mlgp_graph::{CsrGraph, Permutation};

/// Elimination tree in elimination order: `parent[j]` is the parent of the
/// j-th eliminated vertex (also in elimination order), or `u32::MAX` for
/// roots.
pub fn elimination_tree(g: &CsrGraph, p: &Permutation) -> Vec<u32> {
    const NONE: u32 = u32::MAX;
    let n = g.n();
    let mut parent = vec![NONE; n];
    let mut ancestor = vec![NONE; n];
    for j in 0..n as u32 {
        let v = p.iperm()[j as usize]; // original vertex eliminated at step j
        for &u in g.neighbors(v) {
            // Walk from each earlier-eliminated neighbor up to its root,
            // compressing paths onto j.
            let mut i = p.perm()[u as usize];
            if i >= j {
                continue;
            }
            while ancestor[i as usize] != NONE && ancestor[i as usize] != j {
                let next = ancestor[i as usize];
                ancestor[i as usize] = j;
                i = next;
            }
            if ancestor[i as usize] == NONE {
                ancestor[i as usize] = j;
                parent[i as usize] = j;
            }
        }
    }
    parent
}

/// Exact column counts of the Cholesky factor, **excluding** the diagonal,
/// indexed by elimination step. `O(nnz(L))` row-subtree traversal.
pub fn column_counts(g: &CsrGraph, p: &Permutation, parent: &[u32]) -> Vec<u64> {
    const NONE: u32 = u32::MAX;
    let n = g.n();
    let mut counts = vec![0u64; n];
    // marker[j] == i means column j was already visited for row i.
    let mut marker = vec![NONE; n];
    for i in 0..n as u32 {
        let v = p.iperm()[i as usize];
        marker[i as usize] = i;
        for &u in g.neighbors(v) {
            let mut j = p.perm()[u as usize];
            if j >= i {
                continue;
            }
            // Climb the elimination tree from j toward i; every column on
            // the way gains a nonzero in row i (fill-path theorem).
            while marker[j as usize] != i {
                marker[j as usize] = i;
                counts[j as usize] += 1;
                let pj = parent[j as usize];
                debug_assert_ne!(pj, NONE, "etree inconsistent with ordering");
                if pj == NONE {
                    break;
                }
                j = pj;
            }
        }
    }
    counts
}

/// Height of the elimination tree (longest root-to-leaf path, in vertices).
/// Lower is better for parallel factorization.
pub fn etree_height(parent: &[u32]) -> usize {
    const NONE: u32 = u32::MAX;
    let n = parent.len();
    let mut depth = vec![0u32; n];
    let mut best = 0;
    // parent[j] > j always, so a forward sweep computes depths bottom-up
    // ... actually children come before parents in elimination order, so
    // iterate ascending and push depth to the parent.
    for j in 0..n {
        let d = depth[j] + 1;
        best = best.max(d);
        let pj = parent[j];
        if pj != NONE {
            depth[pj as usize] = depth[pj as usize].max(d);
        }
    }
    best as usize
}

/// Symbolic factorization summary.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SymbolicStats {
    /// Nonzeros of the Cholesky factor `L`, including the diagonal.
    pub nnz_l: u64,
    /// Factorization operation count `Σ_j ℓ_j (ℓ_j + 3) / 2` where `ℓ_j` is
    /// the off-diagonal count of column `j` (classic George-Liu opcount).
    pub opcount: f64,
    /// Elimination tree height (concurrency proxy; smaller = more
    /// parallelism).
    pub height: usize,
}

/// Analyze the fill-reducing quality of an ordering.
pub fn analyze_ordering(g: &CsrGraph, p: &Permutation) -> SymbolicStats {
    assert_eq!(g.n(), p.len());
    let parent = elimination_tree(g, p);
    let counts = column_counts(g, p, &parent);
    let nnz_l = g.n() as u64 + counts.iter().sum::<u64>();
    let opcount = counts
        .iter()
        .map(|&c| {
            let c = c as f64;
            c * (c + 3.0) / 2.0
        })
        .sum();
    SymbolicStats {
        nnz_l,
        opcount,
        height: etree_height(&parent),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlgp_graph::generators::grid2d;
    use mlgp_graph::GraphBuilder;
    use mlgp_graph::Vid;

    fn path(n: usize) -> CsrGraph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n - 1 {
            b.add_edge(i as Vid, i as Vid + 1);
        }
        b.build()
    }

    #[test]
    fn path_natural_order_no_fill() {
        // Tridiagonal matrix in natural order: L is bidiagonal, zero fill.
        let g = path(6);
        let p = Permutation::identity(6);
        let s = analyze_ordering(&g, &p);
        assert_eq!(s.nnz_l, 6 + 5);
        assert_eq!(s.height, 6); // etree is a chain
        assert!((s.opcount - 5.0 * 2.0).abs() < 1e-12); // each ℓ_j = 1 => 2 ops
    }

    #[test]
    fn path_worst_order_fills() {
        // Eliminating the middle of a path first creates fill.
        let g = path(5);
        // Order: 2 first, then 0,1,3,4.
        let p = Permutation::from_inverse(vec![2, 0, 1, 3, 4]);
        let s = analyze_ordering(&g, &p);
        let natural = analyze_ordering(&g, &Permutation::identity(5));
        assert!(s.nnz_l > natural.nnz_l, "{} vs {}", s.nnz_l, natural.nnz_l);
    }

    #[test]
    fn star_center_last_is_optimal() {
        // Star K1,4: eliminating leaves first gives zero fill; center first
        // fills completely.
        let mut b = GraphBuilder::new(5);
        for i in 1..5 {
            b.add_edge(0, i);
        }
        let g = b.build();
        let center_last = Permutation::from_inverse(vec![1, 2, 3, 4, 0]);
        let center_first = Permutation::from_inverse(vec![0, 1, 2, 3, 4]);
        let good = analyze_ordering(&g, &center_last);
        let bad = analyze_ordering(&g, &center_first);
        assert_eq!(good.nnz_l, 5 + 4);
        // Center first: clique on remaining 4 => dense L.
        assert_eq!(bad.nnz_l, 5 + 4 + 3 + 2 + 1);
        assert!(good.opcount < bad.opcount);
        // Star ordered leaves-first has a flat etree.
        assert_eq!(good.height, 2);
    }

    #[test]
    fn etree_of_path_identity_is_chain() {
        let g = path(4);
        let parent = elimination_tree(&g, &Permutation::identity(4));
        assert_eq!(parent, vec![1, 2, 3, u32::MAX]);
    }

    #[test]
    fn counts_match_dense_simulation_on_grid() {
        // Brute-force symbolic elimination on a small grid must agree.
        let g = grid2d(4, 4);
        let p = Permutation::identity(16);
        let s = analyze_ordering(&g, &p);
        // Brute force: maintain adjacency sets, eliminate in order.
        let n = 16usize;
        let mut adj: Vec<std::collections::BTreeSet<usize>> = (0..n)
            .map(|v| g.neighbors(v as Vid).iter().map(|&u| u as usize).collect())
            .collect();
        let mut nnz = n as u64;
        let mut ops = 0.0;
        for v in 0..n {
            let higher: Vec<usize> = adj[v].iter().copied().filter(|&u| u > v).collect();
            nnz += higher.len() as u64;
            let l = higher.len() as f64;
            ops += l * (l + 3.0) / 2.0;
            for i in 0..higher.len() {
                for j in (i + 1)..higher.len() {
                    let (a, b) = (higher[i], higher[j]);
                    adj[a].insert(b);
                    adj[b].insert(a);
                }
            }
        }
        assert_eq!(s.nnz_l, nnz);
        assert!((s.opcount - ops).abs() < 1e-9, "{} vs {}", s.opcount, ops);
    }

    #[test]
    fn permutation_of_labels_does_not_change_natural_stats() {
        // Analyzing (g, p) must equal analyzing (permuted graph, identity).
        let g = grid2d(5, 3);
        let p = Permutation::from_forward((0..15u32).map(|i| (i * 7) % 15).collect());
        let s1 = analyze_ordering(&g, &p);
        let gp = mlgp_graph::permute_graph(&g, &p);
        let s2 = analyze_ordering(&gp, &Permutation::identity(15));
        assert_eq!(s1, s2);
    }
}
