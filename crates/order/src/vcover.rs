//! Vertex separators from edge separators via minimum vertex cover (§4.3).
//!
//! The cut edges of a bisection form a bipartite graph between the two
//! boundaries; by König's theorem its minimum vertex cover equals its
//! maximum matching, computed here with Hopcroft-Karp. The cover is exactly
//! the smallest set of vertices whose removal disconnects the parts — the
//! separator nested dissection numbers last. The paper cites Pothen-Fan for
//! this construction and notes it "produces very small vertex separators".

use mlgp_graph::{CsrGraph, Vid};

/// Maximum bipartite matching via Hopcroft-Karp.
///
/// `adj[l]` lists the right-side neighbors of left vertex `l`. Returns
/// `(match_l, match_r)` with `u32::MAX` marking unmatched vertices.
pub fn hopcroft_karp(nl: usize, nr: usize, adj: &[Vec<u32>]) -> (Vec<u32>, Vec<u32>) {
    const NONE: u32 = u32::MAX;
    assert_eq!(adj.len(), nl);
    let mut match_l = vec![NONE; nl];
    let mut match_r = vec![NONE; nr];
    let mut dist = vec![0u32; nl];
    let mut queue: Vec<u32> = Vec::with_capacity(nl);
    loop {
        // BFS layers from free left vertices.
        queue.clear();
        const INF: u32 = u32::MAX;
        for l in 0..nl {
            if match_l[l] == NONE {
                dist[l] = 0;
                queue.push(l as u32);
            } else {
                dist[l] = INF;
            }
        }
        let mut found = false;
        let mut qi = 0;
        while qi < queue.len() {
            let l = queue[qi] as usize;
            qi += 1;
            for &r in &adj[l] {
                let ml = match_r[r as usize];
                if ml == NONE {
                    found = true;
                } else if dist[ml as usize] == INF {
                    dist[ml as usize] = dist[l] + 1;
                    queue.push(ml);
                }
            }
        }
        if !found {
            break;
        }
        // DFS augmentation along layered paths.
        fn dfs(
            l: usize,
            adj: &[Vec<u32>],
            match_l: &mut [u32],
            match_r: &mut [u32],
            dist: &mut [u32],
        ) -> bool {
            const NONE: u32 = u32::MAX;
            const INF: u32 = u32::MAX;
            for i in 0..adj[l].len() {
                let r = adj[l][i] as usize;
                let ml = match_r[r];
                if ml == NONE
                    || (dist[ml as usize] == dist[l] + 1
                        && dfs(ml as usize, adj, match_l, match_r, dist))
                {
                    match_l[l] = r as u32;
                    match_r[r] = l as u32;
                    return true;
                }
            }
            dist[l] = INF;
            false
        }
        for l in 0..nl {
            if match_l[l] == NONE {
                dfs(l, adj, &mut match_l, &mut match_r, &mut dist);
            }
        }
    }
    (match_l, match_r)
}

/// Minimum vertex cover of a bipartite graph (König): returns
/// `(cover_l, cover_r)` boolean masks.
pub fn konig_cover(nl: usize, nr: usize, adj: &[Vec<u32>]) -> (Vec<bool>, Vec<bool>) {
    const NONE: u32 = u32::MAX;
    let (match_l, match_r) = hopcroft_karp(nl, nr, adj);
    // Z = free left vertices and everything alternating-reachable from them
    // (unmatched edge L→R, matched edge R→L).
    let mut z_l = vec![false; nl];
    let mut z_r = vec![false; nr];
    let mut stack: Vec<u32> = (0..nl as u32)
        .filter(|&l| match_l[l as usize] == NONE)
        .collect();
    for &l in &stack {
        z_l[l as usize] = true;
    }
    while let Some(l) = stack.pop() {
        for &r in &adj[l as usize] {
            if !z_r[r as usize] {
                z_r[r as usize] = true;
                let ml = match_r[r as usize];
                if ml != NONE && !z_l[ml as usize] {
                    z_l[ml as usize] = true;
                    stack.push(ml);
                }
            }
        }
    }
    // Cover = (L \ Z) ∪ (R ∩ Z).
    let cover_l: Vec<bool> = z_l.iter().map(|&z| !z).collect();
    let cover_r = z_r;
    (cover_l, cover_r)
}

/// Side labels produced by [`vertex_separator`].
pub const SIDE_A: u8 = 0;
/// Side B label.
pub const SIDE_B: u8 = 1;
/// Separator label.
pub const SEPARATOR: u8 = 2;

/// Turn an edge separator (0/1 bisection labels) into a vertex separator:
/// returns labels 0 (A), 1 (B), 2 (separator) such that no edge joins an A
/// vertex to a B vertex, and the separator is a minimum vertex cover of the
/// cut edges.
pub fn vertex_separator(g: &CsrGraph, part: &[u8]) -> Vec<u8> {
    assert_eq!(part.len(), g.n());
    // Collect boundary vertices on each side.
    let mut left: Vec<Vid> = Vec::new();
    let mut right: Vec<Vid> = Vec::new();
    let mut lidx = vec![u32::MAX; g.n()];
    let mut ridx = vec![u32::MAX; g.n()];
    for v in 0..g.n() as Vid {
        let pv = part[v as usize];
        if g.neighbors(v).iter().any(|&u| part[u as usize] != pv) {
            if pv == 0 {
                lidx[v as usize] = left.len() as u32;
                left.push(v);
            } else {
                ridx[v as usize] = right.len() as u32;
                right.push(v);
            }
        }
    }
    // Bipartite adjacency over cut edges.
    let adj: Vec<Vec<u32>> = left
        .iter()
        .map(|&v| {
            g.neighbors(v)
                .iter()
                .filter(|&&u| part[u as usize] == 1)
                .map(|&u| ridx[u as usize])
                .collect()
        })
        .collect();
    let (cover_l, cover_r) = konig_cover(left.len(), right.len(), &adj);
    let mut labels: Vec<u8> = part.to_vec();
    for (i, &v) in left.iter().enumerate() {
        if cover_l[i] {
            labels[v as usize] = SEPARATOR;
        }
    }
    for (i, &v) in right.iter().enumerate() {
        if cover_r[i] {
            labels[v as usize] = SEPARATOR;
        }
    }
    labels
}

/// Check that `labels` is a valid separator labeling for `g`: no A-B edge.
pub fn separator_is_valid(g: &CsrGraph, labels: &[u8]) -> bool {
    for v in 0..g.n() as Vid {
        if labels[v as usize] == SEPARATOR {
            continue;
        }
        for &u in g.neighbors(v) {
            if labels[u as usize] != SEPARATOR && labels[u as usize] != labels[v as usize] {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlgp_graph::generators::grid2d;
    use mlgp_graph::GraphBuilder;

    #[test]
    fn hk_on_perfect_matching() {
        // K2,2 minus one edge: matching of size 2.
        let adj = vec![vec![0, 1], vec![0]];
        let (ml, mr) = hopcroft_karp(2, 2, &adj);
        assert!(ml.iter().all(|&m| m != u32::MAX));
        let matched = mr.iter().filter(|&&m| m != u32::MAX).count();
        assert_eq!(matched, 2);
    }

    #[test]
    fn hk_star_matches_one() {
        // One left vertex adjacent to 3 right vertices.
        let adj = vec![vec![0, 1, 2]];
        let (ml, mr) = hopcroft_karp(1, 3, &adj);
        assert_ne!(ml[0], u32::MAX);
        assert_eq!(mr.iter().filter(|&&m| m != u32::MAX).count(), 1);
    }

    #[test]
    fn hk_augments_through_alternating_path() {
        // l0-{r0}, l1-{r0,r1}: perfect matching exists and must be found.
        let adj = vec![vec![0], vec![0, 1]];
        let (ml, _) = hopcroft_karp(2, 2, &adj);
        assert_eq!(ml[0], 0);
        assert_eq!(ml[1], 1);
    }

    #[test]
    fn konig_cover_covers_every_edge() {
        let adj = vec![vec![0, 1], vec![1, 2], vec![2]];
        let (cl, cr) = konig_cover(3, 3, &adj);
        for (l, row) in adj.iter().enumerate() {
            for &r in row {
                assert!(cl[l] || cr[r as usize], "edge ({l},{r}) uncovered");
            }
        }
        // Cover size equals matching size (König): here 3? matching: l0-r0,
        // l1-r1, l2-r2 => 3.
        let size = cl.iter().filter(|&&c| c).count() + cr.iter().filter(|&&c| c).count();
        assert_eq!(size, 3);
    }

    #[test]
    fn separator_on_grid_is_small_and_valid() {
        // 8x8 grid split by columns: cut = 8 edges, min vertex cover = 8
        // vertices (one column).
        let g = grid2d(8, 8);
        let part: Vec<u8> = (0..64).map(|i| if i % 8 < 4 { 0 } else { 1 }).collect();
        let labels = vertex_separator(&g, &part);
        assert!(separator_is_valid(&g, &labels));
        let sep = labels.iter().filter(|&&l| l == SEPARATOR).count();
        assert_eq!(sep, 8);
        // Both sides non-empty.
        assert!(labels.contains(&SIDE_A));
        assert!(labels.contains(&SIDE_B));
    }

    #[test]
    fn separator_beats_naive_boundary() {
        // Unbalanced boundary: 1 vertex on side A fans out to 5 on side B;
        // cover should pick the single A vertex, not 5 B vertices.
        let mut b = GraphBuilder::new(7);
        for i in 1..6 {
            b.add_edge(0, i);
        }
        b.add_edge(6, 0); // keep A side (0,6): 6-0 internal edge
        let g = b.build();
        let part = vec![0, 1, 1, 1, 1, 1, 0];
        let labels = vertex_separator(&g, &part);
        assert!(separator_is_valid(&g, &labels));
        assert_eq!(labels.iter().filter(|&&l| l == SEPARATOR).count(), 1);
        assert_eq!(labels[0], SEPARATOR);
    }

    #[test]
    fn no_cut_edges_no_separator() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1).add_edge(2, 3);
        let g = b.build();
        let labels = vertex_separator(&g, &[0, 0, 1, 1]);
        assert!(labels.iter().all(|&l| l != SEPARATOR));
        assert!(separator_is_valid(&g, &labels));
    }
}
