//! Property tests for the ordering substrate: bipartite matching / König
//! covers, elimination trees, and ordering validity.

use mlgp_graph::rng::seeded;
use mlgp_graph::{CsrGraph, GraphBuilder, Permutation};
use mlgp_order::{
    analyze_ordering, column_counts, elimination_tree, hopcroft_karp, konig_cover, mmd_order,
};
use proptest::prelude::*;
use rand::RngExt;

/// Strategy: a random bipartite graph as adjacency lists.
fn bipartite() -> impl Strategy<Value = (usize, usize, Vec<Vec<u32>>)> {
    (1usize..12, 1usize..12).prop_flat_map(|(nl, nr)| {
        let adj =
            prop::collection::vec(prop::collection::btree_set(0..nr as u32, 0..nr.min(6)), nl)
                .prop_map(|rows| rows.into_iter().map(|s| s.into_iter().collect()).collect());
        (Just(nl), Just(nr), adj)
    })
}

fn random_connected(n: usize, extra: usize, seed: u64) -> CsrGraph {
    let mut rng = seeded(seed);
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge(v as u32, rng.random_range(0..v) as u32);
    }
    for _ in 0..extra {
        let u = rng.random_range(0..n) as u32;
        let v = rng.random_range(0..n) as u32;
        if u != v {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// Brute-force maximum matching size by augmenting-path search.
fn brute_matching(nl: usize, nr: usize, adj: &[Vec<u32>]) -> usize {
    fn try_kuhn(l: usize, adj: &[Vec<u32>], seen: &mut [bool], mr: &mut [i64]) -> bool {
        for &r in &adj[l] {
            if !seen[r as usize] {
                seen[r as usize] = true;
                if mr[r as usize] < 0 || try_kuhn(mr[r as usize] as usize, adj, seen, mr) {
                    mr[r as usize] = l as i64;
                    return true;
                }
            }
        }
        false
    }
    let mut mr = vec![-1i64; nr];
    let mut count = 0;
    for l in 0..nl {
        let mut seen = vec![false; nr];
        if try_kuhn(l, adj, &mut seen, &mut mr) {
            count += 1;
        }
    }
    count
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hopcroft_karp_finds_maximum_matching((nl, nr, adj) in bipartite()) {
        let (ml, mr) = hopcroft_karp(nl, nr, &adj);
        let size = ml.iter().filter(|&&m| m != u32::MAX).count();
        // Matching consistency.
        for (l, &r) in ml.iter().enumerate() {
            if r != u32::MAX {
                prop_assert_eq!(mr[r as usize], l as u32);
                prop_assert!(adj[l].contains(&r));
            }
        }
        // Maximum size (vs brute force).
        prop_assert_eq!(size, brute_matching(nl, nr, &adj));
    }

    #[test]
    fn konig_cover_is_minimum_and_covers((nl, nr, adj) in bipartite()) {
        let (cl, cr) = konig_cover(nl, nr, &adj);
        for (l, row) in adj.iter().enumerate() {
            for &r in row {
                prop_assert!(cl[l] || cr[r as usize], "edge ({l},{r}) uncovered");
            }
        }
        let cover = cl.iter().filter(|&&c| c).count() + cr.iter().filter(|&&c| c).count();
        prop_assert_eq!(cover, brute_matching(nl, nr, &adj), "König equality violated");
    }

    #[test]
    fn etree_parents_point_forward(
        n in 4usize..60,
        extra in 0usize..100,
        seed in 0u64..300,
    ) {
        let g = random_connected(n, extra, seed);
        let p = Permutation::random(n, &mut seeded(seed ^ 5));
        let parent = elimination_tree(&g, &p);
        for (j, &pj) in parent.iter().enumerate() {
            if pj != u32::MAX {
                prop_assert!(pj as usize > j, "parent {pj} <= child {j}");
            }
        }
        // Column counts are consistent: nnz(L) bounded by the dense
        // triangle and at least the original structure.
        let counts = column_counts(&g, &p, &parent);
        let nnz: u64 = n as u64 + counts.iter().sum::<u64>();
        prop_assert!(nnz >= (n + g.m()) as u64);
        prop_assert!(nnz <= (n * (n + 1) / 2) as u64);
    }

    #[test]
    fn fill_is_ordering_dependent_but_bounded_below(
        n in 6usize..50,
        extra in 5usize..80,
        seed in 0u64..300,
    ) {
        // MMD's fill never beats the structural lower bound and never
        // exceeds a random ordering by more than noise (it should usually
        // be far better; here we assert the weak direction robustly).
        let g = random_connected(n, extra, seed);
        let mmd = analyze_ordering(&g, &mmd_order(&g));
        prop_assert!(mmd.nnz_l >= (n + g.m()) as u64);
        let rnd = analyze_ordering(&g, &Permutation::random(n, &mut seeded(seed ^ 9)));
        prop_assert!(mmd.nnz_l <= rnd.nnz_l, "MMD {} vs random {}", mmd.nnz_l, rnd.nnz_l);
    }

    #[test]
    fn height_bounds(
        n in 4usize..50,
        extra in 0usize..80,
        seed in 0u64..300,
    ) {
        let g = random_connected(n, extra, seed);
        let s = analyze_ordering(&g, &mmd_order(&g));
        prop_assert!(s.height >= 1 && s.height <= n);
    }
}
