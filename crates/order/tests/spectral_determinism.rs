//! Differential determinism suite for the parallel spectral stack.
//!
//! PR 2/3 established the determinism contract for the integer kernels
//! (coarsening, uncoarsening); this suite extends it to floating point:
//! with a fixed seed, the Lanczos Fiedler pair, the MSB multilevel
//! Fiedler vector and bisection, spectral nested dissection, and the
//! Chaco-ML baseline are **bit-identical** for every thread count. The
//! guarantee rests on the deterministic chunked-pairwise reductions in
//! `mlgp_linalg::vecops` (fixed 4k-element chunk layout + fixed-shape
//! combination tree) and the row-sharded SpMV — see DESIGN.md §10.
//!
//! Mirrors `crates/part/tests/determinism.rs`: threads {1, 2, 8} plus an
//! optional `MLGP_THREADS` from the CI thread-matrix job.

use mlgp_graph::generators::{lshape, tri_mesh2d};
use mlgp_linalg::{lanczos_fiedler, LanczosOptions, Laplacian};
use mlgp_order::{nested_dissection, NdConfig};
use mlgp_spectral::{chaco_ml_bisect, msb_bisect, msb_fiedler, ChacoMlConfig, MsbConfig};

/// Thread counts under test: the ISSUE's {1, 2, 8} plus an optional
/// `MLGP_THREADS` override from the CI matrix.
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1usize, 2, 8];
    if let Ok(v) = std::env::var("MLGP_THREADS") {
        if let Ok(t) = v.trim().parse::<usize>() {
            if t > 0 && !counts.contains(&t) {
                counts.push(t);
            }
        }
    }
    counts
}

/// f64 vectors compared bit-for-bit (NaN-safe, no epsilon).
fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn lanczos_fiedler_is_bit_identical_across_thread_counts() {
    // 3600 vertices: above DENSE_FIEDLER_LIMIT, so this is the real
    // Lanczos path with reorthogonalization over the chunked reductions.
    let g = tri_mesh2d(60, 60, 7);
    let lap_ref = Laplacian::with_threads(&g, 1);
    let opts = |threads| LanczosOptions {
        seed: 0xfeed,
        threads,
        ..LanczosOptions::default()
    };
    let reference = lanczos_fiedler(&lap_ref, &opts(1));
    for &t in &thread_counts()[1..] {
        let lap = Laplacian::with_threads(&g, t);
        let r = lanczos_fiedler(&lap, &opts(t));
        assert_eq!(
            r.lambda.to_bits(),
            reference.lambda.to_bits(),
            "lambda differs at {t} threads"
        );
        assert_eq!(
            bits(&r.vector),
            bits(&reference.vector),
            "Fiedler vector differs at {t} threads"
        );
        assert_eq!(r.matvecs, reference.matvecs, "matvec count at {t} threads");
    }
}

#[test]
fn lanczos_above_parallel_spmv_threshold_is_thread_invariant() {
    // ~25.6k vertices: the row-sharded SpMV branch actually engages
    // (PAR_APPLY_THRESHOLD = 20k). Capped steps keep the test quick —
    // convergence is irrelevant here, only bit-identity.
    let g = tri_mesh2d(160, 160, 7);
    let opts = |threads| LanczosOptions {
        max_steps: 25,
        max_restarts: 1,
        tol: 1e-6,
        seed: 0x5eed,
        threads,
    };
    let lap_ref = Laplacian::with_threads(&g, 1);
    let reference = lanczos_fiedler(&lap_ref, &opts(1));
    for &t in &thread_counts()[1..] {
        let lap = Laplacian::with_threads(&g, t);
        let r = lanczos_fiedler(&lap, &opts(t));
        assert_eq!(
            bits(&r.vector),
            bits(&reference.vector),
            "sharded-SpMV Fiedler vector differs at {t} threads"
        );
    }
}

#[test]
fn rayleigh_quotient_is_bit_identical_across_thread_counts() {
    let g = tri_mesh2d(90, 90, 3);
    let x: Vec<f64> = (0..g.n())
        .map(|i| ((i * 37) % 101) as f64 / 17.0 - 2.5)
        .collect();
    let reference = Laplacian::with_threads(&g, 1).rayleigh(&x);
    for &t in &thread_counts()[1..] {
        let rho = Laplacian::with_threads(&g, t).rayleigh(&x);
        assert_eq!(
            rho.to_bits(),
            reference.to_bits(),
            "rayleigh differs at {t} threads"
        );
    }
}

#[test]
fn msb_is_bit_identical_across_thread_counts() {
    // The full multilevel spectral pipeline: RM coarsening, coarsest dense
    // solve, per-level interpolation + RQI (inner MINRES) refinement.
    let g = tri_mesh2d(40, 40, 9);
    let cfg = |threads| MsbConfig {
        threads,
        ..MsbConfig::default()
    };
    let f_ref = msb_fiedler(&g, &cfg(1));
    let (p_ref, c_ref) = msb_bisect(&g, &cfg(1));
    for &t in &thread_counts()[1..] {
        let f = msb_fiedler(&g, &cfg(t));
        assert_eq!(
            bits(&f),
            bits(&f_ref),
            "MSB Fiedler vector differs at {t} threads"
        );
        let (p, c) = msb_bisect(&g, &cfg(t));
        assert_eq!(c, c_ref, "MSB cut differs at {t} threads");
        assert_eq!(p, p_ref, "MSB bisection differs at {t} threads");
    }
}

#[test]
fn chaco_ml_is_bit_identical_across_thread_counts() {
    // Chaco-ML routes through the parallel trial fan-out (spectral initial
    // partitioning on the coarsest graph) plus KL refinement.
    let g = tri_mesh2d(36, 36, 5);
    let cfg = |threads| ChacoMlConfig {
        threads,
        ..ChacoMlConfig::default()
    };
    let reference = chaco_ml_bisect(&g, &cfg(1));
    for &t in &thread_counts()[1..] {
        let r = chaco_ml_bisect(&g, &cfg(t));
        assert_eq!(r.1, reference.1, "Chaco-ML cut differs at {t} threads");
        assert_eq!(
            r.0, reference.0,
            "Chaco-ML bisection differs at {t} threads"
        );
    }
}

#[test]
fn spectral_nested_dissection_is_bit_identical_across_thread_counts() {
    // SND stacks every layer: recursive forks, MSB bisections (RQI +
    // Lanczos fallback), separator extraction, MMD leaves. Use a small
    // parallel_threshold so the recursion actually forks.
    let g = lshape(40);
    let cfg = |threads| NdConfig {
        parallel_threshold: 256,
        threads,
        ..NdConfig::snd()
    };
    let reference = nested_dissection(&g, &cfg(1));
    for &t in &thread_counts()[1..] {
        let p = nested_dissection(&g, &cfg(t));
        assert_eq!(
            p.perm(),
            reference.perm(),
            "SND ordering differs at {t} threads"
        );
    }
}

#[test]
fn mlnd_with_parallel_trials_is_bit_identical_across_thread_counts() {
    // MLND drives the multilevel bisector, whose initial partitioning now
    // fans trials out in parallel; the ordering must stay a pure function
    // of (graph, config, seed).
    let g = tri_mesh2d(34, 30, 2);
    let cfg = |threads| NdConfig {
        parallel_threshold: 256,
        threads,
        ..NdConfig::mlnd()
    };
    let reference = nested_dissection(&g, &cfg(1));
    for &t in &thread_counts()[1..] {
        let p = nested_dissection(&g, &cfg(t));
        assert_eq!(
            p.perm(),
            reference.perm(),
            "MLND ordering differs at {t} threads"
        );
    }
}
